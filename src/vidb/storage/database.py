"""The video database: a :class:`vidb.model.VideoSequence` plus indexes.

This is the storage engine queries run against.  It offers:

* convenience constructors (``new_entity`` / ``new_interval`` / ``relate``)
  that build model objects from plain Python data;
* index-accelerated access paths (attribute probes, entity membership,
  relation lookups, temporal point/range probes);
* undo-log transactions (:meth:`transaction`);
* JSON persistence (in :mod:`vidb.storage.persistence`).

Objects are immutable, so updates replace an object wholesale and the
indexes are maintained by remove-then-add.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple, Union

from vidb.errors import ModelError, UnknownOidError
from vidb.intervals.generalized import GeneralizedInterval
from vidb.model.objects import (
    EntityObject,
    GeneralizedIntervalObject,
    VideoObject,
)
from vidb.model.oid import Oid
from vidb.model.relations import FactArg, RelationFact
from vidb.model.sequence import VideoSequence
from vidb.storage.index import (
    AttributeIndex,
    MembershipIndex,
    RelationIndex,
    TemporalIndex,
)

OidLike = Union[Oid, str]


class VideoDatabase:
    """An indexed store of one video document's symbolic description."""

    def __init__(self, name: str = "video"):
        self.sequence = VideoSequence(name)
        self._attribute_index = AttributeIndex()
        self._membership_index = MembershipIndex()
        self._relation_index = RelationIndex()
        self._temporal_index = TemporalIndex()
        self._declared_relations: set = set()
        self._journal: Optional[List] = None  # undo log when inside a transaction
        #: Mutation observers (see :meth:`add_mutation_observer`): each
        #: successful mutation — and transaction begin/commit/abort —
        #: is announced as a plain tuple.  The durability layer's WAL
        #: hangs off this.
        self._observers: List = []
        #: Monotonic mutation counter.  Every successful mutating operation
        #: bumps it, so two reads of the database at the same epoch are
        #: guaranteed to see the same state — the invariant the service
        #: layer's result cache keys on.  Rolling back a transaction
        #: restores the epoch it snapshotted (the state is restored too,
        #: so the invariant holds).
        self._epoch = 0

    @property
    def epoch(self) -> int:
        """The current mutation epoch (see ``vidb.service.cache``)."""
        return self._epoch

    @property
    def name(self) -> str:
        return self.sequence.name

    @property
    def in_transaction(self) -> bool:
        """True while an undo-log transaction is open on this database."""
        return self._journal is not None

    # -- oid coercion ------------------------------------------------------
    @staticmethod
    def entity_oid(oid: OidLike) -> Oid:
        return oid if isinstance(oid, Oid) else Oid.entity(oid)

    @staticmethod
    def interval_oid(oid: OidLike) -> Oid:
        return oid if isinstance(oid, Oid) else Oid.interval(oid)

    # -- population ---------------------------------------------------------
    def new_entity(self, oid: OidLike, **attributes) -> EntityObject:
        """Create, register and return an entity object.

        >>> db = VideoDatabase()
        >>> david = db.new_entity("id3", name="David", role="Victim")
        """
        obj = EntityObject(self.entity_oid(oid), attributes)
        return self.add(obj)

    def new_interval(self, oid: OidLike,
                     entities: Iterable[OidLike] = (),
                     duration: Union[GeneralizedInterval, object, None] = None,
                     **attributes) -> GeneralizedIntervalObject:
        """Create, register and return a generalized-interval object.

        ``entities`` may mix oids and bare entity names; ``duration`` may be
        a :class:`GeneralizedInterval`, a dense-order constraint, or a list
        of ``(lo, hi)`` pairs.
        """
        attrs = dict(attributes)
        entity_oids = frozenset(self.entity_oid(e) for e in entities)
        if entity_oids or "entities" not in attrs:
            attrs["entities"] = entity_oids
        if duration is not None:
            if isinstance(duration, (list, tuple)):
                duration = GeneralizedInterval.from_pairs(duration)
            attrs["duration"] = duration
        obj = GeneralizedIntervalObject(self.interval_oid(oid), attrs)
        return self.add(obj)

    def add(self, obj: VideoObject) -> VideoObject:
        """Register a prebuilt model object (entity or interval)."""
        if isinstance(obj, GeneralizedIntervalObject):
            self.sequence.add_interval(obj)
            self._membership_index.add(obj)
            self._temporal_index.add(obj)
            self._log(("remove_object", obj.oid))
        elif isinstance(obj, EntityObject):
            self.sequence.add_object(obj)
            self._log(("remove_object", obj.oid))
        else:
            raise ModelError(f"expected an EntityObject or GeneralizedIntervalObject, got {obj!r}")
        self._attribute_index.add(obj)
        self._epoch += 1
        self._emit(("add", obj))
        return obj

    def relate(self, relation: Union[str, RelationFact], *args: FactArg) -> RelationFact:
        """Assert a relation fact, e.g. ``db.relate("in", o1, o4, gi1)``.

        Arguments may be oids, model objects (their oid is taken) or
        constants.
        """
        if isinstance(relation, RelationFact):
            fact = relation
        else:
            coerced = tuple(
                a.oid if isinstance(a, VideoObject) else a for a in args
            )
            fact = RelationFact(relation, coerced)
        if fact in self.sequence.facts():
            return fact
        self.sequence.add_fact(fact)
        self._relation_index.add(fact)
        self._log(("remove_fact", fact))
        self._epoch += 1
        self._emit(("relate", fact))
        return fact

    # -- updates / deletion --------------------------------------------------
    def replace(self, obj: VideoObject) -> VideoObject:
        """Replace the object with the same oid (reindexing it)."""
        old = self.get(obj.oid)
        if old is None:
            raise UnknownOidError(f"no object with oid {obj.oid}")
        self._deindex(old)
        if isinstance(obj, GeneralizedIntervalObject):
            self.sequence.add_interval(obj, replace=True)
            self._membership_index.add(obj)
            self._temporal_index.add(obj)
        elif isinstance(obj, EntityObject):
            self.sequence.add_object(obj, replace=True)
        else:
            raise ModelError(f"cannot replace with {obj!r}")
        self._attribute_index.add(obj)
        self._log(("restore_object", old))
        self._epoch += 1
        self._emit(("replace", obj))
        return obj

    def set_attribute(self, oid: OidLike, name: str, value) -> VideoObject:
        """Functional attribute update: replaces the stored object."""
        obj = self._require(oid)
        return self.replace(obj.with_attribute(name, value))

    def remove_object(self, oid: OidLike) -> VideoObject:
        """Remove an object (entity or interval) and its index entries.

        Facts mentioning the object are left in place; call
        :meth:`sequence.validate` to find dangling references, or remove
        the facts first.
        """
        obj = self._require(oid)
        self._deindex(obj)
        if isinstance(obj, GeneralizedIntervalObject):
            self.sequence.remove_interval(obj.oid)
        else:
            self.sequence.remove_object(obj.oid)
        self._log(("restore_removed", obj))
        self._epoch += 1
        self._emit(("remove_object", obj.oid))
        return obj

    def remove_fact(self, fact: RelationFact) -> None:
        if fact in self.sequence.facts():
            self.sequence.remove_fact(fact)
            self._relation_index.remove(fact)
            self._log(("restore_fact", fact))
            self._epoch += 1
            self._emit(("remove_fact", fact))

    def _deindex(self, obj: VideoObject) -> None:
        self._attribute_index.remove(obj)
        if isinstance(obj, GeneralizedIntervalObject):
            self._membership_index.remove(obj)
            self._temporal_index.remove(obj)

    def _require(self, oid: OidLike) -> VideoObject:
        if isinstance(oid, str):
            # try both kinds for string convenience
            found = self.sequence.get(Oid.entity(oid)) or self.sequence.get(Oid.interval(oid))
        else:
            found = self.sequence.get(oid)
        if found is None:
            raise UnknownOidError(f"no object with oid {oid}")
        return found

    # -- access paths ---------------------------------------------------------
    def get(self, oid: Oid) -> Optional[VideoObject]:
        return self.sequence.get(oid)

    def entity(self, oid: OidLike) -> EntityObject:
        return self.sequence.object(self.entity_oid(oid))

    def interval(self, oid: OidLike) -> GeneralizedIntervalObject:
        return self.sequence.interval(self.interval_oid(oid))

    def entities(self) -> Tuple[EntityObject, ...]:
        return self.sequence.objects()

    def intervals(self) -> Tuple[GeneralizedIntervalObject, ...]:
        return self.sequence.intervals()

    def facts(self, name: Optional[str] = None) -> FrozenSet[RelationFact]:
        if name is None:
            return self.sequence.facts()
        return self._relation_index.by_name(name)

    def declare_relation(self, name: str) -> None:
        """Register a relation name with no facts (yet).

        Body literals over unknown predicates are an evaluation error (it
        catches typos); declaring a relation lets queries mention it while
        it is still empty.
        """
        RelationFact(name, (0,))  # reuse the name validation
        if name not in self._declared_relations:
            self._declared_relations.add(name)
            self._epoch += 1
            self._emit(("declare_relation", name))

    def relation_names(self) -> FrozenSet[str]:
        return self._relation_index.names() | frozenset(self._declared_relations)

    def facts_with_arg(self, name: str, position: int, value) -> FrozenSet[RelationFact]:
        return self._relation_index.by_arg(name, position, value)

    def find_by_attribute(self, name: str, value) -> List[VideoObject]:
        """Objects whose attribute equals *value* (or contains it, for sets)."""
        oids = self._attribute_index.lookup(name, value)
        return [obj for obj in (self.get(oid) for oid in sorted(oids)) if obj]

    def intervals_with_entity(self, entity: OidLike) -> List[GeneralizedIntervalObject]:
        """All generalized intervals where the object appears (query Q2)."""
        oids = self._membership_index.intervals_of(self.entity_oid(entity))
        return [self.sequence.interval(oid) for oid in sorted(oids)]

    def entities_in(self, interval: OidLike) -> List[EntityObject]:
        """The objects appearing in one interval (query Q1)."""
        gi = self.interval(interval)
        return [self.sequence.object(oid) for oid in sorted(gi.entities)]

    def intervals_at(self, t) -> List[GeneralizedIntervalObject]:
        """Intervals whose footprint covers time point *t*."""
        oids = self._temporal_index.at(t)
        return [self.sequence.interval(oid) for oid in sorted(oids)]

    def intervals_overlapping(self, lo, hi) -> List[GeneralizedIntervalObject]:
        """Intervals whose footprint intersects ``[lo, hi]``."""
        oids = self._temporal_index.overlapping(lo, hi)
        return [self.sequence.interval(oid) for oid in sorted(oids)]

    def footprint(self, interval: OidLike) -> Optional[GeneralizedInterval]:
        return self._temporal_index.footprint(self.interval_oid(interval))

    # -- transactions ------------------------------------------------------------
    def transaction(self) -> "Transaction":
        """Open an undo-log transaction (a context manager)."""
        from vidb.storage.transactions import Transaction

        return Transaction(self)

    def _log(self, entry) -> None:
        if self._journal is not None:
            self._journal.append(entry)

    # -- mutation observers ----------------------------------------------------
    def add_mutation_observer(self, observer) -> None:
        """Subscribe ``observer(event_tuple)`` to every mutation.

        Events mirror the epoch: an event fires exactly when the epoch
        bumps (plus ``("txn_begin",)`` / ``("txn_commit",)`` /
        ``("txn_abort",)`` frames from :class:`Transaction`), which is
        what lets a WAL replay reproduce the epoch exactly.  Observers
        must not mutate the database.
        """
        self._observers.append(observer)

    def remove_mutation_observer(self, observer) -> None:
        try:
            self._observers.remove(observer)
        except ValueError:
            pass

    def _emit(self, event: Tuple) -> None:
        if self._observers:
            for observer in tuple(self._observers):
                observer(event)

    # -- stats ----------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.sequence)

    def stats(self) -> Dict[str, int]:
        return {
            "entities": len(self.sequence.objects()),
            "intervals": len(self.sequence.intervals()),
            "facts": len(self.sequence.facts()),
        }

    def __repr__(self) -> str:
        s = self.stats()
        return (f"VideoDatabase({self.name!r}: {s['entities']} entities, "
                f"{s['intervals']} intervals, {s['facts']} facts)")
