"""Secondary indexes for the video database.

Four index families back the access paths the query language needs:

* :class:`AttributeIndex` — ``(attribute, scalar value) → oids``; set-valued
  attributes are indexed per member, so ``victim: o1`` and
  ``murderer: {o2, o3}`` are both found by exact-value probes.
* :class:`MembershipIndex` — ``entity oid → interval oids`` (the inverse of
  δ1), answering "all generalized intervals where object o appears" without
  scanning.
* :class:`RelationIndex` — facts by name and by ``(name, position, value)``.
* :class:`TemporalIndex` — interval-object footprints by fragment, for
  time-point ("what is on screen at t?") and range-overlap probes.

Indexes are maintained incrementally by :class:`vidb.storage.database.
VideoDatabase`; they never own the data.
"""

from __future__ import annotations

import bisect
from typing import Dict, FrozenSet, Hashable, Iterable, List, Optional, Set, Tuple

from vidb.intervals.generalized import GeneralizedInterval
from vidb.model.objects import GeneralizedIntervalObject, VideoObject
from vidb.model.oid import Oid
from vidb.model.relations import RelationFact


class AttributeIndex:
    """Exact-match index over scalar attribute values (and set members)."""

    def __init__(self) -> None:
        self._map: Dict[Tuple[str, Hashable], Set[Oid]] = {}

    @staticmethod
    def _keys(name: str, value) -> Iterable[Tuple[str, Hashable]]:
        if isinstance(value, frozenset):
            for member in value:
                yield (name, member)
        else:
            try:
                hash(value)
            except TypeError:
                return
            yield (name, value)

    def add(self, obj: VideoObject) -> None:
        for name, value in obj.items():
            for key in self._keys(name, value):
                self._map.setdefault(key, set()).add(obj.oid)

    def remove(self, obj: VideoObject) -> None:
        for name, value in obj.items():
            for key in self._keys(name, value):
                bucket = self._map.get(key)
                if bucket is not None:
                    bucket.discard(obj.oid)
                    if not bucket:
                        del self._map[key]

    def lookup(self, name: str, value) -> FrozenSet[Oid]:
        """Oids whose attribute *name* equals *value* or contains it."""
        return frozenset(self._map.get((name, value), ()))


class MembershipIndex:
    """entity oid → oids of the intervals listing it in ``entities``."""

    def __init__(self) -> None:
        self._map: Dict[Oid, Set[Oid]] = {}

    def add(self, interval: GeneralizedIntervalObject) -> None:
        for member in interval.entities:
            self._map.setdefault(member, set()).add(interval.oid)

    def remove(self, interval: GeneralizedIntervalObject) -> None:
        for member in interval.entities:
            bucket = self._map.get(member)
            if bucket is not None:
                bucket.discard(interval.oid)
                if not bucket:
                    del self._map[member]

    def intervals_of(self, entity: Oid) -> FrozenSet[Oid]:
        return frozenset(self._map.get(entity, ()))


class RelationIndex:
    """Facts by relation name and by (name, argument position, value)."""

    def __init__(self) -> None:
        self._by_name: Dict[str, Set[RelationFact]] = {}
        self._by_arg: Dict[Tuple[str, int, Hashable], Set[RelationFact]] = {}

    def add(self, fact: RelationFact) -> None:
        self._by_name.setdefault(fact.name, set()).add(fact)
        for position, arg in enumerate(fact.args):
            self._by_arg.setdefault((fact.name, position, arg), set()).add(fact)

    def remove(self, fact: RelationFact) -> None:
        bucket = self._by_name.get(fact.name)
        if bucket is not None:
            bucket.discard(fact)
            if not bucket:
                del self._by_name[fact.name]
        for position, arg in enumerate(fact.args):
            key = (fact.name, position, arg)
            arg_bucket = self._by_arg.get(key)
            if arg_bucket is not None:
                arg_bucket.discard(fact)
                if not arg_bucket:
                    del self._by_arg[key]

    def by_name(self, name: str) -> FrozenSet[RelationFact]:
        return frozenset(self._by_name.get(name, ()))

    def by_arg(self, name: str, position: int, value) -> FrozenSet[RelationFact]:
        return frozenset(self._by_arg.get((name, position, value), ()))

    def names(self) -> FrozenSet[str]:
        return frozenset(self._by_name)


class TemporalIndex:
    """Fragment-level temporal index over interval-object footprints.

    Keeps each footprint fragment as ``(start, end, oid)`` in a list sorted
    by start, enabling sweep-style point and range probes.  The fragment
    count per video document is modest (thousands), so a sorted list with
    bisect is both simple and adequate; the benchmark suite measures it.
    """

    def __init__(self) -> None:
        self._starts: List = []          # sorted fragment start points
        self._rows: List[Tuple] = []     # (start, end, oid), parallel order
        self._footprints: Dict[Oid, GeneralizedInterval] = {}

    def add(self, interval: GeneralizedIntervalObject) -> None:
        if not interval.has_duration:
            return
        try:
            footprint = interval.footprint()
        except Exception:
            return  # unbounded/multi-variable durations are not indexable
        self._footprints[interval.oid] = footprint
        for fragment in footprint:
            position = bisect.bisect_left(self._starts, fragment.lo)
            self._starts.insert(position, fragment.lo)
            self._rows.insert(position, (fragment.lo, fragment.hi, interval.oid))

    def remove(self, interval: GeneralizedIntervalObject) -> None:
        footprint = self._footprints.pop(interval.oid, None)
        if footprint is None:
            return
        keep_rows = []
        keep_starts = []
        for start, row in zip(self._starts, self._rows):
            if row[2] != interval.oid:
                keep_starts.append(start)
                keep_rows.append(row)
        self._starts = keep_starts
        self._rows = keep_rows

    def footprint(self, oid: Oid) -> Optional[GeneralizedInterval]:
        return self._footprints.get(oid)

    def at(self, t) -> FrozenSet[Oid]:
        """Oids of intervals whose footprint covers time point *t*."""
        out: Set[Oid] = set()
        limit = bisect.bisect_right(self._starts, t)
        for start, end, oid in self._rows[:limit]:
            if oid in out:
                continue
            footprint = self._footprints[oid]
            if start <= t <= end and footprint.contains_point(t):
                out.add(oid)
        return frozenset(out)

    def overlapping(self, lo, hi) -> FrozenSet[Oid]:
        """Oids whose footprint intersects the closed range ``[lo, hi]``."""
        probe = GeneralizedInterval.from_pairs([(lo, hi)])
        out: Set[Oid] = set()
        limit = bisect.bisect_right(self._starts, hi)
        for _start, end, oid in self._rows[:limit]:
            if oid in out:
                continue
            if end < lo:
                continue
            if self._footprints[oid].overlaps(probe):
                out.add(oid)
        return frozenset(out)
