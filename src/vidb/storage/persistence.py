"""JSON persistence for video databases.

Snapshots are ordinary JSON documents; model values are encoded with
single-key tag objects so that decoding is unambiguous:

================  =================================================
value             encoding
================  =================================================
constant          the JSON scalar itself
Fraction          ``{"$fraction": [numerator, denominator]}``
Oid               ``{"$oid": {"kind": ..., "parts": [...]}}``
frozenset         ``{"$set": [encoded values ...]}``
Constraint        ``{"$constraint": [[atom, ...], ...]}`` (its DNF)
constraint atom   ``{"left": term, "op": str, "right": term}``
Var               ``{"$var": name}``
================  =================================================

The snapshot is stable under a decode/encode round-trip, which the
integration tests verify.
"""

from __future__ import annotations

import json
import os
from fractions import Fraction
from pathlib import Path
from typing import Any, Dict, Union

from vidb.constraints.dense import Comparison, Constraint, from_dnf
from vidb.constraints.terms import Var
from vidb.errors import PersistenceError
from vidb.model.objects import EntityObject, GeneralizedIntervalObject
from vidb.model.oid import Oid
from vidb.model.relations import RelationFact
from vidb.storage.database import VideoDatabase

FORMAT_VERSION = 1


# -- value codec --------------------------------------------------------------

def encode_value(value: Any) -> Any:
    if isinstance(value, bool):
        raise PersistenceError("booleans are not model values")
    if isinstance(value, Fraction):
        return {"$fraction": [value.numerator, value.denominator]}
    if isinstance(value, (int, float, str)):
        return value
    if isinstance(value, Oid):
        return {"$oid": {"kind": value.kind, "parts": sorted(value.parts)}}
    if isinstance(value, frozenset):
        encoded = [encode_value(v) for v in value]
        encoded.sort(key=json.dumps)  # deterministic snapshots
        return {"$set": encoded}
    if isinstance(value, Constraint):
        clauses = [[_encode_atom(a) for a in clause] for clause in value.dnf()]
        return {"$constraint": clauses}
    raise PersistenceError(f"cannot encode value {value!r}")


def _encode_atom(atom: Comparison) -> Dict[str, Any]:
    return {
        "left": _encode_term(atom.left),
        "op": atom.op,
        "right": _encode_term(atom.right),
    }


def _encode_term(term: Any) -> Any:
    if isinstance(term, Var):
        return {"$var": term.name}
    return encode_value(term)


def decode_value(data: Any) -> Any:
    if isinstance(data, (int, float, str)):
        return data
    if isinstance(data, dict):
        if "$fraction" in data:
            numerator, denominator = data["$fraction"]
            return Fraction(numerator, denominator)
        if "$oid" in data:
            payload = data["$oid"]
            return Oid(payload["kind"], payload["parts"])
        if "$set" in data:
            return frozenset(decode_value(v) for v in data["$set"])
        if "$constraint" in data:
            clauses = [
                tuple(_decode_atom(a) for a in clause) for clause in data["$constraint"]
            ]
            return from_dnf(clauses)
    raise PersistenceError(f"cannot decode value {data!r}")


def _decode_atom(data: Dict[str, Any]) -> Comparison:
    return Comparison(_decode_term(data["left"]), data["op"], _decode_term(data["right"]))


def _decode_term(data: Any) -> Any:
    if isinstance(data, dict) and "$var" in data:
        return Var(data["$var"])
    return decode_value(data)


# -- database codec --------------------------------------------------------------

def database_to_dict(db: VideoDatabase) -> Dict[str, Any]:
    """A JSON-ready snapshot of the whole database."""
    return {
        "format": FORMAT_VERSION,
        "name": db.name,
        "epoch": db.epoch,
        "entities": [
            {
                "oid": encode_value(obj.oid),
                "attributes": {k: encode_value(v) for k, v in sorted(obj.items())},
            }
            for obj in sorted(db.entities(), key=lambda o: o.oid)
        ],
        "intervals": [
            {
                "oid": encode_value(obj.oid),
                "attributes": {k: encode_value(v) for k, v in sorted(obj.items())},
            }
            for obj in sorted(db.intervals(), key=lambda o: o.oid)
        ],
        "facts": sorted(
            (
                {
                    "name": fact.name,
                    "args": [encode_value(a) for a in fact.args],
                }
                for fact in db.facts()
            ),
            key=json.dumps,
        ),
    }


def database_from_dict(data: Dict[str, Any]) -> VideoDatabase:
    if not isinstance(data, dict) or "format" not in data:
        raise PersistenceError("not a vidb snapshot")
    if data["format"] != FORMAT_VERSION:
        raise PersistenceError(
            f"snapshot format {data['format']!r} is not supported "
            f"(expected {FORMAT_VERSION})"
        )
    db = VideoDatabase(data.get("name", "video"))
    for record in data.get("entities", ()):
        oid = decode_value(record["oid"])
        attrs = {k: decode_value(v) for k, v in record.get("attributes", {}).items()}
        db.add(EntityObject(oid, attrs))
    for record in data.get("intervals", ()):
        oid = decode_value(record["oid"])
        attrs = {k: decode_value(v) for k, v in record.get("attributes", {}).items()}
        db.add(GeneralizedIntervalObject(oid, attrs))
    for record in data.get("facts", ()):
        args = tuple(decode_value(a) for a in record["args"])
        db.relate(RelationFact(record["name"], args))
    # Restore the mutation epoch the snapshot was taken at, so a reload
    # does not silently restart cache-keying epochs (older snapshots
    # without the field keep the rebuild count, which is still
    # monotonic from zero).
    epoch = data.get("epoch")
    if isinstance(epoch, int) and epoch >= 0:
        db._epoch = epoch
    return db


def dumps(db: VideoDatabase, indent: int = 2) -> str:
    """Serialise a database to a JSON string."""
    return json.dumps(database_to_dict(db), indent=indent, sort_keys=True)


def loads(text: str) -> VideoDatabase:
    """Deserialise a database from a JSON string."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise PersistenceError(f"invalid JSON: {exc}") from exc
    return database_from_dict(data)


def save(db: VideoDatabase, path: Union[str, Path]) -> None:
    """Write a snapshot to *path* atomically.

    The document goes to a temp file in the same directory, is fsynced,
    then moved over *path* with ``os.replace`` — a crash mid-save can
    truncate only the temp file, never an existing store.
    """
    path = Path(path)
    tmp = path.with_name(f".{path.name}.tmp")
    with tmp.open("w", encoding="utf-8") as f:
        f.write(dumps(db))
        f.flush()
        os.fsync(f.fileno())
    os.replace(tmp, path)


def load(path: Union[str, Path]) -> VideoDatabase:
    """Read a snapshot from *path*."""
    return loads(Path(path).read_text(encoding="utf-8"))
