"""Undo-log transactions for :class:`vidb.storage.database.VideoDatabase`.

The paper motivates a database substrate for video partly by the classical
database services — "persistence, transactions, concurrency control,
recovery".  vidb provides single-writer transactions with full rollback:
every mutating operation appends its inverse to a journal; on exception
(or explicit :meth:`Transaction.rollback`) the journal is replayed in
reverse.

Usage::

    with db.transaction():
        db.new_entity("o1", name="Reporter")
        db.relate("in", o1, gi1)
        ...                       # raising here rolls everything back
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

from vidb.errors import TransactionError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from vidb.storage.database import VideoDatabase


class Transaction:
    """A context manager recording inverse operations for rollback."""

    def __init__(self, db: "VideoDatabase"):
        self._db = db
        self._journal: Optional[List[Tuple]] = None
        self._closed = False
        self._nested = False
        self._epoch_snapshot: Optional[int] = None

    # -- context protocol ---------------------------------------------------
    def __enter__(self) -> "Transaction":
        if self._closed:
            raise TransactionError("transaction object cannot be reused")
        if self._db._journal is not None:
            # Nested transaction: piggyback on the outer journal.  Inner
            # commits are no-ops; an inner rollback raises, because partial
            # undo of a shared journal would corrupt the outer scope.
            self._nested = True
            return self
        self._journal = []
        self._db._journal = self._journal
        self._epoch_snapshot = self._db._epoch
        self._db._emit(("txn_begin",))
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._nested:
            return False
        if not self._closed:
            # An explicit commit()/rollback() inside the block already
            # settled the transaction; otherwise settle it now.
            if exc_type is not None:
                self.rollback()
            else:
                self.commit()
        return False  # never swallow exceptions

    # -- explicit control -------------------------------------------------------
    def commit(self) -> None:
        if self._nested:
            return
        if self._closed:
            raise TransactionError("transaction already closed")
        self._db._journal = None
        self._journal = None
        self._closed = True
        self._db._emit(("txn_commit",))

    def rollback(self) -> None:
        if self._nested:
            raise TransactionError("cannot roll back a nested transaction")
        if self._closed:
            raise TransactionError("transaction already closed")
        journal = self._journal or []
        # Detach first so undo operations are not themselves journaled.
        self._db._journal = None
        self._journal = None
        self._closed = True
        for entry in reversed(journal):
            self._undo(entry)
        # The undo replay bumped the epoch once per inverse operation;
        # the state now equals the snapshot state, so restore the
        # snapshot epoch too (same state <=> same epoch).
        if self._epoch_snapshot is not None:
            self._db._epoch = self._epoch_snapshot
        # The inverse operations above were announced to mutation
        # observers too; the abort frame voids the whole segment, so a
        # WAL replay skips both the forward and the inverse records.
        self._db._emit(("txn_abort",))

    # -- undo interpreter -----------------------------------------------------
    def _undo(self, entry: Tuple) -> None:
        db = self._db
        op = entry[0]
        if op == "remove_object":
            db.remove_object(entry[1])
        elif op == "remove_fact":
            db.remove_fact(entry[1])
        elif op == "restore_object":
            db.replace(entry[1])
        elif op == "restore_removed":
            db.add(entry[1])
        elif op == "restore_fact":
            db.relate(entry[1])
        else:  # pragma: no cover - journal entries are produced locally
            raise TransactionError(f"unknown journal entry {entry!r}")
