"""vidb.stream — live annotation streams: observer-fed views, standing
queries, and bulk ingest.

The streaming layer closes the loop between the mutation-observer
stream (:meth:`vidb.storage.database.VideoDatabase.add_mutation_observer`)
and the incremental query machinery
(:class:`vidb.query.incremental.MaterializedView`):

* :class:`StreamHub` turns raw observer events into committed,
  transaction-granular :class:`CommittedDelta` batches (aborted
  segments are discarded, never delivered);
* :class:`ViewRegistry` keeps registered materialized views fed from
  those deltas automatically (ROADMAP item 2's observer wiring);
* :class:`Subscription` / :class:`SubscriptionManager` implement
  standing queries — continuous queries whose *new* answers are pushed
  to clients as ordered, bounded, loss-explicit notification batches
  (ROADMAP item 4);
* :mod:`vidb.stream.ingest` defines the timestamp-ordered JSON-lines
  annotation-dump format and the batched-transaction driver behind
  ``vidb ingest``.

See docs/STREAMING.md for the architecture and the backpressure
contract.
"""

from vidb.stream.hub import (
    CommittedDelta,
    MONOTONE_EVENTS,
    NON_MONOTONE_EVENTS,
    StreamHub,
)
from vidb.stream.ingest import (
    IngestReport,
    generate_dump,
    ingest_local,
    ingest_records,
    iter_dump,
    load_dump,
    write_dump,
)
from vidb.stream.standing import Subscription, SubscriptionManager
from vidb.stream.views import ViewRegistry, apply_delta

__all__ = [
    "CommittedDelta",
    "MONOTONE_EVENTS",
    "NON_MONOTONE_EVENTS",
    "StreamHub",
    "ViewRegistry",
    "apply_delta",
    "Subscription",
    "SubscriptionManager",
    "IngestReport",
    "generate_dump",
    "ingest_local",
    "ingest_records",
    "iter_dump",
    "load_dump",
    "write_dump",
]
