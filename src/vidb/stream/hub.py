"""The mutation-stream hub: observer events -> committed deltas.

A :class:`StreamHub` subscribes to a database's mutation-observer
stream — the same hook :class:`vidb.durability.DurableDatabase` journals
through — and turns the raw per-mutation event tuples into
:class:`CommittedDelta` batches with *transaction* granularity:

* events arriving inside a ``txn_begin`` / ``txn_commit`` window are
  buffered and delivered as **one** delta when the commit frame lands;
* events of an aborted transaction (``txn_abort``) are discarded
  wholesale — the rollback's inverse operations included — so a
  consumer never observes state that was not committed;
* events arriving outside any transaction are autocommit: each one is
  delivered immediately as a single-event delta.

Consumers (:class:`~vidb.stream.views.ViewRegistry`,
:class:`~vidb.stream.standing.SubscriptionManager`) register a callback
and receive every committed delta in commit order, on the mutating
thread, while that thread still holds whatever lock serialized the
mutation (the service executor's write lock, typically) — so consumers
see deltas strictly serialized and gap-free.

The hub also maintains an **epoch mirror**: every mutation event bumps
the database epoch by exactly one, so the hub can predict the epoch
and detect out-of-band writes (mutations applied while the observer
was detached, or a consumer resuming against a database that moved
underneath it).  :meth:`StreamHub.check_epoch` raises
:class:`~vidb.errors.EvaluationError` in the analyzer's ``VDB0xx``
diagnostic style on a mismatch instead of letting consumers silently
diverge.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, List, Optional, Tuple

from vidb.errors import EvaluationError
from vidb.obs.trace import current_context
from vidb.storage.database import VideoDatabase

#: One raw mutation-observer event (see
#: :meth:`vidb.storage.database.VideoDatabase.add_mutation_observer`).
MutationEvent = Tuple[Any, ...]

#: Event kinds that only ever *grow* the database — the ones semi-naive
#: delta maintenance can apply incrementally.
MONOTONE_EVENTS = frozenset({"add", "relate", "declare_relation"})

#: Event kinds that shrink or rewrite state; an incremental view must
#: rebuild from scratch after a committed delta containing one.
NON_MONOTONE_EVENTS = frozenset({"replace", "remove_object", "remove_fact"})

#: Transaction framing (no state change of their own).
TXN_EVENTS = frozenset({"txn_begin", "txn_commit", "txn_abort"})


class CommittedDelta:
    """One committed batch of mutation events, in application order."""

    __slots__ = ("events", "epoch", "pre_epoch", "origin_ts", "origin_pc",
                 "trace")

    def __init__(self, events: List[MutationEvent], epoch: int,
                 pre_epoch: int, origin_ts: Optional[float] = None,
                 origin_pc: Optional[float] = None,
                 trace: Optional[str] = None):
        #: The committed events, in the order they were applied.
        self.events = events
        #: The database epoch *after* this delta committed.
        self.epoch = epoch
        #: The database epoch *before* the first event of this delta.
        self.pre_epoch = pre_epoch
        #: Commit wall-clock time (``time.time()``) — for operators.
        self.origin_ts = time.time() if origin_ts is None else origin_ts
        #: Commit monotonic time (``perf_counter``) — the origin point
        #: the commit→notify latency histograms measure against.  Only
        #: meaningful inside the committing process.
        self.origin_pc = (time.perf_counter() if origin_pc is None
                          else origin_pc)
        #: Traceparent header of the mutating request, when the commit
        #: happened under an ambient trace context (see
        #: :mod:`vidb.obs.trace`); notification batches carry it so a
        #: write can be joined to the notifications it caused.
        self.trace = trace

    @property
    def monotone(self) -> bool:
        """True when every event only grows the database (pure inserts),
        so incremental (semi-naive) maintenance is sound."""
        return all(event[0] in MONOTONE_EVENTS for event in self.events)

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:
        kinds = [event[0] for event in self.events]
        return (f"CommittedDelta({len(self.events)} events {kinds!r}, "
                f"epoch {self.pre_epoch}->{self.epoch})")


def out_of_band_error(code: str, message: str) -> EvaluationError:
    """An :class:`EvaluationError` in the VDB diagnostic style."""
    return EvaluationError(f"{code} {message}")


class StreamHub:
    """Fan committed mutation deltas out to registered consumers.

    One hub serves one :class:`VideoDatabase`.  Thread-safety: events
    arrive serialized (the database requires external write
    serialization — the executor's write lock, or a single-writer
    embedding); consumer registration may happen from any thread and is
    guarded by the hub lock.  Consumer callbacks run on the mutating
    thread, synchronously at commit time, and must not mutate the
    database (the standard observer contract).
    """

    def __init__(self, db: VideoDatabase):
        self.db = db
        self._lock = threading.Lock()
        self._consumers: List[Callable[[CommittedDelta], None]] = []
        self._buffer: Optional[List[MutationEvent]] = None
        self._txn_pre_epoch = 0
        #: The epoch the hub believes the database is at.  Every
        #: observed mutation event bumps it by one (abort resyncs it),
        #: so a divergence from ``db.epoch`` means mutations happened
        #: that this hub never saw.
        self.mirror_epoch = db.epoch
        self.deltas_delivered = 0
        self.events_seen = 0
        self.aborted_segments = 0
        self._attached = False
        self.attach()

    # -- observer lifecycle -------------------------------------------------
    def attach(self) -> None:
        """(Re)subscribe to the database's mutation-observer stream."""
        if not self._attached:
            self.mirror_epoch = self.db.epoch
            self.db.add_mutation_observer(self._on_event)
            self._attached = True

    def detach(self) -> None:
        if self._attached:
            self.db.remove_mutation_observer(self._on_event)
            self._attached = False
            self._buffer = None

    def rebind(self, db: VideoDatabase) -> None:
        """Follow a whole-database swap (a replica resync): detach from
        the old object, attach to the new one, drop any open buffer."""
        self.detach()
        self.db = db
        self.attach()

    # -- consumers ----------------------------------------------------------
    def add_consumer(self, consumer: Callable[[CommittedDelta], None]) -> None:
        with self._lock:
            self._consumers.append(consumer)

    def remove_consumer(self,
                        consumer: Callable[[CommittedDelta], None]) -> None:
        with self._lock:
            try:
                self._consumers.remove(consumer)
            except ValueError:
                pass

    def consumer_count(self) -> int:
        with self._lock:
            return len(self._consumers)

    # -- the observer --------------------------------------------------------
    def _on_event(self, event: MutationEvent) -> None:
        kind = event[0]
        if kind == "txn_begin":
            # Epoch before the first event of the segment: the mirror,
            # which equals db.epoch unless out-of-band writes happened
            # (check_epoch will catch those at delivery time).
            self._txn_pre_epoch = self.mirror_epoch
            self._buffer = []
            return
        if kind == "txn_commit":
            buffered, self._buffer = self._buffer, None
            if buffered:
                self._deliver(CommittedDelta(buffered, self.mirror_epoch,
                                             self._txn_pre_epoch))
            return
        if kind == "txn_abort":
            # Drop the whole segment — forward mutations and the
            # rollback's inverse operations alike — and resync the
            # mirror to the restored epoch.
            self._buffer = None
            self.aborted_segments += 1
            self.mirror_epoch = self.db.epoch
            return
        self.events_seen += 1
        pre = self.mirror_epoch
        self.mirror_epoch += 1
        if self._buffer is not None:
            self._buffer.append(event)
            return
        # Autocommit: one mutation outside any transaction.
        self._deliver(CommittedDelta([event], self.mirror_epoch, pre))

    def _deliver(self, delta: CommittedDelta) -> None:
        if delta.trace is None:
            context = current_context()
            if context is not None:
                delta.trace = context.to_header()
        self.deltas_delivered += 1
        with self._lock:
            consumers = tuple(self._consumers)
        for consumer in consumers:
            consumer(delta)

    # -- the out-of-band guard ----------------------------------------------
    def check_epoch(self) -> None:
        """Verify the hub observed every mutation of its database.

        The epoch mirror advances in lockstep with observed events; a
        mismatch against the live ``db.epoch`` means writes were applied
        while the observer was not listening — an observer-fed consumer
        would silently diverge, so this raises instead.
        """
        if self.mirror_epoch != self.db.epoch:
            raise out_of_band_error(
                "VDB051",
                f"out-of-band write detected: database {self.db.name!r} is "
                f"at epoch {self.db.epoch} but the stream hub observed "
                f"epoch {self.mirror_epoch}; mutations were applied while "
                f"the observer was detached — rebuild the registered views "
                f"(ViewRegistry.refresh) before trusting them")

    def __repr__(self) -> str:
        return (f"StreamHub({self.db.name!r}, "
                f"{self.consumer_count()} consumers, "
                f"{self.deltas_delivered} deltas, "
                f"mirror epoch {self.mirror_epoch})")
