"""Bulk ingest of timestamp-ordered annotation dumps.

Detector pipelines (the CLIP-indexing shape from SNIPPETS.md §1)
produce append-only annotation streams: entities appear, intervals of
their appearance close and are emitted in timestamp order, relation
facts link them.  This module defines the JSON-lines dump format for
such streams and the batched-transaction driver behind ``vidb ingest``:

One record per line, ``t`` (seconds, non-decreasing) + ``kind``::

    {"t": 0.0,  "kind": "entity",   "oid": "o1",
     "attributes": {"name": "anchor", "role": "Speaker"}}
    {"t": 12.4, "kind": "interval", "oid": "gi1", "entities": ["o1"],
     "duration": [[0, 12.4]], "attributes": {"shot": "closeup"}}
    {"t": 12.4, "kind": "fact",     "relation": "appears",
     "args": ["o1", "gi1"]}

Records are applied through **batched transactions** (``batch_size``
records per commit) — each commit is one atomic delta on the mutation
stream, so standing queries fire once per batch, not once per record,
and a mid-batch failure rolls the whole batch back (subscribers see
nothing from it).
"""

from __future__ import annotations

import json
import random
import time
from typing import (
    Any,
    Callable,
    Dict,
    IO,
    Iterable,
    Iterator,
    List,
    Optional,
)

from vidb.errors import ProtocolError
from vidb.model.oid import Oid
from vidb.storage.database import VideoDatabase

#: One parsed dump record.
Record = Dict[str, Any]

RECORD_KINDS = frozenset({"entity", "interval", "fact"})


# -- the dump codec ----------------------------------------------------------
def parse_record(line: str, lineno: int = 0) -> Record:
    try:
        record = json.loads(line)
    except ValueError as error:
        raise ProtocolError(f"dump line {lineno}: not JSON ({error})")
    if not isinstance(record, dict):
        raise ProtocolError(f"dump line {lineno}: record must be an object")
    kind = record.get("kind")
    if kind not in RECORD_KINDS:
        raise ProtocolError(
            f"dump line {lineno}: 'kind' must be one of "
            f"{sorted(RECORD_KINDS)}, got {kind!r}")
    if not isinstance(record.get("t"), (int, float)):
        raise ProtocolError(f"dump line {lineno}: numeric 't' is required")
    if kind in ("entity", "interval") and not isinstance(
            record.get("oid"), str):
        raise ProtocolError(f"dump line {lineno}: {kind} needs string 'oid'")
    if kind == "fact":
        if not isinstance(record.get("relation"), str):
            raise ProtocolError(
                f"dump line {lineno}: fact needs string 'relation'")
        if not isinstance(record.get("args"), list) or not record["args"]:
            raise ProtocolError(
                f"dump line {lineno}: fact needs non-empty 'args' array")
    return record


def iter_dump(lines: Iterable[str]) -> Iterator[Record]:
    """Parse a dump, enforcing non-decreasing timestamps."""
    last_t: Optional[float] = None
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        record = parse_record(line, lineno)
        t = float(record["t"])
        if last_t is not None and t < last_t:
            raise ProtocolError(
                f"dump line {lineno}: timestamp {t} goes backwards "
                f"(previous record at {last_t}); dumps must be "
                f"timestamp-ordered")
        last_t = t
        yield record


def load_dump(path: str) -> List[Record]:
    with open(path, "r", encoding="utf-8") as handle:
        return list(iter_dump(handle))


def write_dump(records: Iterable[Record], out: IO[str]) -> int:
    count = 0
    for record in records:
        out.write(json.dumps(record) + "\n")
        count += 1
    return count


def generate_dump(entities: int = 10, intervals: int = 100,
                  relation: str = "appears", seed: int = 0,
                  step_s: float = 1.0) -> List[Record]:
    """A synthetic detector-style dump: *entities* tracked subjects,
    *intervals* appearance intervals in timestamp order, each linked to
    its entities with *relation* facts.  Deterministic under *seed*."""
    rng = random.Random(seed)
    records: List[Record] = []
    for index in range(entities):
        records.append({
            "t": 0.0, "kind": "entity", "oid": f"o{index + 1}",
            "attributes": {"name": f"subject{index + 1}",
                           "track": index + 1},
        })
    t = 0.0
    for index in range(intervals):
        t += rng.uniform(0.1, step_s)
        start = round(t, 3)
        end = round(t + rng.uniform(0.5, 5.0), 3)
        oid = f"gi{index + 1}"
        members = rng.sample(range(1, entities + 1),
                             k=rng.randint(1, min(3, entities)))
        records.append({
            "t": start, "kind": "interval", "oid": oid,
            "entities": [f"o{m}" for m in members],
            "duration": [[start, end]],
            "attributes": {"confidence": round(rng.uniform(0.5, 1.0), 3)},
        })
        for member in members:
            records.append({
                "t": start, "kind": "fact", "relation": relation,
                "args": [f"o{member}", oid],
            })
    return records


# -- applying records --------------------------------------------------------
def _resolve_fact_arg(db: VideoDatabase, value: Any) -> Any:
    """A fact argument: an existing oid when one matches, else constant
    (the same resolution the wire protocol's ``relate`` op uses)."""
    if isinstance(value, str):
        for oid in (Oid.entity(value), Oid.interval(value)):
            if db.get(oid) is not None:
                return oid
    return value


def apply_record(db: VideoDatabase, record: Record) -> None:
    """Apply one dump record to *db* (caller provides the transaction)."""
    kind = record["kind"]
    if kind == "entity":
        db.new_entity(record["oid"], **record.get("attributes", {}))
    elif kind == "interval":
        duration = record.get("duration")
        pairs = ([tuple(pair) for pair in duration]
                 if duration is not None else None)
        db.new_interval(record["oid"],
                        entities=record.get("entities", ()),
                        duration=pairs,
                        **record.get("attributes", {}))
    elif kind == "fact":
        db.relate(record["relation"],
                  *[_resolve_fact_arg(db, a) for a in record["args"]])
    else:  # pragma: no cover - parse_record rejects unknown kinds
        raise ProtocolError(f"unknown record kind {kind!r}")


def record_to_op(record: Record) -> Dict[str, Any]:
    """One dump record as a wire ``batch`` sub-op."""
    kind = record["kind"]
    if kind == "entity":
        return {"op": "insert_entity", "oid": record["oid"],
                "attributes": record.get("attributes", {})}
    if kind == "interval":
        return {"op": "insert_interval", "oid": record["oid"],
                "entities": record.get("entities", []),
                "duration": record.get("duration"),
                "attributes": record.get("attributes", {})}
    if kind == "fact":
        return {"op": "relate", "relation": record["relation"],
                "args": list(record["args"])}
    raise ProtocolError(f"unknown record kind {kind!r}")


class IngestReport:
    """What one ingest run did (rendered by ``vidb ingest``)."""

    def __init__(self) -> None:
        self.records = 0
        self.batches = 0
        self.elapsed_s = 0.0
        self.final_epoch: Optional[int] = None
        self.head_lsn: Optional[int] = None

    @property
    def records_per_s(self) -> float:
        return self.records / self.elapsed_s if self.elapsed_s > 0 else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "records": self.records,
            "batches": self.batches,
            "elapsed_s": round(self.elapsed_s, 6),
            "records_per_s": round(self.records_per_s, 1),
            "epoch": self.final_epoch,
            "head_lsn": self.head_lsn,
        }

    def __repr__(self) -> str:
        return (f"IngestReport({self.records} records / "
                f"{self.batches} batches, "
                f"{self.records_per_s:.0f} rec/s)")


def _batches(records: Iterable[Record],
             batch_size: int) -> Iterator[List[Record]]:
    batch: List[Record] = []
    for record in records:
        batch.append(record)
        if len(batch) >= batch_size:
            yield batch
            batch = []
    if batch:
        yield batch


def ingest_records(client: Any, records: Iterable[Record],
                   batch_size: int = 100,
                   progress: Optional[Callable[[IngestReport], None]] = None,
                   ) -> IngestReport:
    """Replay *records* through a server via atomic ``batch`` ops.

    *client* is a :class:`~vidb.service.server.ServiceClient` (anything
    with ``.batch(ops)``).  Each wire batch commits as one transaction:
    one delta, one notification round for standing queries.
    """
    if batch_size < 1:
        raise ProtocolError("batch_size must be at least 1")
    report = IngestReport()
    started = time.perf_counter()
    for batch in _batches(records, batch_size):
        reply = client.batch([record_to_op(record) for record in batch])
        report.records += len(batch)
        report.batches += 1
        report.final_epoch = reply.get("epoch")
        report.head_lsn = reply.get("head_lsn", report.head_lsn)
        if progress is not None:
            report.elapsed_s = time.perf_counter() - started
            progress(report)
    report.elapsed_s = time.perf_counter() - started
    return report


def ingest_local(service: Any, records: Iterable[Record],
                 batch_size: int = 100) -> IngestReport:
    """Replay *records* straight into a
    :class:`~vidb.service.executor.ServiceExecutor` (embedded mode —
    the benchmarks and tests use this to skip the socket)."""
    if batch_size < 1:
        raise ProtocolError("batch_size must be at least 1")
    report = IngestReport()
    started = time.perf_counter()
    for batch in _batches(records, batch_size):
        def _apply(db: VideoDatabase, batch: List[Record] = batch) -> None:
            for record in batch:
                apply_record(db, record)
        service.mutate(_apply)
        report.records += len(batch)
        report.batches += 1
    report.final_epoch = service.db.epoch
    report.elapsed_s = time.perf_counter() - started
    return report
