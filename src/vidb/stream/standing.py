"""Standing queries: continuous queries fired by committed deltas.

MavVStream-style situation monitoring over the paper's video model: a
client registers a query once and from then on receives the *new*
answers each committed transaction produces, instead of polling with
repeated evaluation.  Mechanically, a :class:`Subscription` compiles
its query exactly the way :meth:`vidb.query.engine.QueryEngine.execute`
does — an anonymous rule deriving ``q__answer`` over the pruned
program — but materializes it as an observer-fed
:class:`~vidb.query.incremental.MaterializedView`; the answer tuples
each committed delta derives are the incremental notification.

Delivery contract (the backpressure story, see docs/STREAMING.md):

* notifications are **ordered**: batches carry a per-subscription
  sequence number and the post-commit epoch, and arrive in commit
  order;
* queues are **bounded** (``max_queue`` batches): a slow consumer
  loses the *oldest* batches first, and the oldest surviving batch is
  marked ``lagged`` with the cumulative drop count — loss is always
  explicit, never silent;
* **aborted transactions notify nothing** — the hub only delivers
  committed deltas;
* notifications are **new answers only**: when a deletion forces a
  view rebuild, answers that disappeared are not retracted over the
  wire (retraction notices are future work; the ``rebuilds`` counter
  exposes how often it happened).
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Set, Tuple, Union

from vidb.errors import ServiceOverloadedError, SessionError
from vidb.query.ast import Literal, Query, Rule
from vidb.query.engine import (
    ANSWER_PREDICATE,
    QueryEngine,
    _goal_predicates,
    relevant_rules,
)
from vidb.query.fixpoint import GroundTuple
from vidb.query.incremental import MaterializedView
from vidb.query.parser import parse_query
from vidb.query.safety import check_query
from vidb.stream.hub import CommittedDelta, StreamHub
from vidb.stream.views import apply_delta

_subscription_ids = itertools.count(1)

#: One notification batch as shipped to clients (JSON-ready).
Batch = Dict[str, Any]


class Subscription:
    """One standing query: a fed view plus a bounded notification queue."""

    def __init__(self, query: Union[str, Query], engine: QueryEngine,
                 *, filter: Optional[Dict[str, Any]] = None,
                 max_queue: int = 256,
                 session_id: Optional[str] = None,
                 detached: bool = False,
                 event_log: Optional[Any] = None):
        self.id = f"sub{next(_subscription_ids)}"
        if isinstance(query, str):
            self.text: str = query
            query = parse_query(query)
        else:
            self.text = repr(query)
        check_query(query)
        # Subscribe-time streaming-safety analysis: error-severity
        # findings (VDB06x non-monotone operators, VDB006 unknown
        # predicates, safety errors) raise here, *before* any view is
        # built, and the subscribe op ships the located diagnostics to
        # the client.  The classification (incremental maintenance,
        # deletion sensitivity, growth) is surfaced via describe().
        analysis = engine.analyze_standing(query)
        self.diagnostics = analysis.diagnostics
        self.classification: Dict[str, Any] = dict(
            analysis.streaming[0]) if analysis.streaming else {}
        answer_vars = query.answer_variables
        if answer_vars:
            head = Literal(ANSWER_PREDICATE, list(answer_vars))
        else:
            head = Literal(ANSWER_PREDICATE, [0])  # boolean query
        anonymous = Rule(head, query.body, name=f"standing-{self.id}")
        base = relevant_rules(engine.program, _goal_predicates(query.body))
        program = base.extend([anonymous])
        #: Answer column names (empty for a boolean query).
        self.variables: Tuple[str, ...] = tuple(v.name for v in answer_vars)
        self.filter = dict(filter or {})
        for name in self.filter:
            if name not in self.variables:
                raise SessionError(
                    f"subscription filter names unknown variable {name!r} "
                    f"(answer variables: {list(self.variables)})")
        if max_queue < 1:
            raise SessionError("max_queue must be at least 1")
        self.max_queue = max_queue
        self.session_id = session_id
        #: A detached subscription survives the session that created it.
        self.detached = detached
        self.created_at = time.time()
        # May raise EvaluationError (negation in the relevant rules);
        # the subscribe op surfaces that to the client.
        self.view = MaterializedView(
            engine.db, program, computed=engine.computed,
            max_objects=engine.max_objects, kernel=engine.kernel)
        self.view.seal(f"Subscription[{self.id}]")
        #: Answer rows already notified (new-answers-only dedup across
        #: rebuilds).
        self._known: Set[GroundTuple] = set(
            self.view.relation(ANSWER_PREDICATE))
        self._cond = threading.Condition()
        self._queue: List[Batch] = []
        self._next_seq = 1
        self.closed = False
        self.batches_emitted = 0
        self.rows_emitted = 0
        self.dropped_batches = 0
        self.dropped_rows = 0
        self.lag_events = 0
        #: Commit→notify latency of the most recent batch (see feed()).
        self.last_latency_ms: Optional[float] = None
        self._event_log = event_log

    # -- fed by the manager (hub thread, serialized) -------------------------
    def feed(self, delta: CommittedDelta) -> Optional[Batch]:
        """Apply one committed delta; queue + return the batch, if any."""
        if self.closed:
            return None
        derived = apply_delta(self.view, delta)
        if derived is None:
            # Non-monotone delta rebuilt the view; notify answers that
            # are new relative to everything already notified.
            rows = set(self.view.relation(ANSWER_PREDICATE)) - self._known
        else:
            rows = set(derived.get(ANSWER_PREDICATE, ())) - self._known
        if not rows:
            return None
        self._known.update(rows)
        if self.filter:
            rows = {row for row in rows if self._matches(row)}
            if not rows:
                return None
        rendered = sorted([str(value) for value in row] for row in rows)
        # Commit→notify latency: from the delta's commit timestamp to
        # the moment the batch is queued for the consumer.  Both ends
        # are perf_counter readings in the committing process (delivery
        # runs synchronously on the mutating thread), so the measure is
        # monotone and immune to wall-clock steps.
        latency_ms = max(0.0, (time.perf_counter() - delta.origin_pc) * 1000)
        lagged_event: Optional[Dict[str, Any]] = None
        with self._cond:
            if self.closed:
                return None
            batch: Batch = {"seq": self._next_seq, "epoch": delta.epoch,
                            "rows": rendered, "count": len(rendered),
                            "latency_ms": round(latency_ms, 3)}
            if delta.trace is not None:
                batch["trace"] = delta.trace
            self._next_seq += 1
            if len(self._queue) >= self.max_queue:
                dropped = self._queue.pop(0)
                self.dropped_batches += 1
                self.dropped_rows += dropped["count"]
                self.lag_events += 1
                if self._queue:
                    survivor = self._queue[0]
                else:
                    survivor = batch
                survivor["lagged"] = True
                survivor["dropped_batches"] = self.dropped_batches
                survivor["dropped_rows"] = self.dropped_rows
                lagged_event = {
                    "subscription": self.id,
                    "dropped_seq": dropped["seq"],
                    "seq_gap": survivor["seq"] - dropped["seq"],
                    "dropped_batches": self.dropped_batches,
                    "dropped_rows": self.dropped_rows,
                    "max_queue": self.max_queue,
                }
            self._queue.append(batch)
            self.batches_emitted += 1
            self.rows_emitted += len(rendered)
            self.last_latency_ms = batch["latency_ms"]
            self._cond.notify_all()
        if lagged_event is not None and self._event_log is not None:
            # Outside the condition lock: the event sink may do file IO.
            self._event_log.emit("subscription.lagged", **lagged_event)
        return batch

    def _matches(self, row: GroundTuple) -> bool:
        for name, wanted in self.filter.items():
            value = row[self.variables.index(name)]
            if str(value) != str(wanted):
                return False
        return True

    # -- consumed by clients --------------------------------------------------
    def poll(self, max_batches: Optional[int] = None,
             wait_s: Optional[float] = None) -> List[Batch]:
        """Drain queued batches, oldest first.

        Blocks up to ``wait_s`` seconds when the queue is empty (0 /
        ``None`` = return immediately).  Returns ``[]`` on timeout or
        when the subscription is closed.
        """
        deadline = (time.monotonic() + wait_s) if wait_s else None
        with self._cond:
            while not self._queue and not self.closed:
                if deadline is None:
                    return []
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return []
                self._cond.wait(remaining)
            if max_batches is None or max_batches >= len(self._queue):
                drained, self._queue = self._queue, []
            else:
                drained = self._queue[:max_batches]
                del self._queue[:max_batches]
            return drained

    def queue_depth(self) -> int:
        with self._cond:
            return len(self._queue)

    def close(self) -> None:
        with self._cond:
            self.closed = True
            self._queue.clear()
            self._cond.notify_all()
        self.view.unseal()

    def describe(self) -> Dict[str, Any]:
        """JSON-ready status row (the ``subscriptions`` op / top panel)."""
        return {
            "id": self.id,
            "query": self.text,
            "session": self.session_id,
            "detached": self.detached,
            "filter": dict(self.filter),
            "seq": self._next_seq - 1,
            "queue_depth": self.queue_depth(),
            "max_queue": self.max_queue,
            "batches": self.batches_emitted,
            "rows": self.rows_emitted,
            "dropped_batches": self.dropped_batches,
            "dropped_rows": self.dropped_rows,
            "lag_events": self.lag_events,
            "last_latency_ms": self.last_latency_ms,
            "rebuilds": self.view.rebuilds,
            "closed": self.closed,
            "maintenance": self.classification.get("maintenance"),
            "deletion_sensitive":
                self.classification.get("deletion_sensitive"),
            "unbounded_growth": self.classification.get("unbounded_growth"),
        }

    def __repr__(self) -> str:
        return (f"Subscription({self.id}, {self.text!r}, "
                f"seq={self._next_seq - 1}, depth={self.queue_depth()})")


class SubscriptionManager:
    """All standing queries of one service: admission, fan-out, lifecycle.

    The manager is one hub consumer; each committed delta is fed to
    every live subscription's view in registration order, on the
    mutating thread.  ``subscribe`` must run while writers are excluded
    (the service executor calls it under the read lock) so the view's
    build snapshot and the subscription's activation are atomic with
    respect to commits — no delta is missed or double-applied.
    """

    def __init__(self, hub: StreamHub, *,
                 max_subscriptions: int = 64,
                 default_max_queue: int = 256,
                 on_notify: Optional[Callable[[Subscription, Batch],
                                              None]] = None,
                 event_log: Optional[Any] = None):
        self.hub = hub
        self.max_subscriptions = max_subscriptions
        self.default_max_queue = default_max_queue
        #: Structured sink for ``subscription.lagged`` drop events.
        self.event_log = event_log
        self._lock = threading.RLock()
        self._subs: Dict[str, Subscription] = {}
        #: Optional callback fired per queued batch (metrics/event hook).
        self.on_notify = on_notify
        self.subscriptions_opened = 0
        self.subscriptions_closed = 0
        self.notifications_total = 0
        self.notified_rows_total = 0
        #: Lag/drop totals carried over from closed subscriptions, so
        #: the cumulative metrics survive unsubscribes.
        self._retired_lag_events = 0
        self._retired_dropped_batches = 0
        hub.add_consumer(self._on_delta)

    # -- lifecycle ------------------------------------------------------------
    def subscribe(self, query: Union[str, Query], engine: QueryEngine, *,
                  filter: Optional[Dict[str, Any]] = None,
                  max_queue: Optional[int] = None,
                  session_id: Optional[str] = None,
                  detached: bool = False) -> Subscription:
        with self._lock:
            if len(self._subs) >= self.max_subscriptions:
                raise ServiceOverloadedError(
                    f"{len(self._subs)} standing queries registered "
                    f"(limit {self.max_subscriptions}); unsubscribe one "
                    f"or raise --max-subscriptions")
            self.hub.check_epoch()
            sub = Subscription(
                query, engine, filter=filter,
                max_queue=max_queue or self.default_max_queue,
                session_id=session_id, detached=detached,
                event_log=self.event_log)
            self._subs[sub.id] = sub
            self.subscriptions_opened += 1
            return sub

    def unsubscribe(self, sub_id: str) -> bool:
        with self._lock:
            sub = self._subs.pop(sub_id, None)
        if sub is None:
            return False
        sub.close()
        self.subscriptions_closed += 1
        self._retired_lag_events += sub.lag_events
        self._retired_dropped_batches += sub.dropped_batches
        return True

    def get(self, sub_id: str) -> Subscription:
        with self._lock:
            sub = self._subs.get(sub_id)
        if sub is None:
            raise SessionError(f"no subscription {sub_id!r}")
        return sub

    def close_session(self, session_id: str) -> int:
        """Close the non-detached subscriptions a session owns."""
        with self._lock:
            doomed = [sid for sid, sub in self._subs.items()
                      if sub.session_id == session_id and not sub.detached]
        closed = 0
        for sid in doomed:
            if self.unsubscribe(sid):
                closed += 1
        return closed

    def rebind(self, engine: QueryEngine) -> None:
        """Rebuild every subscription's view against *engine*'s database
        (a replica resync swapped the object).  Already-notified rows
        are remembered, so clients only hear about genuinely new
        answers after the rebuild."""
        with self._lock:
            subs = list(self._subs.values())
        for sub in subs:
            sub.view.rebind(engine.db)

    def close(self) -> None:
        self.hub.remove_consumer(self._on_delta)
        with self._lock:
            doomed = list(self._subs)
        for sid in doomed:
            self.unsubscribe(sid)

    # -- fan-out --------------------------------------------------------------
    def _on_delta(self, delta: CommittedDelta) -> None:
        with self._lock:
            subs = list(self._subs.values())
        for sub in subs:
            batch = sub.feed(delta)
            if batch is not None:
                self.notifications_total += 1
                self.notified_rows_total += batch["count"]
                if self.on_notify is not None:
                    self.on_notify(sub, batch)

    # -- introspection --------------------------------------------------------
    def count(self) -> int:
        with self._lock:
            return len(self._subs)

    def total_queue_depth(self) -> int:
        with self._lock:
            return sum(sub.queue_depth() for sub in self._subs.values())

    def total_lag_events(self) -> int:
        with self._lock:
            return self._retired_lag_events + sum(
                sub.lag_events for sub in self._subs.values())

    def total_dropped_batches(self) -> int:
        with self._lock:
            return self._retired_dropped_batches + sum(
                sub.dropped_batches for sub in self._subs.values())

    def describe(self) -> List[Dict[str, Any]]:
        with self._lock:
            return [sub.describe()
                    for _, sub in sorted(self._subs.items())]

    def __repr__(self) -> str:
        return (f"SubscriptionManager({self.count()} subscriptions, "
                f"{self.notifications_total} notifications)")
