"""Observer-fed materialized views.

A :class:`ViewRegistry` closes ROADMAP item 2's remaining gap: instead
of callers pushing deltas into a :class:`MaterializedView` by hand, the
registry consumes :class:`~vidb.stream.hub.CommittedDelta` batches from
a :class:`~vidb.stream.hub.StreamHub` and feeds every registered view
automatically, at commit granularity:

* a **monotone** delta (pure inserts) is applied incrementally through
  the view's semi-naive insert API — the cheap path;
* a delta containing a deletion/replacement triggers a from-scratch
  :meth:`MaterializedView.refresh` — sound, not incremental;
* aborted transactions never reach the registry at all (the hub drops
  them), so a view never observes uncommitted state.

Registered views are **sealed**: direct ``insert_*`` calls raise
``VDB050`` (the registry is the only writer), and the registry verifies
the hub's epoch mirror against the live database at every flush so a
write the observer never saw raises ``VDB051`` instead of silently
diverging.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Set, Tuple

from vidb.query.ast import Program
from vidb.query.fixpoint import GroundTuple
from vidb.query.incremental import MaterializedView
from vidb.stream.hub import CommittedDelta, StreamHub

#: Derived facts per predicate produced by applying one committed delta.
DerivedDelta = Dict[str, Set[GroundTuple]]


def apply_delta(view: MaterializedView, delta: CommittedDelta,
                ) -> Optional[DerivedDelta]:
    """Feed one committed delta into *view*.

    Returns the union of derived facts (per predicate) the delta
    produced in the view, or ``None`` when the delta was non-monotone
    and the view was rebuilt instead (the caller cannot attribute
    derived facts to this delta in that case).
    """
    if not delta.monotone:
        with view.feeding():
            view.refresh()
        view.source_epoch = delta.epoch
        return None
    derived: DerivedDelta = {}
    with view.feeding():
        for event in delta.events:
            kind = event[0]
            if kind == "add":
                view.insert_object(event[1])
            elif kind == "relate":
                fact = event[1]
                view.insert_fact(fact.name, *fact.args)
            else:  # declare_relation: no facts, nothing to propagate
                continue
            for name, rows in view.last_delta.items():
                derived.setdefault(name, set()).update(rows)
    view.source_epoch = delta.epoch
    return derived


class ViewRegistry:
    """Keeps registered materialized views live from the mutation stream.

    Thread-safety: deltas arrive serialized on the mutating thread (the
    hub contract); ``register`` / ``unregister`` / reads may come from
    any thread and are guarded by the registry lock.  Because the flush
    runs while the mutator still holds the write lock, a reader that
    acquires the service read lock afterwards always sees views at the
    database's current epoch.
    """

    def __init__(self, hub: StreamHub):
        self.hub = hub
        self._lock = threading.RLock()
        self._views: Dict[str, MaterializedView] = {}
        self.deltas_applied = 0
        self.rebuilds = 0
        hub.add_consumer(self._on_delta)

    # -- registration -------------------------------------------------------
    def register(self, name: str, program: Program, *,
                 computed=None, max_objects: int = 50_000,
                 kernel=None) -> MaterializedView:
        """Build a view over *program* and keep it fed from commits.

        The build snapshots the database; the registry verifies the hub
        observed every prior mutation first, so the view starts exactly
        at the hub's epoch and stays in lockstep from then on.
        """
        with self._lock:
            if name in self._views:
                raise ValueError(f"view {name!r} already registered")
            self.hub.check_epoch()
            view = MaterializedView(self.hub.db, program,
                                    computed=computed,
                                    max_objects=max_objects, kernel=kernel)
            view.seal(f"ViewRegistry[{name}]")
            self._views[name] = view
            return view

    def adopt(self, name: str, view: MaterializedView) -> MaterializedView:
        """Seal and register an existing view (it must be freshly built
        against the hub's database, at the current epoch)."""
        with self._lock:
            if name in self._views:
                raise ValueError(f"view {name!r} already registered")
            self.hub.check_epoch()
            view.seal(f"ViewRegistry[{name}]")
            self._views[name] = view
            return view

    def unregister(self, name: str) -> Optional[MaterializedView]:
        with self._lock:
            view = self._views.pop(name, None)
            if view is not None:
                view.unseal()
            return view

    def get(self, name: str) -> Optional[MaterializedView]:
        with self._lock:
            return self._views.get(name)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._views)

    def __len__(self) -> int:
        with self._lock:
            return len(self._views)

    # -- the feed ------------------------------------------------------------
    def _on_delta(self, delta: CommittedDelta) -> None:
        with self._lock:
            if not self._views:
                return
            # The out-of-band checksum (satellite guard): if mutations
            # bypassed the observer, feeding this delta would diverge
            # every view — fail loudly instead.
            self.hub.check_epoch()
            self.deltas_applied += 1
            for view in self._views.values():
                if apply_delta(view, delta) is None:
                    self.rebuilds += 1

    def refresh_all(self) -> None:
        """Rebuild every view from scratch against the hub's current
        database (recovery after VDB051, or after a replica resync
        swapped the database object)."""
        with self._lock:
            for view in self._views.values():
                view.rebind(self.hub.db)
                view.source_epoch = self.hub.db.epoch
            self.hub.mirror_epoch = self.hub.db.epoch

    def status(self) -> List[Tuple[str, int, int]]:
        """``(name, source_epoch, rebuilds)`` per registered view."""
        with self._lock:
            return [(name, view.source_epoch, view.rebuilds)
                    for name, view in sorted(self._views.items())]

    def __repr__(self) -> str:
        return (f"ViewRegistry({len(self)} views, "
                f"{self.deltas_applied} deltas, {self.rebuilds} rebuilds)")
