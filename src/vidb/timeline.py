"""ASCII timeline rendering — the archive browser's Gantt view.

The paper's introduction asks for facilities "to view video material in a
non-sequential manner, to navigate through sequences"; a timeline chart
is the navigation aid every annotation tool draws.  This renders one from
the symbolic model alone::

    gi_reporter   |████████░░░░░░████░░░░░░░░░░░░████████░░|  53.0s
    gi_minister   |░░░░████████████████░░░░░░░░████████░░░░|  70.0s

Full blocks mark described time, light shade the gaps; fragment
boundaries are exact to the column resolution.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from vidb.intervals.generalized import GeneralizedInterval
from vidb.intervals.interval import Interval
from vidb.storage.database import VideoDatabase

FULL = "█"
EMPTY = "░"


def footprint_bar(footprint: GeneralizedInterval, lo: float, hi: float,
                  width: int = 40) -> str:
    """One bar: which of the *width* columns of [lo, hi] are covered."""
    if width < 1 or hi <= lo:
        return ""
    cells = []
    span = hi - lo
    for column in range(width):
        cell_lo = lo + span * column / width
        cell_hi = lo + span * (column + 1) / width
        probe = GeneralizedInterval(
            [Interval(cell_lo, cell_hi, closed_hi=(column == width - 1))])
        covered = footprint.intersection(probe).measure > 0
        cells.append(FULL if covered else EMPTY)
    return "".join(cells)


def timeline_chart(db: VideoDatabase, width: int = 40,
                   window: Optional[Tuple[float, float]] = None,
                   label_attribute: Optional[str] = None) -> str:
    """A Gantt chart of every interval object with a duration.

    Rows are sorted by footprint start.  *window* fixes the rendered time
    range (defaults to the hull of all footprints); *label_attribute*
    picks a row label attribute (falling back to the oid).
    """
    rows: List[Tuple[str, GeneralizedInterval]] = []
    for interval in db.intervals():
        if not interval.has_duration:
            continue
        label = None
        if label_attribute:
            value = interval.get(label_attribute)
            if isinstance(value, str):
                label = value
        rows.append((label or str(interval.oid), interval.footprint()))
    rows = [(label, fp) for label, fp in rows if not fp.is_empty()]
    if not rows:
        return "(no described intervals)"
    rows.sort(key=lambda pair: (float(pair[1].start), pair[0]))

    if window is None:
        lo = min(float(fp.start) for __, fp in rows)
        hi = max(float(fp.end) for __, fp in rows)
    else:
        lo, hi = float(window[0]), float(window[1])
    if hi <= lo:
        hi = lo + 1.0

    label_width = max(len(label) for label, __ in rows)
    lines = []
    for label, footprint in rows:
        bar = footprint_bar(footprint, lo, hi, width=width)
        seconds = float(footprint.clip(lo, hi).measure)
        lines.append(f"{label.ljust(label_width)}  |{bar}|  {seconds:g}s")
    axis = f"{' ' * label_width}  {lo:g}".ljust(label_width + width - 2) \
        + f"{hi:g}"
    lines.append(axis)
    return "\n".join(lines)
