"""Simulated video substrate: synthetic frames, features, shot detection,
annotation pipelines (the paper's two information sources, Section 5.1)."""

from vidb.video.annotator import GroundTruthAnnotator, NoisyAnnotator, annotate
from vidb.video.features import (
    difference_series,
    histogram_chi2,
    histogram_l1,
    smooth,
)
from vidb.video.keyframes import (
    Keyframe,
    extract_keyframes,
    find_matching_shot,
    shot_signatures,
    similar_shots,
)
from vidb.video.shot_detection import (
    DetectionReport,
    detect_cuts,
    evaluate_detector,
    match_boundaries,
)
from vidb.video.synthetic import (
    HISTOGRAM_BINS,
    Frame,
    ObjectTrack,
    SyntheticVideo,
    generate_video,
)

__all__ = [
    "DetectionReport",
    "Frame",
    "GroundTruthAnnotator",
    "HISTOGRAM_BINS",
    "Keyframe",
    "NoisyAnnotator",
    "ObjectTrack",
    "SyntheticVideo",
    "annotate",
    "detect_cuts",
    "difference_series",
    "evaluate_detector",
    "extract_keyframes",
    "find_matching_shot",
    "generate_video",
    "histogram_chi2",
    "histogram_l1",
    "match_boundaries",
    "shot_signatures",
    "similar_shots",
    "smooth",
]
