"""Annotation pipelines: synthetic video -> symbolic description.

Two annotators bridge the raw substrate and the data model:

* :class:`GroundTruthAnnotator` reads the planted presence schedules and
  emits exact symbolic facts — the idealised human indexer.
* :class:`NoisyAnnotator` perturbs fragment boundaries and occasionally
  drops short fragments — a model of real annotation error, used by the
  robustness tests.

Both can target an :class:`~vidb.indexing.AnnotationStore` (for the
E1-E3 scheme comparison) or build a full
:class:`~vidb.storage.VideoDatabase` (one entity + one generalized
interval object per tracked object, plus ``appears_with`` co-occurrence
facts) ready for the query language.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from vidb.indexing.base import AnnotationStore
from vidb.indexing.generalized import GeneralizedIntervalIndex
from vidb.intervals.generalized import GeneralizedInterval
from vidb.storage.database import VideoDatabase
from vidb.video.synthetic import SyntheticVideo


class GroundTruthAnnotator:
    """Emits the exact planted schedule."""

    def schedule(self, video: SyntheticVideo) -> Dict[str, GeneralizedInterval]:
        return video.schedule()

    def fill_store(self, video: SyntheticVideo, store: AnnotationStore
                   ) -> AnnotationStore:
        for label, footprint in self.schedule(video).items():
            for fragment in footprint:
                store.annotate(label, fragment.lo, fragment.hi)
        return store

    def build_database(self, video: SyntheticVideo,
                       name: str = "video") -> VideoDatabase:
        """Entity + interval object per track, plus co-occurrence facts."""
        schedule = self.schedule(video)
        db = VideoDatabase(name)
        entities = {}
        for label in sorted(schedule):
            entities[label] = db.new_entity(f"o_{label}", label=label)
        for label in sorted(schedule):
            db.new_interval(
                f"gi_{label}",
                entities=[entities[label].oid],
                duration=schedule[label],
                label=label,
            )
        labels = sorted(schedule)
        for i, first in enumerate(labels):
            for second in labels[i + 1:]:
                if schedule[first].overlaps(schedule[second]):
                    db.relate("appears_with",
                              entities[first].oid, entities[second].oid)
        return db


class NoisyAnnotator(GroundTruthAnnotator):
    """Ground truth with boundary jitter and fragment drop-out.

    ``jitter`` is the standard deviation (seconds) of Gaussian noise
    added to each fragment endpoint; fragments shorter than ``min_length``
    after perturbation, or hit by the ``drop_probability`` coin, are
    dropped entirely.
    """

    def __init__(self, seed: int = 0, jitter: float = 0.5,
                 drop_probability: float = 0.1, min_length: float = 0.2):
        self.seed = seed
        self.jitter = jitter
        self.drop_probability = drop_probability
        self.min_length = min_length

    def schedule(self, video: SyntheticVideo) -> Dict[str, GeneralizedInterval]:
        rng = random.Random(self.seed)
        noisy: Dict[str, GeneralizedInterval] = {}
        for label, footprint in sorted(video.schedule().items()):
            pairs: List[Tuple[float, float]] = []
            for fragment in footprint:
                if rng.random() < self.drop_probability:
                    continue
                lo = fragment.lo + rng.gauss(0.0, self.jitter)
                hi = fragment.hi + rng.gauss(0.0, self.jitter)
                lo = max(0.0, min(lo, video.duration))
                hi = max(0.0, min(hi, video.duration))
                if hi - lo >= self.min_length:
                    pairs.append((round(lo, 3), round(hi, 3)))
            noisy[label] = GeneralizedInterval.from_pairs(pairs)
        return noisy


def annotate(video: SyntheticVideo,
             annotator: Optional[GroundTruthAnnotator] = None
             ) -> GeneralizedIntervalIndex:
    """Convenience: run an annotator into a generalized-interval store."""
    annotator = annotator or GroundTruthAnnotator()
    store = GeneralizedIntervalIndex()
    annotator.fill_store(video, store)
    return store
