"""Frame-level feature extraction: histogram distances.

Section 5.1's first information source is "machine derived indices: such
as shot-change detection or color histograms, basically raw features".
This module supplies the distance metrics shot-change detection consumes.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from vidb.errors import VidbError
from vidb.video.synthetic import Frame


def histogram_l1(a: np.ndarray, b: np.ndarray) -> float:
    """Sum of absolute bin differences (in [0, 2] for unit histograms)."""
    if a.shape != b.shape:
        raise VidbError(f"histogram shapes differ: {a.shape} vs {b.shape}")
    return float(np.abs(a - b).sum())


def histogram_chi2(a: np.ndarray, b: np.ndarray) -> float:
    """Chi-squared distance, robust to small-bin noise."""
    if a.shape != b.shape:
        raise VidbError(f"histogram shapes differ: {a.shape} vs {b.shape}")
    denominator = a + b
    mask = denominator > 0
    diff = (a - b) ** 2
    return float((diff[mask] / denominator[mask]).sum())


def difference_series(frames: Sequence[Frame],
                      metric: str = "l1") -> np.ndarray:
    """Distances between consecutive frames' histograms.

    Entry ``i`` is the distance between frame ``i`` and frame ``i+1`` —
    shot cuts appear as sharp spikes.
    """
    fn = {"l1": histogram_l1, "chi2": histogram_chi2}.get(metric)
    if fn is None:
        raise VidbError(f"unknown metric {metric!r} (use 'l1' or 'chi2')")
    if len(frames) < 2:
        return np.zeros(0)
    return np.array([
        fn(frames[i].histogram, frames[i + 1].histogram)
        for i in range(len(frames) - 1)
    ])


def smooth(series: np.ndarray, window: int = 3) -> np.ndarray:
    """Simple moving-average smoothing (odd window)."""
    if window < 1 or window % 2 == 0:
        raise VidbError("window must be a positive odd integer")
    if window == 1 or series.size == 0:
        return series.copy()
    kernel = np.ones(window) / window
    return np.convolve(series, kernel, mode="same")
