"""Keyframe extraction and visual-similarity probes.

The related-work systems the paper positions against (QBIC, JACOB,
VIOLONE) retrieve footage by visual features; vidb's textual language is
the paper's focus, but the machine-derived-index layer rounds out with
the two standard feature-side utilities:

* :func:`extract_keyframes` — one representative frame per shot (the
  frame closest to the shot's mean histogram), the thumbnail every video
  browser needs;
* :func:`similar_shots` — query-by-example over shots: rank shots by
  histogram distance to a probe frame, the QBIC-style access path.

Both operate on the synthetic substrate's :class:`~vidb.video.synthetic.
Frame` stream and compose with the symbolic layer (a keyframe's time can
be looked up in the database's temporal index to ask *who* is on screen).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from vidb.errors import VidbError
from vidb.video.features import histogram_l1
from vidb.video.synthetic import Frame


@dataclass(frozen=True)
class Keyframe:
    """The representative frame of one shot."""

    shot: int
    frame_index: int
    time: float
    distance_to_mean: float


def extract_keyframes(frames: Sequence[Frame]) -> List[Keyframe]:
    """One keyframe per shot: the frame nearest the shot-mean histogram.

    Returns keyframes ordered by shot id.  Empty input yields an empty
    list.
    """
    by_shot: Dict[int, List[Frame]] = {}
    for frame in frames:
        by_shot.setdefault(frame.shot, []).append(frame)
    keyframes: List[Keyframe] = []
    for shot in sorted(by_shot):
        members = by_shot[shot]
        mean = np.mean([f.histogram for f in members], axis=0)
        best = min(members, key=lambda f: histogram_l1(f.histogram, mean))
        keyframes.append(Keyframe(
            shot=shot,
            frame_index=best.index,
            time=best.time,
            distance_to_mean=histogram_l1(best.histogram, mean),
        ))
    return keyframes


def shot_signatures(frames: Sequence[Frame]) -> Dict[int, np.ndarray]:
    """shot id -> mean histogram (the shot's visual signature)."""
    by_shot: Dict[int, List[np.ndarray]] = {}
    for frame in frames:
        by_shot.setdefault(frame.shot, []).append(frame.histogram)
    return {shot: np.mean(histograms, axis=0)
            for shot, histograms in by_shot.items()}


def similar_shots(frames: Sequence[Frame], probe: np.ndarray,
                  top: int = 5) -> List[Tuple[int, float]]:
    """Query-by-example: shots ranked by signature distance to *probe*.

    Returns up to *top* ``(shot, distance)`` pairs, nearest first.
    """
    if top < 1:
        raise VidbError("top must be at least 1")
    signatures = shot_signatures(frames)
    ranked = sorted(
        ((shot, histogram_l1(signature, probe))
         for shot, signature in signatures.items()),
        key=lambda pair: (pair[1], pair[0]),
    )
    return ranked[:top]


def find_matching_shot(frames: Sequence[Frame], probe_frame: Frame) -> int:
    """The shot whose signature best matches one probe frame."""
    ranked = similar_shots(frames, probe_frame.histogram, top=1)
    if not ranked:
        raise VidbError("no frames to match against")
    return ranked[0][0]
