"""Shot-change detection over the synthetic frame stream (E12).

A classical adaptive-threshold detector on the histogram-difference
series: a frame transition is declared a cut when its distance exceeds
``mean + k * std`` of the series (and is a local maximum within a small
guard window, avoiding double-triggers on noisy cuts).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple



from vidb.video.features import difference_series
from vidb.video.synthetic import Frame, SyntheticVideo


@dataclass(frozen=True)
class DetectionReport:
    """Detected cuts plus accuracy against planted boundaries."""

    detected: Tuple[float, ...]     # cut times (seconds)
    truth: Tuple[float, ...]
    precision: float
    recall: float

    @property
    def f1(self) -> float:
        if self.precision + self.recall == 0:
            return 0.0
        return 2 * self.precision * self.recall / (self.precision + self.recall)


def detect_cuts(frames: Sequence[Frame], fps: int,
                sensitivity: float = 4.0, guard: int = 2) -> List[float]:
    """Cut times detected from the frame stream.

    ``sensitivity`` is the k in ``mean + k*std``; ``guard`` suppresses
    detections within that many frames of a stronger one.
    """
    series = difference_series(frames)
    if series.size == 0:
        return []
    threshold = float(series.mean() + sensitivity * series.std())
    candidates = [
        i for i in range(series.size)
        if series[i] > threshold
        and series[i] == series[max(0, i - guard): i + guard + 1].max()
    ]
    # The cut lies between frame i and i+1.
    return [(i + 1) / fps for i in candidates]


def match_boundaries(detected: Sequence[float], truth: Sequence[float],
                     tolerance: float) -> Tuple[float, float]:
    """(precision, recall) with one-to-one greedy matching."""
    unmatched_truth = list(truth)
    hits = 0
    for cut in detected:
        best = None
        best_gap = tolerance
        for candidate in unmatched_truth:
            gap = abs(candidate - cut)
            if gap <= best_gap:
                best = candidate
                best_gap = gap
        if best is not None:
            unmatched_truth.remove(best)
            hits += 1
    precision = hits / len(detected) if detected else 1.0
    recall = hits / len(truth) if truth else 1.0
    return precision, recall


def evaluate_detector(video: SyntheticVideo, sensitivity: float = 4.0,
                      tolerance: float = 0.3) -> DetectionReport:
    """Run the detector on a synthetic video and score it."""
    frames = list(video.frames())
    detected = detect_cuts(frames, video.fps, sensitivity=sensitivity)
    precision, recall = match_boundaries(detected, video.shot_boundaries,
                                         tolerance)
    return DetectionReport(
        detected=tuple(detected),
        truth=tuple(video.shot_boundaries),
        precision=precision,
        recall=recall,
    )
