"""Synthetic video generation — the simulated substrate.

The paper's prototype indexes real broadcast footage (TV news, feature
films).  Offline, we substitute a synthetic generator that produces the
same two information sources Section 5.1 names:

* **machine-derivable raw features** — per-frame colour histograms with
  planted shot structure (each shot has a stable base histogram; frames
  add noise; boundaries jump), so shot-change detection has real work to
  do;
* **semantic ground truth** — per-object presence schedules (generalized
  intervals), the "application specific desired video indices".

Everything downstream (annotation stores, databases, queries) consumes
only the symbolic schedule, so the substitution preserves the code paths
the paper's system exercises; the feature pipeline additionally exercises
the machine-index path end to end (experiment E12).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Sequence, Tuple

import numpy as np

from vidb.errors import VidbError
from vidb.intervals.generalized import GeneralizedInterval

#: Number of colour-histogram bins per frame.
HISTOGRAM_BINS = 16


@dataclass(frozen=True)
class Frame:
    """One decoded frame: index, timestamp, planted shot id, colour
    histogram, and the ground-truth set of visible object labels."""

    index: int
    time: float
    shot: int
    histogram: np.ndarray
    visible: FrozenSet[str]


@dataclass(frozen=True)
class ObjectTrack:
    """Ground truth for one semantic object: label + presence footprint."""

    label: str
    footprint: GeneralizedInterval


@dataclass
class SyntheticVideo:
    """A generated video document."""

    duration: float                      # seconds
    fps: int
    shot_boundaries: List[float]         # cut times, seconds, strictly inside
    tracks: List[ObjectTrack]
    seed: int = 0

    @property
    def frame_count(self) -> int:
        return int(self.duration * self.fps)

    def schedule(self) -> Dict[str, GeneralizedInterval]:
        """descriptor -> footprint (the ground truth for E1-E3/E12)."""
        return {track.label: track.footprint for track in self.tracks}

    def shot_of(self, t: float) -> int:
        shot = 0
        for boundary in self.shot_boundaries:
            if t >= boundary:
                shot += 1
            else:
                break
        return shot

    def frames(self) -> Iterator[Frame]:
        """Decode the synthetic frame stream (deterministic in the seed)."""
        rng = np.random.default_rng(self.seed)
        shot_count = len(self.shot_boundaries) + 1
        # One stable base histogram per shot, well separated.
        bases = rng.dirichlet(np.ones(HISTOGRAM_BINS) * 0.5, size=shot_count)
        for index in range(self.frame_count):
            t = index / self.fps
            shot = self.shot_of(t)
            noise = rng.normal(0.0, 0.004, HISTOGRAM_BINS)
            histogram = np.clip(bases[shot] + noise, 0.0, None)
            total = histogram.sum()
            if total > 0:
                histogram = histogram / total
            visible = frozenset(
                track.label for track in self.tracks
                if track.footprint.contains_point(t)
            )
            yield Frame(index, t, shot, histogram, visible)


def _random_footprint(rng: random.Random, duration: float,
                      fragments: int, mean_fragment: float
                      ) -> GeneralizedInterval:
    """A random generalized interval with roughly *fragments* pieces."""
    pairs: List[Tuple[float, float]] = []
    for __ in range(fragments):
        length = max(0.5, rng.expovariate(1.0 / mean_fragment))
        start = rng.uniform(0.0, max(duration - length, 0.001))
        pairs.append((round(start, 3), round(min(start + length, duration), 3)))
    return GeneralizedInterval.from_pairs(pairs)


def generate_video(seed: int = 0,
                   duration: float = 120.0,
                   fps: int = 10,
                   shot_count: int = 12,
                   labels: Sequence[str] = ("reporter", "minister",
                                            "reporter2", "anchor"),
                   fragments_per_object: int = 3,
                   mean_fragment: float = 12.0) -> SyntheticVideo:
    """Generate a reproducible synthetic video document.

    The defaults mimic the paper's TV-news running example: a couple of
    minutes of footage, a dozen shots, a handful of objects of interest
    each appearing in a few separate stretches (Figure 3's picture).
    """
    if duration <= 0 or fps <= 0:
        raise VidbError("duration and fps must be positive")
    if shot_count < 1:
        raise VidbError("need at least one shot")
    rng = random.Random(seed)
    cuts = sorted(
        round(rng.uniform(duration * 0.02, duration * 0.98), 3)
        for __ in range(shot_count - 1)
    )
    # De-duplicate cuts that landed on the same spot.
    boundaries: List[float] = []
    for cut in cuts:
        if not boundaries or cut - boundaries[-1] > 1.0 / fps:
            boundaries.append(cut)
    tracks = [
        ObjectTrack(
            label,
            _random_footprint(rng, duration,
                              fragments=max(1, rng.randint(
                                  1, 2 * fragments_per_object - 1)),
                              mean_fragment=mean_fragment),
        )
        for label in labels
    ]
    return SyntheticVideo(duration=duration, fps=fps,
                          shot_boundaries=boundaries, tracks=tracks,
                          seed=seed)
