"""Workload builders: the paper's worked examples + random generators."""

from vidb.workloads.generator import (
    QUERY_TEMPLATES,
    WorkloadConfig,
    random_database,
    random_queries,
    scaling_series,
)
from vidb.workloads.paper import (
    ROPE_DURATION,
    ROPE_GI1_SPAN,
    ROPE_GI2_SPAN,
    broadcast_labels,
    news_schedule,
    paper_queries,
    rope_database,
    section62_rules,
)

__all__ = [
    "QUERY_TEMPLATES",
    "ROPE_DURATION",
    "ROPE_GI1_SPAN",
    "ROPE_GI2_SPAN",
    "WorkloadConfig",
    "broadcast_labels",
    "news_schedule",
    "paper_queries",
    "random_database",
    "random_queries",
    "rope_database",
    "scaling_series",
    "section62_rules",
]
