"""Parameterised random workloads for the benchmark suite.

:func:`random_database` grows video databases of any size with realistic
shape: entities with attribute vocabularies, generalized intervals with
multi-fragment durations and Zipf-skewed entity membership, and relation
facts scoped to intervals.  :func:`scaling_series` produces the size
ladders the complexity experiments (E8) sweep.

Determinism: everything is driven by a :class:`random.Random` seeded from
the config, so benchmark runs are reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from vidb.intervals.generalized import GeneralizedInterval
from vidb.storage.database import VideoDatabase

FIRST_NAMES = [
    "reporter", "minister", "anchor", "soldier", "pilot", "coach",
    "doctor", "artist", "senator", "witness", "referee", "captain",
]

ROLES = ["host", "guest", "witness", "speaker", "subject", "crowd"]

SUBJECTS = ["interview", "speech", "parade", "debate", "ceremony", "match"]


@dataclass(frozen=True)
class WorkloadConfig:
    """Knobs for :func:`random_database`."""

    entities: int = 50
    intervals: int = 100
    entities_per_interval: int = 5
    fragments_per_interval: int = 2
    facts: int = 100
    span: float = 10_000.0
    mean_fragment: float = 40.0
    zipf_skew: float = 1.1          # popularity skew of entity membership
    seed: int = 0


def _zipf_weights(n: int, skew: float) -> List[float]:
    return [1.0 / (rank ** skew) for rank in range(1, n + 1)]


def random_database(config: Optional[WorkloadConfig] = None) -> VideoDatabase:
    """Grow a database with the configured shape."""
    config = config or WorkloadConfig()
    rng = random.Random(config.seed)
    db = VideoDatabase(f"workload-{config.seed}")

    entity_oids = []
    for i in range(config.entities):
        name = f"{rng.choice(FIRST_NAMES)}_{i}"
        entity = db.new_entity(
            f"e{i}",
            name=name,
            role=rng.choice(ROLES),
            salience=rng.randint(1, 10),
        )
        entity_oids.append(entity.oid)

    weights = _zipf_weights(len(entity_oids), config.zipf_skew)

    interval_oids = []
    for i in range(config.intervals):
        member_count = max(1, min(len(entity_oids),
                                  int(rng.gauss(config.entities_per_interval,
                                                1.5))))
        members = set()
        while len(members) < member_count:
            members.add(rng.choices(entity_oids, weights=weights)[0])
        fragment_count = max(1, int(rng.expovariate(
            1.0 / config.fragments_per_interval)))
        pairs: List[Tuple[float, float]] = []
        for __ in range(fragment_count):
            length = max(1.0, rng.expovariate(1.0 / config.mean_fragment))
            start = rng.uniform(0.0, max(config.span - length, 1.0))
            pairs.append((round(start, 2), round(start + length, 2)))
        db.new_interval(
            f"g{i}",
            entities=members,
            duration=GeneralizedInterval.from_pairs(pairs),
            subject=rng.choice(SUBJECTS),
        )
        interval_oids.append(db.interval_oid(f"g{i}"))

    for __ in range(config.facts):
        interval = rng.choice(interval_oids)
        first, second = rng.sample(entity_oids, 2)
        db.relate("in", first, second, interval)
    return db


def scaling_series(sizes: Sequence[int], seed: int = 0,
                   **overrides) -> List[Tuple[int, VideoDatabase]]:
    """(size, database) pairs with entities/intervals/facts scaled
    together — the input ladder for the PTIME-data-complexity sweep."""
    out = []
    for size in sizes:
        config = WorkloadConfig(
            entities=max(4, size // 2),
            intervals=size,
            facts=size,
            seed=seed,
            **overrides,
        )
        out.append((size, random_database(config)))
    return out


#: Query templates over the random schema, keyed by a short name.  They
#: mirror the paper's Q1-Q6 shapes but range over the generated data.
QUERY_TEMPLATES: Dict[str, str] = {
    "membership": "?- interval(G), object(O), O in G.entities.",
    "attribute": '?- interval(G), object(O), O in G.entities, O.role = "host".',
    "temporal": ("?- interval(G), object(O), O in G.entities, "
                 "G.duration => (t > 0 and t < 5000)."),
    "join": ("?- interval(G), object(O1), object(O2), "
             "in(O1, O2, G), O1 in G.entities."),
    "pairwise": ("?- interval(G), object(O1), object(O2), "
                 "{O1, O2} subset G.entities, O1.role = O2.role, O1 != O2."),
}


def random_queries(count: int, seed: int = 0) -> List[str]:
    """A deterministic stream of template queries."""
    rng = random.Random(seed)
    names = sorted(QUERY_TEMPLATES)
    return [QUERY_TEMPLATES[rng.choice(names)] for __ in range(count)]
