"""The paper's own worked examples, as reusable builders.

* :func:`rope_database` — the Section 5.2 database indexing Hitchcock's
  "The Rope": nine entities, the two generalized intervals gi1 (the
  murder) and gi2 (the party), and the ``in(o1, o4, gi)`` facts relating
  David and the Chest.
* :func:`paper_queries` — the six example queries of Section 6.1, in the
  concrete syntax, keyed Q1..Q6.
* :func:`news_schedule` — the Figure 3 TV-news presence schedule
  (Reporter / Minister / 2nd Reporter) used by the indexing comparison.
* :func:`broadcast_labels` — the Figure 1/2 broadcast-news description
  labels, for building segmentation/stratification examples.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from vidb.intervals.generalized import GeneralizedInterval
from vidb.storage.database import VideoDatabase

#: The movie's 80-minute duration, in minutes on the timeline.
ROPE_DURATION = 80

#: gi1 = the crime, gi2 = the party: a1 < b1 < a2 < b2 per the paper.
ROPE_GI1_SPAN = (2, 10)      # (a1, b1)
ROPE_GI2_SPAN = (15, 78)     # (a2, b2)


def rope_database() -> VideoDatabase:
    """The Section 5.2 example database, encoded verbatim.

    Oid names follow the paper's object names (o1..o9, gi1, gi2) rather
    than its id1..id11 identifiers, so queries read like the text.
    Durations use the strict bounds the paper writes
    (``t > a1 and t < b1``).
    """
    db = VideoDatabase("the-rope")
    o1 = db.new_entity("o1", name="David", role="Victim")
    o2 = db.new_entity("o2", name="Philip", realname="Farley Granger",
                       role="Murderer")
    o3 = db.new_entity("o3", name="Brandon", realname="John Dall",
                       role="Murderer")
    o4 = db.new_entity("o4", identification="Chest")
    o5 = db.new_entity("o5", name="Janet", realname="Joan Chandler")
    o6 = db.new_entity("o6", name="Kenneth", realname="Douglas Dick")
    o7 = db.new_entity("o7", name="Mr.Kentley", realname="Cedric Hardwicke")
    o8 = db.new_entity("o8", name="Mrs.Atwater", realname="Constance Collier")
    o9 = db.new_entity("o9", name="Rupert Cadell", realname="James Stewart")

    a1, b1 = ROPE_GI1_SPAN
    a2, b2 = ROPE_GI2_SPAN
    gi1 = db.new_interval(
        "gi1",
        entities=[o1.oid, o2.oid, o3.oid, o4.oid],
        duration=GeneralizedInterval.from_constraint(
            _strict_span(a1, b1)),
        subject="murder",
        victim=o1.oid,
        murderer={o2.oid, o3.oid},
    )
    gi2 = db.new_interval(
        "gi2",
        entities=[o1.oid, o2.oid, o3.oid, o4.oid, o5.oid, o6.oid, o7.oid,
                  o8.oid, o9.oid],
        duration=GeneralizedInterval.from_constraint(
            _strict_span(a2, b2)),
        subject="Giving a party",
        host={o2.oid, o3.oid},
        guest={o5.oid, o6.oid, o7.oid, o8.oid, o9.oid},
    )
    db.relate("in", o1, o4, gi1)
    db.relate("in", o1, o4, gi2)
    return db


def _strict_span(a, b):
    """``t > a and t < b`` — the open interval the paper writes."""
    from vidb.constraints import Var

    t = Var("t")
    return (t > a) & (t < b)


def paper_queries() -> Dict[str, str]:
    """Section 6.1's example queries, in the concrete syntax.

    Q3's temporal frame [a, b] is instantiated to [0, 12] so that it
    covers gi1 but not gi2, matching the paper's intent of testing
    duration entailment.
    """
    return {
        # list the objects appearing in the domain of a given sequence g
        "Q1": "?- interval(gi1), object(O), O in gi1.entities.",
        # list all generalized intervals where the object o appears
        "Q2": "?- interval(G), object(o1), o1 in G.entities.",
        # does object o appear in the domain of a temporal frame [a, b]
        "Q3": ("?- interval(G), object(o1), o1 in G.entities, "
               "G.duration => (t > 0 and t < 12)."),
        # intervals where o1 and o2 appear together (membership form)
        "Q4a": ("?- interval(G), object(o1), object(o2), "
                "o1 in G.entities, o2 in G.entities."),
        # ... equivalent subset form
        "Q4b": ("?- interval(G), object(o1), object(o2), "
                "{o1, o2} subset G.entities."),
        # pairs of objects related by "in" within an interval
        "Q5": ("?- interval(G), object(O1), object(O2), O1 in G.entities, "
               "O2 in G.entities, in(O1, O2, G)."),
        # intervals containing an object whose attribute A is val
        "Q6": '?- interval(G), object(O), O in G.entities, O.name = "David".',
    }


def section62_rules() -> str:
    """The Section 6.2 rule set: contains, same_object_in, and the
    constructive concatenation rule (with o1/o2 = David/Philip)."""
    return """
    contains(G1, G2) :- interval(G1), interval(G2),
                        G2.duration => G1.duration.

    same_object_in(G1, G2, O) :- interval(G1), interval(G2), object(O),
                                 O in G1.entities, O in G2.entities.

    concatenate_gintervals(G1 ++ G2) :- interval(G1), interval(G2),
                                        object(o1), anyobject(o2),
                                        {o1, o2} subset G1.entities,
                                        {o1, o2} subset G2.entities.
    """


def news_schedule() -> Dict[str, GeneralizedInterval]:
    """The Figure 3 generalized-interval picture: three objects of
    interest in a TV-news broadcast, each with a multi-fragment
    footprint (times in seconds over a 180 s document)."""
    return {
        "reporter": GeneralizedInterval.from_pairs(
            [(0, 25), (60, 80), (130, 150)]),
        "minister": GeneralizedInterval.from_pairs(
            [(20, 70), (140, 170)]),
        "reporter2": GeneralizedInterval.from_pairs(
            [(75, 120)]),
    }


def broadcast_labels() -> List[Tuple[str, float, float]]:
    """Figure 1/2's broadcast-news description stream:
    (label, start, end) occurrences, including the overlapping strata
    of Figure 2 (times in seconds over a 180 s document)."""
    return [
        # Figure 1's contiguous segments
        ("minister and counsellor, walking", 0, 45),
        ("minister, public speak", 45, 110),
        ("army, exercise maneuvers", 110, 180),
        # Figure 2's overlapping strata
        ("broadcast news", 0, 180),
        ("public talk of the minister", 30, 110),
        ("politics", 0, 110),
        ("finances", 30, 60),
        ("taxes", 40, 60),
        ("education", 60, 100),
        ("army", 110, 180),
        ("army moves", 110, 150),
        ("tank", 112, 125),
        ("cannon", 125, 140),
        ("jeep", 140, 155),
        ("soldier talking", 155, 180),
    ]
