"""Integration tests for the multi-document archive (the paper's
television-channel / audio-visual-institute deployment scenario)."""

import pytest

from vidb.catalog import Archive
from vidb.errors import PersistenceError, VidbError
from vidb.video.annotator import GroundTruthAnnotator
from vidb.video.synthetic import generate_video
from vidb.workloads.paper import rope_database


def broadcast(seed, name, labels):
    video = generate_video(seed=seed, duration=100, fps=5, labels=labels)
    return GroundTruthAnnotator().build_database(video, name=name)


@pytest.fixture
def archive():
    arc = Archive("national-institute")
    arc.add(broadcast(1, "evening-news", ("minister", "reporter")))
    arc.add(broadcast(2, "morning-show", ("minister", "chef")))
    arc.add(rope_database())            # "the-rope"
    return arc


class TestRegistration:
    def test_documents_sorted(self, archive):
        assert archive.documents() == ("evening-news", "morning-show",
                                       "the-rope")
        assert len(archive) == 3
        assert "the-rope" in archive

    def test_duplicate_name_rejected(self, archive):
        with pytest.raises(VidbError):
            archive.add(rope_database())

    def test_remove(self, archive):
        archive.remove("the-rope")
        assert "the-rope" not in archive
        with pytest.raises(VidbError):
            archive.document("the-rope")


class TestCrossDocumentSearch:
    def test_appearances_across_documents(self, archive):
        hits = archive.appearances("label", "minister")
        documents = {doc for doc, __ in hits}
        assert documents == {"evening-news", "morning-show"}
        for __, interval in hits:
            assert interval.has_duration

    def test_find_attribute(self, archive):
        hits = archive.find_attribute("name", "David")
        assert hits == [("the-rope", "o1")]

    def test_query_all(self, archive):
        results = archive.query_all("?- interval(G), object(O), "
                                    "O in G.entities.")
        assert set(results) == set(archive.documents())
        assert len(results["the-rope"]) == 13  # 4 + 9 memberships

    def test_query_all_with_shared_rules(self, archive):
        results = archive.query_all(
            "?- contains(G1, G2), G1 != G2.",
            rules="contains(G1, G2) :- interval(G1), interval(G2), "
                  "G2.duration => G1.duration.")
        assert set(results) == set(archive.documents())

    def test_total_screen_time_sums_across_documents(self, archive):
        totals = archive.total_screen_time()
        per_doc_minister = []
        for doc in ("evening-news", "morning-show"):
            db = archive.document(doc)
            entity = db.find_by_attribute("label", "minister")[0]
            from vidb.analytics import presence

            per_doc_minister.append(float(presence(db, entity.oid).measure))
        assert totals["minister"] == pytest.approx(sum(per_doc_minister))


class TestPersistence:
    def test_directory_roundtrip(self, archive, tmp_path):
        archive.save(tmp_path / "holdings")
        restored = Archive.load(tmp_path / "holdings")
        assert restored.name == "national-institute"
        assert restored.documents() == archive.documents()
        # documents content-identical
        from vidb.storage.persistence import dumps

        for doc in archive.documents():
            assert dumps(restored.document(doc)) == \
                dumps(archive.document(doc))

    def test_queries_survive_roundtrip(self, archive, tmp_path):
        archive.save(tmp_path / "holdings")
        restored = Archive.load(tmp_path / "holdings")
        assert restored.appearances("label", "minister") and True
        hits = restored.find_attribute("name", "David")
        assert hits == [("the-rope", "o1")]

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(PersistenceError):
            Archive.load(tmp_path)

    def test_corrupt_manifest(self, tmp_path):
        (tmp_path / "archive.json").write_text("{broken", encoding="utf-8")
        with pytest.raises(PersistenceError):
            Archive.load(tmp_path)

    def test_slugged_filenames(self, tmp_path):
        arc = Archive("a")
        db = rope_database()
        arc.add(db, name="west/east news?")
        arc.save(tmp_path)
        restored = Archive.load(tmp_path)
        assert restored.documents() == ("west/east news?",)
