"""Cluster end-to-end: routing, session consistency, kill-the-primary.

The headline contract of ``vidb.cluster``:

* a client writing through the router and immediately reading with its
  session LSN token **never sees stale data**, no matter which replica
  serves the read;
* after SIGKILL of the primary, ``vidb promote`` elects the
  furthest-ahead replica, fences the old generation, repoints the
  router, and **no committed (acknowledged) write is lost**.

The primary runs as a real ``vidb serve --data-dir --fsync always``
subprocess so SIGKILL means SIGKILL; replicas and the router run
in-process for determinism and speed.
"""

import os
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

import pytest

from vidb.cli import main as vidb_main
from vidb.cluster import ClusterRouter, ReplicaServer
from vidb.durability import DurableDatabase
from vidb.errors import ClusterError, FencedError
from vidb.obs.trace import TraceContext, assemble_trace
from vidb.service.server import ServiceClient

SRC_DIR = str(Path(__file__).resolve().parents[2] / "src")


@pytest.fixture
def free_port():
    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


def start_primary(data_dir, port):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "vidb.cli", "serve",
         "--data-dir", str(data_dir), "--fsync", "always",
         "--port", str(port)],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    deadline = time.time() + 20
    while time.time() < deadline:
        if proc.poll() is not None:
            raise RuntimeError("primary exited before accepting")
        try:
            socket.create_connection(("127.0.0.1", port),
                                     timeout=0.5).close()
            return proc
        except OSError:
            time.sleep(0.1)
    proc.kill()
    raise RuntimeError("primary never came up")


class TestClusterEndToEnd:
    def test_failover_preserves_acknowledged_writes(self, tmp_path,
                                                    free_port):
        data_dir = tmp_path / "primary"
        proc = start_primary(data_dir, free_port)
        replicas, router = [], None
        try:
            replicas = [
                ReplicaServer.from_data_dir(
                    data_dir, poll_interval_s=0.05, lsn_wait_s=2.0,
                    promote_data_dir=tmp_path / f"promoted-{index}"
                ).start()
                for index in range(2)
            ]
            router = ClusterRouter(
                ("127.0.0.1", free_port),
                [r.address for r in replicas],
                probe_interval_s=0.1).start()
            host, port = router.address

            # -- session consistency under live replication ------------
            acknowledged = []
            with ServiceClient(host, port) as client:
                for index in range(8):
                    reply = client.insert_entity(f"o{index}", seq=index)
                    acknowledged.append(reply["head_lsn"])
                    assert client.session_lsn == reply["head_lsn"]
                    # Immediate read-your-writes: the LSN token makes a
                    # lagging replica wait or the router fall back —
                    # stale answers are a failure either way.
                    count = client.query("?- object(O).")["count"]
                    assert count == index + 1, (
                        f"stale read after write {index}")
                topology = client.request("cluster")
            assert len(topology["replicas"]) == 2

            # -- kill the primary --------------------------------------
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait(timeout=10)
            # Give the replicas a beat to notice the source died.
            time.sleep(0.3)

            with ServiceClient(host, port) as client:
                with pytest.raises(ClusterError):
                    client.insert_entity("while-down")

            # -- promote via the CLI, repointing the router ------------
            candidates = []
            for replica in replicas:
                rhost, rport = replica.address
                candidates += ["--replica", f"{rhost}:{rport}"]
            exit_code = vidb_main(
                ["promote", *candidates,
                 "--router", f"{host}:{port}"])
            assert exit_code == 0

            promoted = [r for r in replicas if r.promoted]
            assert len(promoted) == 1
            winner = promoted[0]

            # The old generation is fenced on disk.
            with pytest.raises(FencedError):
                DurableDatabase(data_dir)

            # -- writes resume through the router; nothing was lost ----
            with ServiceClient(host, port) as client:
                reply = client.insert_entity("resumed")
                assert reply["head_lsn"] > max(acknowledged)
                count = client.query("?- object(O).")["count"]
            assert count == 9  # 8 acknowledged + 1 resumed
            for index in range(8):
                assert winner.service.db.entity(f"o{index}")["seq"] == index
        finally:
            if router is not None:
                router.close()
            for replica in replicas:
                replica.close()
            if proc.poll() is None:
                os.kill(proc.pid, signal.SIGKILL)
                proc.wait(timeout=10)

    def test_traced_reads_survive_failover_with_new_generation(
            self, tmp_path, free_port):
        """Distributed traces stay whole across a failover: a traced
        session-consistent read after SIGKILL + promote assembles into
        one tree (no orphaned segments) whose serving node identity
        carries the *new* primary generation."""
        data_dir = tmp_path / "primary"
        proc = start_primary(data_dir, free_port)
        replicas, router = [], None
        try:
            replicas = [
                ReplicaServer.from_data_dir(
                    data_dir, poll_interval_s=0.05, lsn_wait_s=2.0,
                    promote_data_dir=tmp_path / f"promoted-{index}"
                ).start()
                for index in range(2)
            ]
            router = ClusterRouter(
                ("127.0.0.1", free_port),
                [r.address for r in replicas],
                probe_interval_s=0.1).start()
            host, port = router.address

            # -- a traced read pair before the failover ----------------
            before = TraceContext.new(sampled=True)
            with ServiceClient(host, port,
                               trace_context=before) as client:
                client.insert_entity("pre-failover")
                assert client.query("?- object(O).")["count"] == 1
                segments = client.trace(id=before.trace_id)["segments"]
            assert segments, "sampled request left no trace segments"
            old_generations = {
                s["node"].get("generation") for s in segments
                if s["node"].get("role") in ("primary", "replica")
            }

            # -- SIGKILL + promote -------------------------------------
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait(timeout=10)
            time.sleep(0.3)
            candidates = []
            for replica in replicas:
                rhost, rport = replica.address
                candidates += ["--replica", f"{rhost}:{rport}"]
            assert vidb_main(["promote", *candidates,
                              "--router", f"{host}:{port}"]) == 0
            winner = next(r for r in replicas if r.promoted)
            new_generation = winner.service.durability.generation
            assert new_generation not in old_generations

            # -- a traced read pair after the failover -----------------
            after = TraceContext.new(sampled=True)
            with ServiceClient(host, port, trace_context=after) as client:
                client.insert_entity("post-failover")
                assert client.query("?- object(O).")["count"] == 2
                segments = client.trace(id=after.trace_id)["segments"]

            # One tree, rooted at the client's span: nothing orphaned.
            roots = assemble_trace(segments)
            assert roots, "post-failover trace is empty"
            assert all(root["parent_span_id"] == after.span_id
                       for root in roots), (
                "a segment was orphaned from the client root")
            # The new generation is stamped on the serving node(s).
            served_by = {
                (s["node"].get("role"), s["node"].get("generation"))
                for s in segments if s["node"].get("role") != "router"
            }
            assert ("primary", new_generation) in served_by
        finally:
            if router is not None:
                router.close()
            for replica in replicas:
                replica.close()
            if proc.poll() is None:
                os.kill(proc.pid, signal.SIGKILL)
                proc.wait(timeout=10)

    def test_lsn_token_read_times_out_to_primary(self, tmp_path,
                                                 free_port):
        """A replica that stops replicating cannot serve token reads;
        the router must transparently re-serve them from the primary."""
        data_dir = tmp_path / "primary"
        proc = start_primary(data_dir, free_port)
        replica, router = None, None
        try:
            replica = ReplicaServer.from_data_dir(
                data_dir, lsn_wait_s=0.05,
                promote_data_dir=tmp_path / "promoted")
            replica.server.start_background()  # serving, never polling
            router = ClusterRouter(
                ("127.0.0.1", free_port), [replica.address],
                probe_interval_s=0.1).start()
            host, port = router.address
            with ServiceClient(host, port) as client:
                client.insert_entity("fresh")
                assert client.session_lsn > 0
                reply = client.query("?- object(O).")
                assert reply["count"] == 1
            snapshot = router.metrics.snapshot()
            assert snapshot["router.fallbacks"] >= 1
        finally:
            if router is not None:
                router.close()
            if replica is not None:
                replica.close()
            if proc.poll() is None:
                os.kill(proc.pid, signal.SIGKILL)
                proc.wait(timeout=10)

    def test_promotion_after_wal_gap_resyncs_first(self, tmp_path):
        """A replica that missed truncated WAL records (checkpoint gap)
        must resync from a snapshot before it can be promoted — and the
        promoted state must carry the full history."""
        data_dir = tmp_path / "primary"
        durable = DurableDatabase(data_dir, fsync="never",
                                  checkpoint_every=4)
        replica = None
        try:
            durable.db.new_entity("seed")
            replica = ReplicaServer.from_data_dir(
                data_dir, promote_data_dir=tmp_path / "promoted")
            replica.server.start_background()
            replica.poll_once()
            # Enough writes to checkpoint at least twice: the records
            # between the replica's position and the head are gone.
            for index in range(10):
                durable.db.new_entity(f"bulk{index}")
            durable.checkpoint()
            durable.close()
            result = replica.promote()
            assert result["promoted"] is True
            assert replica.replica.resyncs >= 1
            stats = replica.service.db.stats()
            assert stats["entities"] == 11  # seed + 10 bulk, none skipped
        finally:
            if replica is not None:
                replica.close()

    def test_stale_primary_rejoins_as_replica(self, tmp_path):
        """A fenced old primary cannot serve, but its machine rejoins
        the cluster as a follower of the new generation."""
        data_dir = tmp_path / "primary"
        durable = DurableDatabase(data_dir, fsync="never")
        durable.db.new_entity("a")
        replica = ReplicaServer.from_data_dir(
            data_dir, promote_data_dir=tmp_path / "promoted")
        replica.server.start_background()
        try:
            replica.poll_once()
            durable.close()
            replica.promote()
            # The old directory is fenced...
            with pytest.raises(FencedError):
                DurableDatabase(data_dir)
            # ...so the old host follows the new primary instead.
            rejoined = ReplicaServer.from_data_dir(
                replica.service.durability.data_dir)
            rejoined.server.start_background()
            try:
                rejoined.poll_once()
                host, port = replica.address
                with ServiceClient(host, port) as client:
                    client.insert_entity("post-failover")
                rejoined.poll_once()
                assert rejoined.replica.db.entity(
                    "post-failover") is not None
                assert rejoined.replica.lag() == 0
            finally:
                rejoined.close()
        finally:
            replica.close()
