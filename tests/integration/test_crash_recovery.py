"""Crash-recovery integration tests.

Two attack angles on the durability contract ("a SIGKILL at any moment
loses no committed transaction"):

* a real ``vidb serve --data-dir`` subprocess killed with SIGKILL while
  holding committed client writes, then recovered;
* a deterministic sweep truncating the WAL at every byte boundary —
  every prefix must recover to some committed prefix of the history,
  never to an error and never to a half-applied transaction.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

import pytest

from vidb.durability.durable import DurableDatabase
from vidb.durability.recovery import recover, replay_records
from vidb.durability.snapshot import list_snapshots, load_snapshot, wal_path
from vidb.durability.wal import read_wal
from vidb.storage.persistence import database_from_dict, database_to_dict

SRC_DIR = str(Path(__file__).resolve().parents[2] / "src")


def fingerprint(db):
    """State identity: objects, facts, AND epoch (the cache key)."""
    return (db.epoch, frozenset(db.entities()), frozenset(db.intervals()),
            db.facts())


class TestTruncationSweep:
    def build_history(self, data_dir):
        with DurableDatabase(data_dir, fsync="never", name="sweep") as d:
            d.db.new_entity("a", name="Ana")
            with d.db.transaction():
                d.db.new_entity("b", name="Ben")
                d.db.relate("likes", d.db.entity("a"), d.db.entity("b"))
            with pytest.raises(RuntimeError):
                with d.db.transaction():
                    d.db.new_entity("ghost")
                    raise RuntimeError("boom")
            d.db.set_attribute("a", "name", "Ana2")

    def committed_prefixes(self, data_dir):
        base_lsn, path = list_snapshots(data_dir)[0]
        records = read_wal(wal_path(data_dir)).records
        states = set()
        for k in range(len(records) + 1):
            db = database_from_dict(database_to_dict(
                load_snapshot(path)[0]))  # fresh copy per prefix
            replay_records(db, records[:k], after_lsn=base_lsn)
            states.add(fingerprint(db))
        return states

    def test_every_truncation_point_recovers_a_committed_prefix(
            self, tmp_path):
        self.build_history(tmp_path)
        valid = self.committed_prefixes(tmp_path)
        wal = wal_path(tmp_path)
        blob = wal.read_bytes()
        checked = 0
        for cut in range(len(blob) + 1):
            wal.write_bytes(blob[:cut])
            result = recover(tmp_path)
            assert fingerprint(result.db) in valid, (
                f"truncation at byte {cut} recovered an impossible state")
            checked += 1
        assert checked == len(blob) + 1


class TestSigkillServer:
    @pytest.fixture
    def free_port(self):
        with socket.socket() as s:
            s.bind(("127.0.0.1", 0))
            return s.getsockname()[1]

    def start_server(self, data_dir, port):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "vidb.cli", "serve",
             "--data-dir", str(data_dir), "--fsync", "always",
             "--port", str(port)],
            env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        deadline = time.time() + 20
        while time.time() < deadline:
            if proc.poll() is not None:
                raise RuntimeError("server exited before accepting")
            try:
                socket.create_connection(("127.0.0.1", port),
                                         timeout=0.5).close()
                return proc
            except OSError:
                time.sleep(0.1)
        proc.kill()
        raise RuntimeError("server never came up")

    def test_sigkill_loses_no_committed_write(self, tmp_path, free_port):
        from vidb.service.server import ServiceClient

        data_dir = tmp_path / "data"
        proc = self.start_server(data_dir, free_port)
        try:
            with ServiceClient("127.0.0.1", free_port) as client:
                for i in range(10):
                    client.insert_entity(f"o{i}", seq=i)
                client.insert_interval("g0", entities=["o0"],
                                       duration=[(0, 4)])
                served_epoch = client.info()["epoch"]
        finally:
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait(timeout=10)

        result = recover(data_dir)
        assert result.db.epoch == served_epoch
        assert result.db.stats()["entities"] == 10
        assert result.db.stats()["intervals"] == 1
        for i in range(10):
            assert result.db.entity(f"o{i}")["seq"] == i

    def test_restart_after_sigkill_continues_the_log(self, tmp_path,
                                                     free_port):
        from vidb.service.server import ServiceClient

        data_dir = tmp_path / "data"
        proc = self.start_server(data_dir, free_port)
        try:
            with ServiceClient("127.0.0.1", free_port) as client:
                client.insert_entity("before", phase=1)
        finally:
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait(timeout=10)
        lsn_after_crash = recover(data_dir).last_lsn

        proc = self.start_server(data_dir, free_port)
        try:
            with ServiceClient("127.0.0.1", free_port) as client:
                client.insert_entity("after", phase=2)
                metrics = client.metrics()
                assert metrics["wal.last_lsn"] > lsn_after_crash
                assert json.dumps(metrics)  # metrics stay JSON-clean
        finally:
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait(timeout=10)

        result = recover(data_dir)
        assert result.db.entity("before")["phase"] == 1
        assert result.db.entity("after")["phase"] == 2
