"""Integration: Section 6.2's derived & constructive relations (E6)."""

import pytest

from vidb.model.oid import Oid
from vidb.query.engine import QueryEngine
from vidb.storage.database import VideoDatabase


@pytest.fixture
def db():
    database = VideoDatabase("derived")
    database.new_entity("o1", name="shared")
    database.new_entity("o2", name="also-shared")
    database.new_entity("solo", name="solo")
    database.new_interval("a", entities=["o1", "o2"], duration=[(0, 10)])
    database.new_interval("b", entities=["o1", "o2"], duration=[(2, 6)])
    database.new_interval("c", entities=["o1", "solo"], duration=[(20, 30)])
    return database


class TestContains:
    def test_contains_matches_footprint_containment(self, db):
        engine = QueryEngine(db, use_stdlib_rules=True)
        pairs = {tuple(map(str, r)) for r in engine.facts("contains")}
        assert ("a", "b") in pairs           # [2,6] inside [0,10]
        assert ("b", "a") not in pairs
        assert ("a", "c") not in pairs

    def test_contains_agrees_with_gi_contains(self, db):
        engine = QueryEngine(db, use_stdlib_rules=True)
        rule_pairs = {tuple(map(str, r)) for r in engine.facts("contains")}
        computed = engine.query(
            "?- interval(G1), interval(G2), gi_contains(G1, G2).")
        computed_pairs = {tuple(map(str, r)) for r in computed.rows()}
        assert rule_pairs == computed_pairs


class TestSameObjectIn:
    def test_all_shared_objects_reported(self, db):
        engine = QueryEngine(db, use_stdlib_rules=True)
        triples = {tuple(map(str, r))
                   for r in engine.facts("same_object_in")}
        assert ("a", "b", "o1") in triples
        assert ("a", "b", "o2") in triples
        assert ("a", "c", "o1") in triples
        assert ("a", "c", "o2") not in triples
        assert ("a", "c", "solo") not in triples


class TestConstructiveRules:
    RULE = ("merged(G1 ++ G2) :- interval(G1), interval(G2), object(o1), "
            "anyobject(o2), {o1, o2} subset G1.entities, "
            "{o1, o2} subset G2.entities.")

    def test_paper_concatenation_rule(self, db):
        engine = QueryEngine(db).add_rules(self.RULE)
        result = engine.materialize()
        combined = Oid.concat(Oid.interval("a"), Oid.interval("b"))
        assert (combined,) in result.relation("merged")
        # c shares only o1 with a/b — no concatenation with c.
        not_combined = Oid.concat(Oid.interval("a"), Oid.interval("c"))
        assert (not_combined,) not in result.relation("merged")

    def test_constructed_object_structure(self, db):
        engine = QueryEngine(db).add_rules(self.RULE)
        result = engine.materialize()
        combined = result.context.objects[
            Oid.concat(Oid.interval("a"), Oid.interval("b"))]
        # duration union: [0,10] ∪ [2,6] = [0,10]
        assert combined.footprint().to_pairs() == [(0, 10)]
        assert combined.entities == frozenset(
            {Oid.entity("o1"), Oid.entity("o2")})

    def test_termination_via_absorption(self, db):
        """A recursive constructive rule terminates: the ⊕-closure of 3
        intervals is bounded by 2^3 - 1 objects."""
        engine = QueryEngine(db).add_rules("""
            grow(G) :- interval(G), object(o1), o1 in G.entities.
            grow(G1 ++ G2) :- grow(G1), grow(G2).
        """)
        result = engine.materialize()
        assert result.stats.created_objects <= 2 ** 3 - 1 - 3
        assert len(result.relation("grow")) <= 2 ** 3 - 1

    def test_created_objects_queryable_downstream(self, db):
        engine = QueryEngine(db).add_rules(self.RULE + """
            big(G) :- merged(G), G.duration => (t >= 0 and t <= 10).
        """)
        result = engine.materialize()
        combined = Oid.concat(Oid.interval("a"), Oid.interval("b"))
        assert (combined,) in result.relation("big")

    def test_eager_domain_includes_all_pairs(self, db):
        engine = QueryEngine(db, extended_domain="eager")
        answers = engine.query("?- interval(G).")
        # 3 base + 3 pairwise concatenations.
        assert len(answers) == 6

    def test_lazy_domain_only_constructed(self, db):
        engine = QueryEngine(db)
        assert len(engine.query("?- interval(G).")) == 3


class TestProvenanceAcrossDerivation:
    def test_explain_reaches_database_facts(self, db):
        engine = QueryEngine(db, use_stdlib_rules=True)
        derivations = engine.explain("?- contains(G1, G2), G1 != G2.")
        assert derivations
        rendered = derivations[0].render()
        assert "[database fact]" in rendered
        assert "contains" in rendered
