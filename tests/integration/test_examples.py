"""Every example script must run end to end (they are documentation)."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

EXAMPLES = sorted(p.stem for p in EXAMPLES_DIR.glob("*.py"))


def _load_module(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, capsys):
    module = _load_module(name)
    assert hasattr(module, "main"), f"{name}.py must define main()"
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"{name}.py produced no output"


def test_examples_present():
    # the five deliverable scenarios
    for required in ("quickstart", "news_archive", "virtual_editing",
                     "surveillance", "film_archive"):
        assert required in EXAMPLES
