"""Integration: the Figures 1-3 indexing experiments (E1-E3)."""

import pytest

from vidb.indexing import (
    GeneralizedIntervalIndex,
    SegmentationIndex,
    StratificationIndex,
    compare,
    to_database,
)
from vidb.query.engine import QueryEngine
from vidb.video.synthetic import generate_video
from vidb.workloads.paper import broadcast_labels, news_schedule


class TestFigure1:
    """Segmentation of the broadcast-news document."""

    @pytest.fixture
    def index(self):
        seg = SegmentationIndex(0, 180, [45, 110])
        for label, lo, hi in broadcast_labels()[:3]:
            seg.annotate(label, lo, hi)
        return seg

    def test_one_description_per_segment(self, index):
        assert index.descriptor_count() == 3

    def test_point_lookup_returns_segment_description(self, index):
        assert index.at(120) == frozenset({"army, exercise maneuvers"})


class TestFigure2:
    """Stratification allows overlapping levels of description."""

    @pytest.fixture
    def index(self):
        strat = StratificationIndex()
        for label, lo, hi in broadcast_labels()[3:]:
            strat.annotate(label, lo, hi)
        return strat

    def test_nested_levels_visible_simultaneously(self, index):
        at_50 = index.at(50)
        # broadcast news ⊃ politics ⊃ public talk ⊃ finances ⊃ taxes
        assert {"broadcast news", "politics",
                "public talk of the minister", "finances", "taxes"} <= at_50

    def test_deep_nesting_depth(self, index):
        assert index.levels_at(50) >= 5


class TestFigure3:
    """Generalized intervals: one identifier for all occurrences."""

    @pytest.fixture
    def index(self):
        gen = GeneralizedIntervalIndex()
        for label, footprint in news_schedule().items():
            for fragment in footprint:
                gen.annotate(label, fragment.lo, fragment.hi)
        return gen

    def test_single_identifier_per_object(self, index):
        assert index.descriptor_count() == 3

    def test_reporter_footprint_traces_all_occurrences(self, index):
        assert index.footprint("reporter") == news_schedule()["reporter"]

    def test_queryable_after_lift(self, index):
        engine = QueryEngine(to_database(index))
        answers = engine.query(
            "?- interval(G), object(o_reporter), o_reporter in G.entities, "
            "G.duration => (t >= 0 and t <= 180).")
        assert len(answers) == 1


class TestSchemeComparison:
    """The quantitative face of the paper's Section 3 argument."""

    def test_paper_schedule(self):
        rows = {r["scheme"]: r for r in compare(news_schedule(),
                                                segment_count=18)}
        # Storage: generalized needs the fewest records.
        assert (rows["generalized"]["records"]
                <= rows["stratification"]["records"]
                <= rows["segmentation"]["records"])
        # Accuracy: segmentation pays for its coarseness.
        assert rows["segmentation"]["precision"] < 1.0
        assert rows["generalized"]["f1"] == 1.0
        assert rows["stratification"]["f1"] == 1.0

    def test_random_schedules(self):
        for seed in (1, 2, 3):
            video = generate_video(seed=seed, duration=100, fps=5,
                                   labels=("a", "b", "c", "d"))
            rows = {r["scheme"]: r
                    for r in compare(video.schedule(), segment_count=25,
                                     sample_count=100)}
            assert rows["generalized"]["records"] == 4
            assert rows["generalized"]["f1"] == 1.0
            assert rows["segmentation"]["precision"] <= 1.0
            assert (rows["generalized"]["point_accuracy"]
                    >= rows["segmentation"]["point_accuracy"])

    def test_segmentation_converges_with_grid_resolution(self):
        schedule = news_schedule()
        precisions = []
        for segments in (5, 20, 80):
            row = compare(schedule, segment_count=segments)[0]
            precisions.append(row["precision"])
        assert precisions == sorted(precisions)
