"""Integration: the six Section 6.1 example queries (experiment E5).

Each query is run in the paper's concrete form over the Rope database and
checked against the answer the paper's prose implies.
"""

import pytest

from vidb.model.oid import Oid
from vidb.query.engine import QueryEngine
from vidb.workloads.paper import paper_queries, rope_database


@pytest.fixture(scope="module")
def engine():
    return QueryEngine(rope_database())


@pytest.fixture(scope="module")
def queries():
    return paper_queries()


def oids(answers, variable):
    return [str(v) for v in answers.column(variable)]


class TestQ1ObjectsInSequence:
    """'List the objects appearing in the domain of a given sequence g.'"""

    def test_gi1_members(self, engine, queries):
        answers = engine.query(queries["Q1"])
        assert oids(answers, "O") == ["o1", "o2", "o3", "o4"]


class TestQ2IntervalsOfObject:
    """'List all generalized intervals where the object o appears.'"""

    def test_david_appears_in_both(self, engine, queries):
        answers = engine.query(queries["Q2"])
        assert oids(answers, "G") == ["gi1", "gi2"]

    def test_janet_only_at_party(self, engine):
        answers = engine.query(
            "?- interval(G), object(o5), o5 in G.entities.")
        assert oids(answers, "G") == ["gi2"]


class TestQ3TemporalFrame:
    """'Does the object o appear in the domain of a temporal frame [a, b]?'"""

    def test_crime_window_only_matches_gi1(self, engine, queries):
        answers = engine.query(queries["Q3"])
        assert oids(answers, "G") == ["gi1"]

    def test_whole_movie_window_matches_both(self, engine):
        answers = engine.query(
            "?- interval(G), object(o1), o1 in G.entities, "
            "G.duration => (t > 0 and t < 80).")
        assert oids(answers, "G") == ["gi1", "gi2"]

    def test_narrow_window_matches_nothing(self, engine):
        answers = engine.query(
            "?- interval(G), object(o1), o1 in G.entities, "
            "G.duration => (t > 3 and t < 4).")
        assert len(answers) == 0


class TestQ4ObjectsTogether:
    """'List all generalized intervals where o1 and o2 appear together' —
    in both the two-membership form and the subset form; the paper says
    they are equivalent."""

    def test_membership_form(self, engine, queries):
        assert oids(engine.query(queries["Q4a"]), "G") == ["gi1", "gi2"]

    def test_subset_form(self, engine, queries):
        assert oids(engine.query(queries["Q4b"]), "G") == ["gi1", "gi2"]

    def test_forms_equivalent_on_all_pairs(self, engine):
        for first, second in (("o1", "o4"), ("o5", "o9"), ("o1", "o5")):
            membership = engine.query(
                f"?- interval(G), object({first}), object({second}), "
                f"{first} in G.entities, {second} in G.entities.")
            subset = engine.query(
                f"?- interval(G), object({first}), object({second}), "
                f"{{{first}, {second}}} subset G.entities.")
            assert membership.rows() == subset.rows()


class TestQ5RelationWithinInterval:
    """'Pairs of objects in the relation Rel within an interval.'"""

    def test_in_relation(self, engine, queries):
        answers = engine.query(queries["Q5"])
        rows = {tuple(map(str, row)) for row in answers.rows()}
        assert rows == {("gi1", "o1", "o4"), ("gi2", "o1", "o4")}


class TestQ6AttributeValue:
    """'Find the generalized intervals containing an object whose value
    for the attribute A is val.'"""

    def test_named_david(self, engine, queries):
        answers = engine.query(queries["Q6"])
        assert oids(answers, "G") == ["gi1", "gi2"]

    def test_named_janet(self, engine):
        answers = engine.query(
            '?- interval(G), object(O), O in G.entities, O.name = "Janet".')
        assert oids(answers, "G") == ["gi2"]

    def test_role_murderer(self, engine):
        answers = engine.query(
            '?- interval(G), object(O), O in G.entities, '
            'O.role = "Murderer".')
        assert {tuple(map(str, r)) for r in answers.rows()} == {
            ("gi1", "o2"), ("gi1", "o3"), ("gi2", "o2"), ("gi2", "o3")}


class TestEvaluationModesAgree:
    """Naive and semi-naive evaluation return identical answers on every
    paper query (Theorem 3's practical face)."""

    def test_modes_agree(self, queries):
        db = rope_database()
        naive = QueryEngine(db, mode="naive")
        seminaive = QueryEngine(db, mode="seminaive")
        for text in queries.values():
            assert naive.query(text).rows() == seminaive.query(text).rows()
