"""Integration: the full pipeline — synthetic video to queries to disk.

Generates footage, annotates it, builds the database, queries it with the
rule language, persists, reloads, and checks the answers survive.
"""

import pytest

from vidb.query.engine import QueryEngine
from vidb.storage.persistence import dumps, load, loads, save
from vidb.video.annotator import GroundTruthAnnotator
from vidb.video.shot_detection import evaluate_detector
from vidb.video.synthetic import generate_video


@pytest.fixture(scope="module")
def video():
    return generate_video(seed=99, duration=120, fps=5,
                          labels=("anchor", "guest", "crowd"),
                          shot_count=10)


@pytest.fixture(scope="module")
def db(video):
    return GroundTruthAnnotator().build_database(video, name="pipeline")


class TestEndToEnd:
    def test_machine_indices_work_on_same_footage(self, video):
        report = evaluate_detector(video)
        assert report.f1 > 0.7

    def test_schedule_reachable_through_queries(self, video, db):
        engine = QueryEngine(db)
        for label, footprint in video.schedule().items():
            answers = engine.query(
                f"?- interval(G), object(o_{label}), "
                f"o_{label} in G.entities.")
            assert len(answers) == 1
            interval = db.interval(answers.first()["G"])
            assert interval.footprint() == footprint

    def test_temporal_index_agrees_with_schedule(self, video, db):
        schedule = video.schedule()
        for probe in (10, 40, 77.5, 110):
            expected = {f"gi_{label}" for label, fp in schedule.items()
                        if fp.contains_point(probe)}
            actual = {str(i.oid) for i in db.intervals_at(probe)}
            assert actual == expected

    def test_rule_language_on_cooccurrence_facts(self, db):
        engine = QueryEngine(db)
        engine.add_rules("""
            social(X, Y) :- appears_with(X, Y).
            social(X, Y) :- appears_with(Y, X).
        """)
        result = engine.materialize()
        pairs = result.relation("social")
        # symmetric closure: every fact appears in both directions
        assert all((b, a) in pairs for a, b in pairs)

    def test_persist_reload_preserves_answers(self, db, tmp_path):
        query = ("?- interval(G), object(O), O in G.entities, "
                 "G.duration => (t >= 0 and t <= 120).")
        before = QueryEngine(db).query(query).rows()

        path = tmp_path / "pipeline.json"
        save(db, path)
        restored = load(path)
        after = QueryEngine(restored).query(query).rows()
        assert before == after

    def test_snapshot_stability(self, db):
        snapshot = dumps(db)
        assert dumps(loads(snapshot)) == snapshot
