"""Robustness and failure-injection tests.

A production library fails *well*: clean typed errors on corrupted
snapshots and adversarial programs, sensible behaviour on edge-shaped
inputs (empty databases, unicode everywhere, very wide rows), and
guard rails against runaway evaluation.
"""

import json

import pytest

from vidb.errors import (
    EvaluationError,
    ParseError,
    PersistenceError,
    SafetyError,
    VidbError,
)
from vidb.intervals.generalized import GeneralizedInterval
from vidb.model.oid import Oid
from vidb.query.engine import QueryEngine
from vidb.storage.database import VideoDatabase
from vidb.storage.persistence import database_to_dict, dumps, loads
from vidb.workloads.paper import rope_database


class TestCorruptedSnapshots:
    def test_truncated_json(self):
        good = dumps(rope_database())
        with pytest.raises(PersistenceError):
            loads(good[: len(good) // 2])

    def test_wrong_format_version(self):
        data = database_to_dict(rope_database())
        data["format"] = 0
        with pytest.raises(PersistenceError):
            loads(json.dumps(data))

    def test_mangled_value_tag(self):
        data = database_to_dict(rope_database())
        data["entities"][0]["attributes"]["name"] = {"$surprise": 1}
        with pytest.raises(PersistenceError):
            loads(json.dumps(data))

    def test_non_object_payload(self):
        with pytest.raises(PersistenceError):
            loads(json.dumps([1, 2, 3]))

    def test_dangling_reference_survives_load_but_fails_validation(self):
        # persistence is structural; referential integrity is a separate,
        # explicit check (the CLI's `info` runs it)
        data = database_to_dict(rope_database())
        data["facts"].append({
            "name": "in",
            "args": [{"$oid": {"kind": "entity", "parts": ["ghost"]}},
                     {"$oid": {"kind": "interval", "parts": ["gi1"]}}],
        })
        restored = loads(json.dumps(data))
        assert any("ghost" in p for p in restored.sequence.validate())


class TestAdversarialPrograms:
    def test_object_budget_stops_runaway_construction(self):
        db = VideoDatabase("runaway")
        db.new_entity("o")
        for i in range(10):
            db.new_interval(f"g{i}", entities=["o"],
                            duration=[(i * 10, i * 10 + 5)])
        engine = QueryEngine(db, max_objects=50)
        engine.add_rules("""
            m(G) :- interval(G).
            m(G1 ++ G2) :- m(G1), m(G2).
        """)
        with pytest.raises(EvaluationError):
            engine.materialize()

    def test_iteration_budget(self):
        from vidb.query.fixpoint import evaluate
        from vidb.query.parser import parse_program

        db = VideoDatabase("iter")
        db.new_interval("g0", duration=[(0, 1)])
        db.new_interval("g1", duration=[(2, 3)])
        db.relate("next", Oid.interval("g0"), Oid.interval("g1"))
        program = parse_program("""
            reach(X, Y) :- next(X, Y).
            reach(X, Z) :- reach(X, Y), next(Y, Z).
        """)
        with pytest.raises(EvaluationError):
            evaluate(db, program, max_iterations=1)

    def test_deeply_nested_constraint_expression_parses(self):
        depth = 60
        text = "(" * depth + "t > 0" + ")" * depth
        from vidb.query.parser import parse_constraint

        constraint = parse_constraint(f"({text})")
        assert constraint.variables()

    def test_wide_rule_body(self):
        body = ", ".join(f"p{i}(X)" for i in range(50))
        from vidb.query.parser import parse_rule

        rule = parse_rule(f"q(X) :- {body}.")
        assert len(rule.literals()) == 50

    def test_malformed_rule_gives_position(self):
        from vidb.query.parser import parse_rule

        with pytest.raises(ParseError) as excinfo:
            parse_rule("q(X) :- p(X), ,")
        assert excinfo.value.line == 1

    def test_shadowing_class_predicate_rejected_at_add_rules(self):
        engine = QueryEngine(rope_database())
        with pytest.raises(SafetyError):
            engine.add_rules("interval(X) :- object(X).")


class TestEdgeShapedData:
    def test_empty_database_answers_empty(self):
        engine = QueryEngine(VideoDatabase("empty"))
        assert len(engine.query("?- interval(G).")) == 0
        assert len(engine.query("?- object(O).")) == 0

    def test_unicode_attributes_roundtrip(self):
        db = VideoDatabase("unicode")
        db.new_entity("o1", name="Жанна d'Ärc 🎬", note="多言語")
        restored = loads(dumps(db))
        assert restored.entity("o1")["name"] == "Жанна d'Ärc 🎬"

    def test_unicode_queryable(self):
        db = VideoDatabase("unicode")
        db.new_entity("o1", name="Ärger")
        db.new_interval("g", entities=["o1"], duration=[(0, 1)])
        engine = QueryEngine(db)
        answers = engine.query('?- object(O), O.name = "Ärger".')
        assert len(answers) == 1

    def test_zero_length_interval_everywhere(self):
        db = VideoDatabase("points")
        db.new_entity("o")
        db.new_interval("g", entities=["o"],
                        duration=GeneralizedInterval.point(5))
        assert db.intervals_at(5)
        assert db.interval("g").footprint().measure == 0
        engine = QueryEngine(db)
        assert engine.ask("?- interval(g), time_in(5, g).")

    def test_many_fragments_normalise(self):
        pairs = [(i * 2, i * 2 + 1) for i in range(500)]
        footprint = GeneralizedInterval.from_pairs(pairs)
        assert len(footprint) == 500
        db = VideoDatabase("frags")
        db.new_interval("g", duration=footprint)
        assert db.interval("g").footprint() == footprint

    def test_very_long_chain_of_transactions(self):
        db = VideoDatabase("tx")
        for i in range(100):
            with db.transaction():
                db.new_entity(f"e{i}")
        assert db.stats()["entities"] == 100
        with pytest.raises(RuntimeError):
            with db.transaction():
                for i in range(100):
                    db.remove_object(Oid.entity(f"e{i}"))
                raise RuntimeError("undo all of it")
        assert db.stats()["entities"] == 100

    def test_rule_file_with_only_comments(self):
        from vidb.query.parser import parse_program

        program = parse_program("% nothing here\n# or here\n")
        assert len(program) == 0
