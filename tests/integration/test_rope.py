"""Integration: the Rope example database end to end (experiment E4).

Encodes the Section 5.2 narrative as executable checks: the murder
interval, the party interval, who plays what role, what the ``in`` facts
relate, and the temporal side conditions a1 < b1 < a2 < b2.
"""

import pytest

from vidb.model.oid import Oid
from vidb.query.engine import QueryEngine
from vidb.storage.persistence import dumps, loads
from vidb.workloads.paper import rope_database, section62_rules


@pytest.fixture(scope="module")
def db():
    return rope_database()


@pytest.fixture(scope="module")
def engine(db):
    eng = QueryEngine(db)
    eng.add_rules(section62_rules())
    return eng


class TestNarrative:
    def test_the_crime_scene(self, db):
        """gi1: David is murdered by Philip and Brandon, near the chest."""
        gi1 = db.interval("gi1")
        victim = db.sequence.object(gi1["victim"])
        assert victim["name"] == "David"
        murderer_names = {db.sequence.object(m)["name"]
                          for m in gi1["murderer"]}
        assert murderer_names == {"Philip", "Brandon"}
        assert Oid.entity("o4") in gi1.entities  # the chest is present

    def test_the_party(self, db):
        """gi2: the hosts are the murderers; the guests include Rupert."""
        gi2 = db.interval("gi2")
        assert gi2["host"] == db.interval("gi1")["murderer"]
        guest_names = {db.sequence.object(g).get("name")
                       for g in gi2["guest"]}
        assert "Rupert Cadell" in guest_names
        assert "Mr.Kentley" in guest_names

    def test_david_in_the_chest_throughout(self, db):
        """The in(o1, o4, gi) facts hold for both intervals — David's body
        is in the chest during the murder and during the party."""
        for gi_name in ("gi1", "gi2"):
            facts = db.facts_with_arg("in", 2, Oid.interval(gi_name))
            assert len(facts) == 1
            fact = next(iter(facts))
            assert fact.args[:2] == (Oid.entity("o1"), Oid.entity("o4"))

    def test_murder_before_party(self, db):
        """a1 < b1 < a2 < b2: the crime precedes the party."""
        assert db.interval("gi1").footprint().before(
            db.interval("gi2").footprint())

    def test_everyone_at_party_scene(self, db):
        """All nine objects of interest appear in gi2."""
        assert len(db.interval("gi2").entities) == 9


class TestQueriesOverRope:
    def test_who_is_on_screen_during_the_crime(self, engine):
        answers = engine.query(
            "?- interval(gi1), object(O), O in gi1.entities.")
        assert {str(a["O"]) for a in answers} == {"o1", "o2", "o3", "o4"}

    def test_find_the_victim_by_attribute(self, engine):
        answers = engine.query(
            '?- object(O), O.role = "Victim".')
        assert answers.column("O") == [Oid.entity("o1")]

    def test_murderers_via_set_valued_attribute(self, engine):
        answers = engine.query(
            "?- interval(gi1), object(O), O in gi1.murderer.")
        assert {str(a["O"]) for a in answers} == {"o2", "o3"}

    def test_party_interval_does_not_contain_crime(self, engine):
        assert not engine.ask("?- contains(gi2, G), G = gi1.")
        assert engine.ask("?- contains(gi1, gi1).")

    def test_david_and_chest_together_in_both_scenes(self, engine):
        # The module engine carries the Section 6.2 constructive rule, so
        # the query's minimal model also contains the ⊕-composite gi1++gi2
        # — which indeed features David and the Chest together.
        answers = engine.query(
            "?- interval(G), object(o1), object(o4), "
            "{o1, o4} subset G.entities.")
        assert {str(a["G"]) for a in answers} == {"gi1", "gi2", "gi1++gi2"}

    def test_concatenated_movie_summary(self, engine):
        """The constructive rule builds gi1 ⊕ gi2 — a 'summary sequence'
        containing every character and both footprints."""
        result = engine.materialize()
        combined_oid = Oid.concat(Oid.interval("gi1"), Oid.interval("gi2"))
        assert (combined_oid,) in result.relation("concatenate_gintervals")
        combined = result.context.objects[combined_oid]
        assert len(combined.entities) == 9
        assert combined["subject"] == frozenset({"murder", "Giving a party"})
        footprint = combined.footprint()
        assert len(footprint) == 2  # two disjoint scenes

    def test_same_object_in_links_the_scenes(self, engine):
        triples = engine.facts("same_object_in")
        shared = {str(o) for g1, g2, o in triples
                  if str(g1) == "gi1" and str(g2) == "gi2"}
        assert shared == {"o1", "o2", "o3", "o4"}


class TestPersistenceOfRope:
    def test_snapshot_roundtrip_preserves_queries(self, db):
        restored = loads(dumps(db))
        engine = QueryEngine(restored)
        answers = engine.query(
            "?- interval(G), object(o9), o9 in G.entities.")
        assert [str(a["G"]) for a in answers] == ["gi2"]
