"""Concurrency stress: N reader threads + 1 writer thread on one service.

The invariants under test:

* no reader ever sees an exception or a torn read while the writer
  mutates the database (the RW lock serializes them);
* answer counts for a grow-only workload are monotonically
  non-decreasing in real time (a reader can never observe the database
  going backwards);
* after quiescence, every cached answer equals a fresh, uncached
  :class:`QueryEngine` evaluation at the same epoch;
* sequentially, a cached answer re-read at an unchanged epoch is
  identical, and changes exactly when the epoch changes.
"""

import threading

import pytest

from vidb.query.engine import QueryEngine
from vidb.service.executor import ServiceExecutor
from vidb.workloads.paper import rope_database

QUERIES = [
    "?- object(O).",
    "?- interval(G).",
    "?- interval(G), object(O), O in G.entities.",
]

N_READERS = 4
WRITES = 30
READS_PER_READER = 60


@pytest.mark.slow
class TestReaderWriterStress:
    def test_stress(self):
        service = ServiceExecutor(rope_database(), max_workers=N_READERS + 1,
                                  max_in_flight=256, cache_capacity=64)
        errors = []
        low_water = {text: 0 for text in QUERIES}
        low_water_lock = threading.Lock()
        stop_writing = threading.Event()

        def reader(index):
            try:
                for i in range(READS_PER_READER):
                    text = QUERIES[(index + i) % len(QUERIES)]
                    count = len(service.execute(text))
                    with low_water_lock:
                        if count < low_water[text]:
                            errors.append(
                                f"{text!r} shrank: {count} < "
                                f"{low_water[text]}")
                        low_water[text] = max(low_water[text], count)
            except Exception as exc:  # noqa: BLE001 - collected for assert
                errors.append(f"reader {index}: {exc!r}")

        def writer():
            try:
                for i in range(WRITES):
                    service.new_entity(f"ox{i}", name=f"Extra{i}")
                    service.new_interval(f"gix{i}", entities=[f"ox{i}"],
                                         duration=[(500 + i, 501 + i)])
                    if i % 7 == 0:
                        # an aborted write: must be invisible to readers
                        def bad(db, i=i):
                            db.new_entity(f"ghost{i}")
                            raise RuntimeError("abort")
                        with pytest.raises(RuntimeError):
                            service.mutate(bad)
            except Exception as exc:  # noqa: BLE001
                errors.append(f"writer: {exc!r}")
            finally:
                stop_writing.set()

        threads = [threading.Thread(target=reader, args=(i,))
                   for i in range(N_READERS)]
        threads.append(threading.Thread(target=writer))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert errors == []

        # quiescent: every cached answer equals a fresh engine at this epoch
        db = service.db
        assert not any(t.is_alive() for t in threads)
        fresh = QueryEngine(db)
        for text in QUERIES:
            cached_rows = service.execute(text).rows()
            assert cached_rows == fresh.query(text).rows(), text
        assert db.get(db.entity_oid("ghost0")) is None
        snapshot = service.snapshot()
        assert snapshot["queries.served"] == (
            N_READERS * READS_PER_READER + len(QUERIES))
        assert snapshot["cache.hits"] > 0
        assert snapshot["writes.applied"] == WRITES * 2
        service.close()

    def test_sequential_epoch_consistency(self):
        """Cache hits repeat exact answers until the epoch moves."""
        service = ServiceExecutor(rope_database(), max_workers=2)
        text = "?- object(O)."
        for i in range(10):
            first = service.execute(text)
            epoch = service.db.epoch
            again = service.execute(text)
            assert service.db.epoch == epoch
            assert again.rows() == first.rows()
            fresh = QueryEngine(service.db).query(text)
            assert again.rows() == fresh.rows()
            service.new_entity(f"seq{i}")
            bumped = service.execute(text)
            assert len(bumped) == len(first) + 1
        service.close()
