"""Integration: bulk ingest through a live server while a standing
query is subscribed — the acceptance flow for the streaming layer.

A ~1k-record synthetic detector dump is replayed through ``batch``
transactions; a subscriber registered before the ingest must receive
exactly the incremental answer set — every ``appears`` fact, no
duplicates, no silent loss, batches in commit order.
"""

import threading

import pytest

from vidb.service.executor import ServiceExecutor
from vidb.service.server import ServiceClient, VideoServer
from vidb.storage.database import VideoDatabase
from vidb.stream.ingest import generate_dump, ingest_records

QUERY = "?- appears(O, G)."


@pytest.fixture
def server():
    db = VideoDatabase("ingest-itest")
    db.declare_relation("appears")
    service = ServiceExecutor(db, max_workers=2,
                              subscription_queue=10_000)
    with service, VideoServer(service, port=0) as srv:
        srv.start_background()
        yield srv


def expected_rows(records):
    return sorted([str(a) for a in record["args"]]
                  for record in records if record["kind"] == "fact")


class TestIngestWithSubscriber:
    def test_subscriber_hears_exactly_the_incremental_answers(self, server):
        records = generate_dump(entities=10, intervals=350, seed=11)
        assert len(records) >= 1000
        host, port = server.address
        with ServiceClient(host, port) as client:
            sub = client.subscribe(QUERY, detach=True)
            report = ingest_records(client, records, batch_size=100)
            assert report.records == len(records)
            assert report.batches == -(-len(records) // 100)

            heard = []
            seqs = []
            epochs = []
            while True:
                reply = client.poll(sub["id"])
                for batch in reply["batches"]:
                    assert "lagged" not in batch  # bounded queue never hit
                    seqs.append(batch["seq"])
                    epochs.append(batch["epoch"])
                    heard.extend(tuple(row) for row in batch["rows"])
                if not reply["batches"] and reply["pending"] == 0:
                    break

            # In commit order, gap-free (no silent loss)...
            assert seqs == list(range(1, len(seqs) + 1))
            assert epochs == sorted(epochs)
            # ...no duplicates...
            assert len(heard) == len(set(heard))
            # ...and exactly the answer set of the ingested facts.
            assert sorted(list(row) for row in heard) == \
                expected_rows(records)
            assert client.unsubscribe(sub["id"]) is True

    def test_concurrent_reader_sees_consistent_answers(self, server):
        """Queries racing the ingest always see a committed prefix."""
        records = generate_dump(entities=5, intervals=100, seed=23)
        host, port = server.address
        errors = []
        done = threading.Event()

        def reader():
            try:
                with ServiceClient(host, port) as viewer:
                    last = 0
                    while not done.is_set():
                        count = viewer.query(QUERY)["count"]
                        if count < last:  # answers never shrink mid-ingest
                            errors.append((last, count))
                        last = count
            except Exception as error:  # pragma: no cover
                errors.append(error)

        thread = threading.Thread(target=reader, daemon=True)
        thread.start()
        try:
            with ServiceClient(host, port) as client:
                report = ingest_records(client, records, batch_size=50)
        finally:
            done.set()
        thread.join(10.0)
        assert not errors
        assert report.records == len(records)
        with ServiceClient(host, port) as client:
            reply = client.query(QUERY)
            assert sorted(reply["rows"]) == expected_rows(records)
