"""Property-based tests: the derived Allen composition table is sound.

For random rational interval triples, the concretely observed relation
r(a, c) must be listed in compose(r(a,b), r(b,c)).
"""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from vidb.intervals import allen
from vidb.intervals.composition import compose, composition_table
from vidb.intervals.interval import Interval

coordinates = st.integers(min_value=0, max_value=20).map(
    lambda n: Fraction(n, 2))


@st.composite
def proper_intervals(draw):
    lo = draw(coordinates)
    width = draw(st.integers(min_value=1, max_value=10))
    return Interval(lo, lo + Fraction(width, 2))


class TestSoundness:
    @settings(max_examples=500, deadline=None)
    @given(proper_intervals(), proper_intervals(), proper_intervals())
    def test_observed_composition_is_listed(self, a, b, c):
        r_ab = allen.relation(a, b)
        r_bc = allen.relation(b, c)
        r_ac = allen.relation(a, c)
        assert r_ac in compose(r_ab, r_bc)

    @settings(max_examples=200, deadline=None)
    @given(proper_intervals(), proper_intervals())
    def test_relation_and_inverse_are_consistent(self, a, b):
        r = allen.relation(a, b)
        assert allen.relation(b, a) == allen.INVERSES[r]
        # composing with the inverse always allows equality
        assert "equals" in compose(r, allen.INVERSES[r])


class TestCompleteness:
    def test_every_table_entry_has_a_witness(self):
        """The table was derived from witnesses, so every listed relation
        is realisable; spot-check by re-deriving with a coarser grid and
        confirming containment (a coarser grid finds no extra entries)."""
        table = composition_table()
        for values in table.values():
            assert values <= frozenset(allen.INVERSES)
