"""Property-based tests: ⊕ is an idempotent commutative semigroup.

Section 6.1 gives the structure of ``e1 ⊕ e2`` and relies on the
absorption law ``I1 ⊕ I1 ≡ I1`` for termination; these laws are checked
over randomly generated interval objects, attributes included.
"""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from vidb.intervals.generalized import GeneralizedInterval
from vidb.model.concat import concat_closure, concatenate
from vidb.model.objects import GeneralizedIntervalObject
from vidb.model.oid import Oid

coordinates = st.integers(min_value=0, max_value=30).map(
    lambda n: Fraction(n, 2))

labels = st.sampled_from(["murder", "party", "chase", "talk"])
entity_names = st.sampled_from(["o1", "o2", "o3", "o4"])


@st.composite
def footprints(draw):
    pairs = draw(st.lists(st.tuples(coordinates, coordinates),
                          min_size=1, max_size=3))
    return GeneralizedInterval.from_pairs(
        [(lo, lo + width) for lo, width in pairs])


@st.composite
def interval_objects(draw, name=None):
    name = name or draw(st.sampled_from(["g1", "g2", "g3", "g4"]))
    attrs = {
        "duration": draw(footprints()),
        "entities": frozenset(Oid.entity(n)
                              for n in draw(st.frozensets(entity_names,
                                                          max_size=3))),
    }
    if draw(st.booleans()):
        attrs["subject"] = draw(labels)
    if draw(st.booleans()):
        attrs["rating"] = draw(st.integers(min_value=1, max_value=5))
    return GeneralizedIntervalObject(Oid.interval(name), attrs)


class TestSemigroupLaws:
    @given(interval_objects())
    def test_absorption(self, g):
        assert concatenate(g, g) == g

    @given(interval_objects(name="a"), interval_objects(name="b"))
    def test_commutativity(self, g1, g2):
        assert concatenate(g1, g2) == concatenate(g2, g1)

    @settings(max_examples=50)
    @given(interval_objects(name="a"), interval_objects(name="b"),
           interval_objects(name="c"))
    def test_associativity(self, g1, g2, g3):
        left = concatenate(concatenate(g1, g2), g3)
        right = concatenate(g1, concatenate(g2, g3))
        assert left == right

    @given(interval_objects(name="a"), interval_objects(name="b"))
    def test_absorption_after_composition(self, g1, g2):
        combined = concatenate(g1, g2)
        assert concatenate(combined, g1) == combined
        assert concatenate(combined, g2) == combined
        assert concatenate(combined, combined) == combined


class TestStructure:
    @given(interval_objects(name="a"), interval_objects(name="b"))
    def test_footprint_is_union(self, g1, g2):
        combined = concatenate(g1, g2)
        assert combined.footprint() == g1.footprint() | g2.footprint()

    @given(interval_objects(name="a"), interval_objects(name="b"))
    def test_entities_is_union(self, g1, g2):
        assert concatenate(g1, g2).entities == g1.entities | g2.entities

    @given(interval_objects(name="a"), interval_objects(name="b"))
    def test_attribute_names_union(self, g1, g2):
        combined = concatenate(g1, g2)
        assert combined.attribute_names() == (
            g1.attribute_names() | g2.attribute_names())

    @settings(max_examples=30)
    @given(st.lists(st.sampled_from(["g1", "g2", "g3"]),
                    min_size=1, max_size=3, unique=True), st.data())
    def test_closure_bounded_by_powerset(self, names, data):
        objects = [data.draw(interval_objects(name=n)) for n in names]
        closure = concat_closure(objects)
        assert len(closure) <= 2 ** len(objects) - 1
        oids = {obj.oid for obj in closure}
        # closed under ⊕
        for first in closure:
            for second in closure:
                assert concatenate(first, second).oid in oids
