"""Property-based tests: variable elimination is exact.

For every assignment of the remaining variables (over a witness-complete
candidate grid), ``eliminate_variable(c, x)`` must hold exactly when some
value of ``x`` makes ``c`` hold.
"""

from fractions import Fraction
from itertools import product

from hypothesis import given, settings
from hypothesis import strategies as st

from vidb.constraints.dense import Comparison, conjoin
from vidb.constraints.eliminate import eliminate_variable, project
from vidb.constraints.solver import satisfiable
from vidb.constraints.terms import Var

X, Y, Z = Var("x"), Var("y"), Var("z")
VARS = [X, Y, Z]
OPS = ["=", "!=", "<", "<=", ">", ">="]

constants = st.integers(min_value=0, max_value=4)


@st.composite
def atoms(draw):
    left = draw(st.sampled_from(VARS))
    op = draw(st.sampled_from(OPS))
    if draw(st.booleans()):
        right = draw(st.sampled_from(VARS))
    else:
        right = draw(constants)
    return Comparison(left, op, right)


clauses = st.lists(atoms(), min_size=1, max_size=5)


def grid(values, chain_length=4):
    """Witness-complete candidate values around a set of known numbers."""
    points = sorted({Fraction(v) for v in values} or {Fraction(0)})
    out = set(points)
    for i in range(1, chain_length + 1):
        out.add(points[0] - i)
        out.add(points[-1] + i)
    for a, b in zip(points, points[1:]):
        for i in range(1, chain_length + 1):
            out.add(a + (b - a) * Fraction(i, chain_length + 1))
    return sorted(out)


def _constants_of(clause):
    return [a.right for a in clause if not isinstance(a.right, Var)] + \
           [a.left for a in clause if not isinstance(a.left, Var)]


class TestEliminateVariable:
    @settings(max_examples=250, deadline=None)
    @given(clauses)
    def test_exactness_pointwise(self, clause):
        original = conjoin(*clause)
        eliminated = eliminate_variable(original, X)
        assert X not in eliminated.variables()

        outer_vars = sorted(original.variables() - {X},
                            key=lambda v: v.name)
        outer_grid = grid(_constants_of(clause))
        for outer_values in product(outer_grid, repeat=len(outer_vars)):
            assignment = dict(zip(outer_vars, outer_values))
            inner_grid = grid(list(_constants_of(clause))
                              + list(outer_values))
            truth = any(
                original.evaluate({**assignment, X: v}) for v in inner_grid
            )
            assert eliminated.evaluate(assignment) == truth

    @settings(max_examples=100, deadline=None)
    @given(clauses)
    def test_satisfiability_preserved(self, clause):
        original = conjoin(*clause)
        eliminated = eliminate_variable(original, X)
        assert satisfiable(eliminated) == satisfiable(original)

    @settings(max_examples=100, deadline=None)
    @given(clauses)
    def test_eliminating_absent_variable_is_identity_semantics(self, clause):
        original = conjoin(*clause)
        w = Var("w")
        assert eliminate_variable(original, w).dnf() == original.dnf()


class TestProject:
    @settings(max_examples=100, deadline=None)
    @given(clauses)
    def test_projection_keeps_only_requested(self, clause):
        original = conjoin(*clause)
        projected = project(original, [Y])
        assert projected.variables() <= {Y}

    @settings(max_examples=100, deadline=None)
    @given(clauses)
    def test_projection_to_nothing_is_truth_value(self, clause):
        original = conjoin(*clause)
        projected = project(original, [])
        assert projected.variables() == frozenset()
        # a closed formula is equivalent to its satisfiability
        assert satisfiable(projected) == satisfiable(original)
