"""The engine against an independent reference evaluator.

``reference_fixpoint`` below is a deliberately naive, index-free,
optimisation-free implementation of the immediate-consequence operator,
written directly from Definitions 21-22 and sharing **no code** with
`vidb.query.fixpoint` (plain dict/set joins).  For random positive
Datalog programs over random relations, the production engine must
compute exactly the same least fixpoint.
"""

from itertools import product
from typing import Dict, FrozenSet, List, Set, Tuple

from hypothesis import given, settings
from hypothesis import strategies as st

from vidb.model.oid import Oid
from vidb.query.fixpoint import evaluate
from vidb.query.parser import parse_program
from vidb.storage.database import VideoDatabase

# --- the reference implementation (no vidb.query.fixpoint imports) ---------


def reference_fixpoint(edb: Dict[str, Set[tuple]],
                       rules: List[Tuple[Tuple[str, tuple], List[Tuple[str, tuple]]]]
                       ) -> Dict[str, Set[tuple]]:
    """Naive T_P iteration.

    *rules* are ((head_pred, head_args), [(pred, args), ...]) with args
    tuples of variable names (strings starting uppercase) or constants.
    """
    relations: Dict[str, Set[tuple]] = {k: set(v) for k, v in edb.items()}

    def substitutions(body, binding, index=0):
        if index == len(body):
            yield dict(binding)
            return
        predicate, args = body[index]
        for row in relations.get(predicate, ()):
            if len(row) != len(args):
                continue
            local = dict(binding)
            ok = True
            for arg, value in zip(args, row):
                if isinstance(arg, str) and arg[:1].isupper():
                    if arg in local and local[arg] != value:
                        ok = False
                        break
                    local[arg] = value
                elif arg != value:
                    ok = False
                    break
            if ok:
                yield from substitutions(body, local, index + 1)

    changed = True
    while changed:
        changed = False
        for (head_pred, head_args), body in rules:
            new_rows = set()
            for binding in substitutions(body, {}):
                row = tuple(
                    binding[a] if isinstance(a, str) and a[:1].isupper()
                    else a
                    for a in head_args)
                new_rows.add(row)
            bucket = relations.setdefault(head_pred, set())
            before = len(bucket)
            bucket |= new_rows
            if len(bucket) != before:
                changed = True
    return relations


# --- random program generation ----------------------------------------------------

CONSTANTS = ["a", "b", "c"]
VARIABLES = ["X", "Y", "Z"]
EDB_PREDS = ["e1", "e2"]
IDB_PREDS = ["p", "q"]

terms = st.sampled_from(CONSTANTS + VARIABLES)
edb_rows = st.lists(
    st.tuples(st.sampled_from(CONSTANTS), st.sampled_from(CONSTANTS)),
    max_size=6, unique=True)


@st.composite
def programs(draw):
    """1-3 safe rules over binary predicates.

    Heads are drawn first so rule bodies only reference predicates that
    are actually defined (the engine treats an undefined body predicate
    as an error, by design — a typo guard the reference lacks).
    """
    rule_count = draw(st.integers(1, 3))
    heads = [draw(st.sampled_from(IDB_PREDS)) for __ in range(rule_count)]
    usable = EDB_PREDS + sorted(set(heads))
    rules = []
    for head_pred in heads:
        body_count = draw(st.integers(1, 2))
        body = []
        bound: Set[str] = set()
        for __ in range(body_count):
            predicate = draw(st.sampled_from(usable))
            args = (draw(terms), draw(terms))
            body.append((predicate, args))
            bound |= {a for a in args if a[:1].isupper()}
        candidates = sorted(bound) or CONSTANTS
        head_args = (draw(st.sampled_from(candidates)),
                     draw(st.sampled_from(candidates)))
        rules.append(((head_pred, head_args), body))
    return rules


def to_text(rules) -> str:
    lines = []
    for (head_pred, head_args), body in rules:
        head = f"{head_pred}({', '.join(head_args)})"
        body_text = ", ".join(
            f"{p}({', '.join(args)})" for p, args in body)
        lines.append(f"{head} :- {body_text}.")
    return "\n".join(lines)


class TestEngineAgainstReference:
    @settings(max_examples=120, deadline=None)
    @given(edb_rows, edb_rows, programs())
    def test_same_least_fixpoint(self, rows1, rows2, rules):
        edb = {"e1": set(rows1), "e2": set(rows2)}
        expected = reference_fixpoint(edb, rules)

        db = VideoDatabase("ref")
        for name in EDB_PREDS:
            db.declare_relation(name)
        for name, rows in edb.items():
            for row in rows:
                db.relate(name, *row)
        program = parse_program(to_text(rules))
        result = evaluate(db, program)

        for predicate in IDB_PREDS:
            engine_rows = result.relation(predicate)
            # the engine resolves bare symbols to strings here (no oids
            # named a/b/c exist), so rows compare directly
            assert engine_rows == frozenset(expected.get(predicate, set())), \
                f"{predicate}: {to_text(rules)}"

    @settings(max_examples=60, deadline=None)
    @given(edb_rows, edb_rows, programs())
    def test_naive_mode_matches_reference_too(self, rows1, rows2, rules):
        edb = {"e1": set(rows1), "e2": set(rows2)}
        expected = reference_fixpoint(edb, rules)
        db = VideoDatabase("ref")
        for name in EDB_PREDS:
            db.declare_relation(name)
        for name, rows in edb.items():
            for row in rows:
                db.relate(name, *row)
        result = evaluate(db, parse_program(to_text(rules)), mode="naive")
        for predicate in IDB_PREDS:
            assert result.relation(predicate) == \
                frozenset(expected.get(predicate, set()))
