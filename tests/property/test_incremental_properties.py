"""Property-based test: incremental maintenance ≡ from-scratch evaluation.

For random base graphs and random insertion streams, the materialised
view's relations after the stream equal a fresh least-fixpoint over the
final database — for plain recursion and for constructive programs.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from vidb.model.oid import Oid
from vidb.query.fixpoint import evaluate
from vidb.query.incremental import MaterializedView
from vidb.query.parser import parse_program
from vidb.storage.database import VideoDatabase

NODES = ["g0", "g1", "g2", "g3"]

edges = st.lists(
    st.tuples(st.sampled_from(NODES), st.sampled_from(NODES)),
    max_size=8, unique=True,
)

REACH = parse_program("""
    reach(X, Y) :- next(X, Y).
    reach(X, Z) :- reach(X, Y), next(Y, Z).
""")

CONSTRUCTIVE = parse_program("""
    linked(G1, G2) :- next(G1, G2).
    merged(G1 ++ G2) :- linked(G1, G2).
""")


def build_db(edge_list):
    db = VideoDatabase("inc")
    db.declare_relation("next")
    for i, node in enumerate(NODES):
        db.new_interval(node, duration=[(i * 10, i * 10 + 5)])
    for src, dst in edge_list:
        db.relate("next", Oid.interval(src), Oid.interval(dst))
    return db


class TestIncrementalEqualsFromScratch:
    @settings(max_examples=60, deadline=None)
    @given(edges, edges)
    def test_reachability(self, base_edges, stream):
        base = [e for e in base_edges if e not in stream]
        view = MaterializedView(build_db(base), REACH)
        final_db = build_db(base)
        for src, dst in stream:
            view.insert_fact("next", Oid.interval(src), Oid.interval(dst))
            final_db.relate("next", Oid.interval(src), Oid.interval(dst))
        fresh = evaluate(final_db, REACH)
        assert view.relation("reach") == fresh.relation("reach")

    @settings(max_examples=30, deadline=None)
    @given(edges, edges)
    def test_constructive(self, base_edges, stream):
        base = [e for e in base_edges if e not in stream]
        view = MaterializedView(build_db(base), CONSTRUCTIVE)
        final_db = build_db(base)
        for src, dst in stream:
            view.insert_fact("next", Oid.interval(src), Oid.interval(dst))
            final_db.relate("next", Oid.interval(src), Oid.interval(dst))
        fresh = evaluate(final_db, CONSTRUCTIVE)
        assert view.relation("merged") == fresh.relation("merged")
        fresh_intervals = {o for o in fresh.context.objects if o.is_interval}
        view_intervals = {o for o in view.context.objects if o.is_interval}
        assert view_intervals == fresh_intervals

    @settings(max_examples=30, deadline=None)
    @given(edges)
    def test_insert_order_irrelevant(self, stream):
        forward = MaterializedView(build_db([]), REACH)
        backward = MaterializedView(build_db([]), REACH)
        for src, dst in stream:
            forward.insert_fact("next", Oid.interval(src), Oid.interval(dst))
        for src, dst in reversed(stream):
            backward.insert_fact("next", Oid.interval(src), Oid.interval(dst))
        assert forward.relation("reach") == backward.relation("reach")
