"""Property-based tests: generalized-interval algebra invariants."""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from vidb.intervals.generalized import GeneralizedInterval
from vidb.intervals.interval import Interval

# Small rational endpoints keep arithmetic exact and shrinking readable.
coordinates = st.integers(min_value=0, max_value=40).map(
    lambda n: Fraction(n, 2))


@st.composite
def intervals(draw):
    lo = draw(coordinates)
    width = draw(coordinates)
    closed_lo = draw(st.booleans())
    closed_hi = draw(st.booleans())
    if width == 0:
        return Interval(lo, lo)
    return Interval(lo, lo + width, closed_lo, closed_hi)


generalized = st.lists(intervals(), max_size=6).map(GeneralizedInterval)


class TestNormalFormInvariants:
    @given(generalized)
    def test_fragments_sorted_and_disjoint(self, g):
        for first, second in zip(g.fragments, g.fragments[1:]):
            assert first.hi <= second.lo
            assert not first.overlaps(second)
            assert not first.adjacent(second)  # maximal runs

    @given(generalized)
    def test_normalization_idempotent(self, g):
        assert GeneralizedInterval(g.fragments) == g


class TestAlgebraLaws:
    @given(generalized, generalized)
    def test_union_commutative(self, a, b):
        assert a | b == b | a

    @given(generalized, generalized, generalized)
    def test_union_associative(self, a, b, c):
        assert (a | b) | c == a | (b | c)

    @given(generalized)
    def test_union_idempotent(self, a):
        assert a | a == a

    @given(generalized, generalized)
    def test_intersection_commutative(self, a, b):
        assert (a & b) == (b & a)

    @given(generalized, generalized, generalized)
    def test_intersection_associative(self, a, b, c):
        assert (a & b) & c == a & (b & c)

    @given(generalized, generalized, generalized)
    def test_intersection_distributes_over_union(self, a, b, c):
        assert a & (b | c) == (a & b) | (a & c)

    @given(generalized, generalized)
    def test_difference_disjoint_from_subtrahend(self, a, b):
        assert ((a - b) & b).is_empty()

    @given(generalized, generalized)
    def test_difference_union_restores(self, a, b):
        assert (a - b) | (a & b) == a

    @given(generalized, generalized)
    def test_de_morgan_via_difference(self, a, b):
        universe = a | b
        assert universe - (a & b) == (universe - a) | (universe - b)


class TestOrderingAndMeasure:
    @given(generalized, generalized)
    def test_contains_iff_intersection_fixes(self, a, b):
        assert a.contains(b) == ((a & b) == b)

    @given(generalized, generalized)
    def test_union_measure_inclusion_exclusion(self, a, b):
        assert (a | b).measure == a.measure + b.measure - (a & b).measure

    @given(generalized, generalized)
    def test_overlaps_symmetric(self, a, b):
        assert a.overlaps(b) == b.overlaps(a)

    @given(generalized, generalized)
    def test_before_implies_no_overlap(self, a, b):
        if a.before(b):
            assert not a.overlaps(b)

    @given(generalized)
    def test_span_contains_everything(self, a):
        span = a.span()
        if span is not None:
            assert GeneralizedInterval([span]).contains(a)


class TestConstraintDuality:
    @given(generalized)
    def test_point_based_roundtrip(self, g):
        assert GeneralizedInterval.from_constraint(g.to_constraint()) == g

    @given(generalized, coordinates)
    def test_constraint_and_footprint_agree_pointwise(self, g, point):
        from vidb.intervals.generalized import T

        constraint = g.to_constraint()
        if constraint.is_false():
            assert not g.contains_point(point)
        else:
            assert constraint.evaluate({T: point}) == g.contains_point(point)

    @given(generalized, generalized)
    def test_containment_matches_entailment(self, a, b):
        """The bridge the paper's 'contains' rule relies on: footprint
        containment coincides with duration-constraint entailment."""
        from vidb.constraints.solver import entails

        assert a.contains(b) == entails(b.to_constraint(), a.to_constraint())
