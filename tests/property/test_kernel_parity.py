"""Property-based parity: the interned kernel against the reference kernel.

The interned backend replaces the reference decision procedures with
hash-consed canonical forms, a bitset Warshall closure, and closed-form
set-order propagation.  These tests assert observational equivalence on
random inputs for every kernel operation — satisfiable, entails,
equivalent, simplify, and the set-order pair — so any divergence between
the two implementations is a bug regardless of which one is wrong.

Constraints here stay at two dense variables: the reference backend's
negation-to-DNF expansion is exponential in clause width, and the parity
property is about operator semantics, not scale (the benchmarks cover
scale).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from vidb.constraints.dense import Comparison, Constraint, conjoin, disjoin
from vidb.constraints.interned import InternedKernel
from vidb.constraints.reference import ReferenceKernel
from vidb.constraints.setorder import (
    Member,
    SetVar,
    SubsetConst,
    SubsetVar,
    SupersetConst,
)
from vidb.constraints.terms import Var

DENSE_VARS = [Var("x"), Var("y")]
OPS = ["=", "!=", "<", "<=", ">", ">="]

constants = st.integers(min_value=0, max_value=4)

reference = ReferenceKernel()
interned = InternedKernel()


@st.composite
def atoms(draw):
    left = draw(st.sampled_from(DENSE_VARS))
    op = draw(st.sampled_from(OPS))
    if draw(st.booleans()):
        right = draw(st.sampled_from(DENSE_VARS))
    else:
        right = draw(constants)
    return Comparison(left, op, right)


@st.composite
def dense_constraints(draw) -> Constraint:
    n_clauses = draw(st.integers(min_value=1, max_value=3))
    clauses = []
    for _ in range(n_clauses):
        clause = draw(st.lists(atoms(), min_size=1, max_size=4))
        clauses.append(conjoin(*clause))
    return disjoin(*clauses)


SET_VARS = [SetVar("X"), SetVar("Y"), SetVar("Z")]
elements = st.sampled_from(("a", "b", "c"))
element_sets = st.frozensets(elements, max_size=3)
set_vars = st.sampled_from(SET_VARS)


@st.composite
def set_atoms(draw):
    kind = draw(st.sampled_from(["member", "subset_const", "superset_const",
                                 "subset_var"]))
    if kind == "member":
        return Member(draw(elements), draw(set_vars))
    if kind == "subset_const":
        return SubsetConst(draw(set_vars), draw(element_sets))
    if kind == "superset_const":
        return SupersetConst(draw(element_sets), draw(set_vars))
    return SubsetVar(draw(set_vars), draw(set_vars))


set_atom_lists = st.lists(set_atoms(), min_size=0, max_size=6)


class TestDenseParity:
    @given(dense_constraints())
    @settings(max_examples=300, deadline=None)
    def test_satisfiable(self, c):
        assert interned.satisfiable(c) == reference.satisfiable(c)

    @given(dense_constraints(), dense_constraints())
    @settings(max_examples=300, deadline=None)
    def test_entails(self, c1, c2):
        assert interned.entails(c1, c2) == reference.entails(c1, c2)

    @given(dense_constraints(), dense_constraints())
    @settings(max_examples=100, deadline=None)
    def test_equivalent(self, c1, c2):
        assert interned.equivalent(c1, c2) == reference.equivalent(c1, c2)

    @given(dense_constraints())
    @settings(max_examples=100, deadline=None)
    def test_simplify_preserves_meaning(self, c):
        # simplify may pick different (equivalent) forms per backend; the
        # contract is semantic, so check equivalence, not syntactic match.
        assert reference.equivalent(interned.simplify(c), c)
        assert reference.equivalent(reference.simplify(c), c)

    @given(st.lists(st.tuples(dense_constraints(), dense_constraints()),
                    min_size=0, max_size=5))
    @settings(max_examples=100, deadline=None)
    def test_entails_many(self, pairs):
        assert (interned.entails_many(pairs)
                == [reference.entails(a, b) for a, b in pairs])


class TestSetOrderParity:
    @given(set_atom_lists)
    @settings(max_examples=300, deadline=None)
    def test_set_satisfiable(self, atoms):
        assert (interned.set_satisfiable(atoms)
                == reference.set_satisfiable(atoms))

    @given(set_atom_lists, set_atom_lists)
    @settings(max_examples=300, deadline=None)
    def test_set_entails(self, premise, conclusion):
        assert (interned.set_entails(premise, conclusion)
                == reference.set_entails(premise, conclusion))


class TestCacheTransparency:
    """Caches must be observationally invisible: asking twice — or after
    forcing eviction with a tiny kernel — gives the same answer."""

    @given(dense_constraints(), dense_constraints())
    @settings(max_examples=100, deadline=None)
    def test_repeat_queries_stable(self, c1, c2):
        first = interned.entails(c1, c2)
        assert interned.entails(c1, c2) == first

    @given(st.lists(st.tuples(dense_constraints(), dense_constraints()),
                    min_size=1, max_size=6))
    @settings(max_examples=50, deadline=None)
    def test_tiny_caches_match_reference(self, pairs):
        tiny = InternedKernel(max_forms=2, max_cached=2)
        for a, b in pairs:
            assert tiny.entails(a, b) == reference.entails(a, b)
