"""Property-based tests: stratified negation semantics.

For randomly generated databases, the engine's stratified evaluation of
a fixed two-stratum program must equal the *perfect-model* construction
computed by hand: saturate stratum 0, then evaluate stratum 1 against the
completed lower relations.  Also: the classic complement identity — for
non-recursive definitions, ``not p`` partitions the bound domain.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from vidb.model.oid import Oid
from vidb.query.engine import QueryEngine
from vidb.query.fixpoint import evaluate
from vidb.query.parser import parse_program
from vidb.storage.database import VideoDatabase

NODES = ["g0", "g1", "g2", "g3"]

edges = st.lists(
    st.tuples(st.sampled_from(NODES), st.sampled_from(NODES)),
    max_size=10, unique=True,
)

PROGRAM = parse_program("""
    reach(X, Y) :- edge(X, Y).
    reach(X, Z) :- reach(X, Y), edge(Y, Z).
    blocked(X, Y) :- interval(X), interval(Y), not reach(X, Y).
""")


def build_db(edge_list):
    db = VideoDatabase("neg-prop")
    db.declare_relation("edge")
    for i, node in enumerate(NODES):
        db.new_interval(node, duration=[(i * 10, i * 10 + 5)])
    for src, dst in edge_list:
        db.relate("edge", Oid.interval(src), Oid.interval(dst))
    return db


class TestPerfectModel:
    @settings(max_examples=80, deadline=None)
    @given(edges)
    def test_blocked_is_complement_of_reach(self, edge_list):
        db = build_db(edge_list)
        result = evaluate(db, PROGRAM)
        reach = result.relation("reach")
        blocked = result.relation("blocked")
        domain = {Oid.interval(n) for n in NODES}
        all_pairs = {(a, b) for a in domain for b in domain}
        # exact partition of the bound domain
        assert reach | blocked == all_pairs
        assert reach & blocked == frozenset()

    @settings(max_examples=50, deadline=None)
    @given(edges)
    def test_modes_agree_under_negation(self, edge_list):
        db = build_db(edge_list)
        naive = evaluate(db, PROGRAM, mode="naive")
        seminaive = evaluate(db, PROGRAM, mode="seminaive")
        for predicate in ("reach", "blocked"):
            assert naive.relation(predicate) == seminaive.relation(predicate)

    @settings(max_examples=50, deadline=None)
    @given(edges)
    def test_double_negation_recovers_positive(self, edge_list):
        db = build_db(edge_list)
        program = parse_program("""
            reach(X, Y) :- edge(X, Y).
            reach(X, Z) :- reach(X, Y), edge(Y, Z).
            blocked(X, Y) :- interval(X), interval(Y), not reach(X, Y).
            open(X, Y) :- interval(X), interval(Y), not blocked(X, Y).
        """)
        result = evaluate(db, program)
        assert result.relation("open") == result.relation("reach")


class TestMonotoneInLowerStrata:
    @settings(max_examples=50, deadline=None)
    @given(edges, st.data())
    def test_negation_is_antitone_in_edb(self, edge_list, data):
        """More edges → more reach → fewer blocked pairs (antitonicity
        through one negation)."""
        subset_size = data.draw(st.integers(0, len(edge_list)))
        smaller = edge_list[:subset_size]
        small = evaluate(build_db(smaller), PROGRAM)
        big = evaluate(build_db(edge_list), PROGRAM)
        assert big.relation("blocked") <= small.relation("blocked")
