"""Property-based tests: interval-network reasoning vs concrete reality.

* a network grounded from concrete intervals is always consistent and
  propagation never removes the observed relation;
* a random hypothetical constraint is accepted by `is_consistent` iff it
  includes the actually observed relation (on grounded networks);
* scenarios extracted from propagated networks satisfy every composition
  constraint.
"""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from vidb.intervals import allen
from vidb.intervals.composition import is_consistent_triple
from vidb.intervals.interval import Interval
from vidb.intervals.network import IntervalNetwork, network_from_intervals

coordinates = st.integers(min_value=0, max_value=16)


@st.composite
def proper_intervals(draw):
    lo = draw(coordinates)
    width = draw(st.integers(min_value=1, max_value=8))
    return Interval(Fraction(lo, 2), Fraction(lo + width, 2))


@st.composite
def grounded(draw):
    count = draw(st.integers(2, 4))
    return {f"n{i}": draw(proper_intervals()) for i in range(count)}


relation_sets = st.frozensets(st.sampled_from(sorted(allen.INVERSES)),
                              min_size=1, max_size=4)


class TestGroundedNetworks:
    @settings(max_examples=100, deadline=None)
    @given(grounded())
    def test_always_consistent(self, named):
        network = network_from_intervals(named)
        assert network.propagate()
        assert network.is_consistent()

    @settings(max_examples=100, deadline=None)
    @given(grounded())
    def test_propagation_preserves_observed_relations(self, named):
        network = network_from_intervals(named)
        network.propagate()
        names = sorted(named)
        for i, first in enumerate(names):
            for second in names[i + 1:]:
                observed = allen.relation(named[first], named[second])
                assert network.relations(first, second) == \
                    frozenset({observed})

    @settings(max_examples=100, deadline=None)
    @given(grounded(), relation_sets)
    def test_hypothetical_constraint_decision(self, named, hypothesis_set):
        names = sorted(named)
        first, second = names[0], names[1]
        observed = allen.relation(named[first], named[second])
        network = network_from_intervals(named)
        network.constrain(first, second, hypothesis_set)
        assert network.is_consistent() == (observed in hypothesis_set)


class TestScenarios:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(relation_sets, min_size=2, max_size=2))
    def test_scenario_triples_are_composition_consistent(self, sets):
        network = IntervalNetwork(["a", "b", "c"])
        network.constrain("a", "b", sets[0])
        network.constrain("b", "c", sets[1])
        scenario = network.scenario()
        assert scenario is not None  # two free-edge constraints always ok
        assert is_consistent_triple(
            scenario[("a", "b")], scenario[("b", "c")],
            scenario[("a", "c")])

    @settings(max_examples=60, deadline=None)
    @given(grounded())
    def test_scenario_matches_ground_truth(self, named):
        network = network_from_intervals(named)
        scenario = network.scenario()
        assert scenario is not None
        for (first, second), relation in scenario.items():
            assert relation == allen.relation(named[first], named[second])
