"""Parser fuzzing: hostile input never escapes the error contract.

For arbitrary text — random unicode, mutated valid programs, token soup —
the parser either succeeds or raises :class:`ParseError` (or, for rules
that parse but violate static rules, :class:`QueryError`/`SafetyError`).
It must never raise anything else and never hang.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from vidb.errors import ParseError, QueryError
from vidb.query.parser import parse_constraint, parse_program, parse_query

TOKENS = [
    "q", "p", "interval", "G", "X", "o1", "(", ")", "{", "}", ",", ".",
    ":-", "?-", "=>", "++", "=", "!=", "<", "<=", "in", "subset", "and",
    "or", "not", '"str"', "3", "-7", "2.5", " ", "\n", "%c\n",
]

token_soup = st.lists(st.sampled_from(TOKENS), max_size=30).map(" ".join)
random_text = st.text(max_size=60)

VALID_PROGRAM = (
    'q(G) :- interval(G), object(O), O in G.entities, O.name = "x", '
    "G.duration => (t > 0 and t < 9), not vip(O).")

mutations = st.tuples(
    st.integers(0, len(VALID_PROGRAM) - 1),
    st.integers(0, len(VALID_PROGRAM) - 1),
).map(lambda cut: VALID_PROGRAM[:cut[0]] + VALID_PROGRAM[cut[1]:])


def _parse_attempt(parser, text):
    try:
        parser(text)
    except (ParseError, QueryError):
        return  # the contract: typed errors only
    # succeeding is fine too


class TestParserNeverCrashes:
    @settings(max_examples=300, deadline=None)
    @given(random_text)
    def test_random_unicode_program(self, text):
        _parse_attempt(parse_program, text)

    @settings(max_examples=300, deadline=None)
    @given(token_soup)
    def test_token_soup_program(self, text):
        _parse_attempt(parse_program, text)

    @settings(max_examples=200, deadline=None)
    @given(token_soup)
    def test_token_soup_query(self, text):
        _parse_attempt(parse_query, text)

    @settings(max_examples=200, deadline=None)
    @given(random_text)
    def test_random_constraint(self, text):
        _parse_attempt(parse_constraint, text)

    @settings(max_examples=300, deadline=None)
    @given(mutations)
    def test_mutated_valid_program(self, text):
        _parse_attempt(parse_program, text)

    def test_pathological_nesting_terminates(self):
        text = "q(" + "a, " * 500 + "b)."
        parse_program(text)
        deep = "(" * 200 + "t > 0" + ")" * 200
        _parse_attempt(parse_constraint, f"({deep})")
