"""Property-based tests: parse/render round-trips.

Two directions:

* **text-side**: for a corpus of realistic programs,
  ``render(parse(text))`` re-parses to the same AST;
* **AST-side**: for randomly *generated* rules (hypothesis strategies
  over the AST constructors), ``parse(render(rule)) == rule``.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from vidb.constraints.dense import conjoin, disjoin
from vidb.constraints.terms import Var
from vidb.query.ast import (
    AttrPath,
    ComparisonAtom,
    ConcatTerm,
    EntailmentAtom,
    Literal,
    MembershipAtom,
    NegatedLiteral,
    Program,
    Rule,
    SubsetAtom,
    Symbol,
    Variable,
)
from vidb.query.parser import parse_program, parse_query, parse_rule
from vidb.query.render import render_program, render_query, render_rule
from vidb.query.stdlib import STDLIB_RULES
from vidb.workloads.generator import QUERY_TEMPLATES
from vidb.workloads.paper import paper_queries, section62_rules

CORPUS = [
    STDLIB_RULES,
    section62_rules(),
    "q(X) :- p(X), not r(X), X != 3.",
    'label(O, L) :- object(O), O.name = "De \\"quoted\\" luxe", tag(O, L).',
    "w(G) :- interval(G), G.duration => (t > 0 and t < 5 or t > 9).",
    "f(a, -3, 2.5).",
    "r1: montage(G1 ++ G2 ++ G3) :- grow(G1), grow(G2), grow(G3).",
]


class TestCorpusRoundtrip:
    @pytest.mark.parametrize("text", CORPUS)
    def test_program_roundtrip(self, text):
        first = parse_program(text)
        rendered = render_program(first)
        second = parse_program(rendered)
        assert list(second) == list(first)

    @pytest.mark.parametrize("name", sorted(paper_queries()))
    def test_paper_query_roundtrip(self, name):
        query = parse_query(paper_queries()[name])
        again = parse_query(render_query(query))
        assert again.body == query.body
        assert again.answer_variables == query.answer_variables

    @pytest.mark.parametrize("name", sorted(QUERY_TEMPLATES))
    def test_template_query_roundtrip(self, name):
        query = parse_query(QUERY_TEMPLATES[name])
        assert parse_query(render_query(query)).body == query.body


# --- generated-AST round-trip -------------------------------------------------

variables = st.sampled_from(["X", "Y", "Z", "G1", "G2"]).map(Variable)
symbols = st.sampled_from(["a", "b", "gi1", "reporter"]).map(Symbol)
numbers = st.integers(min_value=-50, max_value=50)
strings = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd"),
                           whitelist_characters=" _-"),
    max_size=8)
simple_terms = st.one_of(variables, symbols, numbers, strings)
attrs = st.sampled_from(["entities", "duration", "name", "role"])
paths = st.builds(AttrPath, st.one_of(variables, symbols), attrs)

cvars = st.sampled_from(["t", "u"]).map(Var)


@st.composite
def inline_constraints(draw):
    atom_count = draw(st.integers(1, 3))
    atoms = []
    for __ in range(atom_count):
        atoms.append(
            __import__("vidb.constraints.dense", fromlist=["Comparison"])
            .Comparison(draw(cvars),
                        draw(st.sampled_from(["<", "<=", ">", ">=", "=",
                                              "!="])),
                        draw(st.integers(0, 9))))
    if draw(st.booleans()):
        return conjoin(*atoms)
    return disjoin(*atoms)


@st.composite
def body_items(draw):
    kind = draw(st.sampled_from(
        ["literal", "negation", "member", "subset", "cmp", "entail"]))
    if kind == "literal":
        args = draw(st.lists(simple_terms, min_size=1, max_size=3))
        return Literal(draw(st.sampled_from(["p", "q", "edge"])), args)
    if kind == "negation":
        args = draw(st.lists(simple_terms, min_size=1, max_size=2))
        return NegatedLiteral(Literal("r", args))
    if kind == "member":
        return MembershipAtom(draw(st.one_of(variables, symbols)),
                              draw(paths))
    if kind == "subset":
        subset = draw(st.one_of(
            paths,
            st.lists(st.one_of(variables, symbols), min_size=1,
                     max_size=3).map(tuple)))
        return SubsetAtom(subset, draw(paths))
    if kind == "cmp":
        return ComparisonAtom(
            draw(st.one_of(paths, simple_terms)),
            draw(st.sampled_from(["=", "!=", "<", "<=", ">", ">="])),
            draw(st.one_of(paths, simple_terms)))
    return EntailmentAtom(draw(st.one_of(paths, inline_constraints())),
                          draw(st.one_of(paths, inline_constraints())))


@st.composite
def rules(draw):
    body = draw(st.lists(body_items(), min_size=0, max_size=4))
    bound = set()
    for item in body:
        if isinstance(item, Literal):
            bound |= item.variables()
    head_args = draw(st.lists(
        st.one_of(st.sampled_from(sorted(bound, key=lambda v: v.name))
                  if bound else symbols,
                  symbols, numbers),
        min_size=1, max_size=3))
    if draw(st.booleans()) and len(bound) >= 2:
        ordered = sorted(bound, key=lambda v: v.name)
        head_args.append(ConcatTerm(ordered[0], ordered[1]))
    return Rule(Literal("head", head_args), body)


class TestGeneratedRoundtrip:
    @settings(max_examples=300, deadline=None)
    @given(rules())
    def test_rule_roundtrip(self, rule):
        assert parse_rule(render_rule(rule)) == rule

    @settings(max_examples=100, deadline=None)
    @given(st.lists(rules(), min_size=1, max_size=4))
    def test_program_roundtrip(self, rule_list):
        program = Program(rule_list)
        assert list(parse_program(render_program(program))) == rule_list
