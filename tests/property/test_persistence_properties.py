"""Property-based tests: persistence round-trips for arbitrary databases."""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from vidb.intervals.generalized import GeneralizedInterval
from vidb.model.oid import Oid
from vidb.storage.database import VideoDatabase
from vidb.storage.persistence import decode_value, dumps, encode_value, loads

scalars = st.one_of(
    st.integers(min_value=-1000, max_value=1000),
    st.text(min_size=0, max_size=12),
    st.fractions(min_value=-10, max_value=10, max_denominator=50),
)

oids = st.one_of(
    st.sampled_from(["a", "b", "c"]).map(Oid.entity),
    st.sampled_from(["g1", "g2"]).map(Oid.interval),
)

values = st.recursive(
    st.one_of(scalars, oids),
    lambda children: st.frozensets(children, max_size=4),
    max_leaves=8,
)


class TestValueCodec:
    @settings(max_examples=200)
    @given(values)
    def test_roundtrip(self, value):
        assert decode_value(encode_value(value)) == value

    @settings(max_examples=100)
    @given(st.lists(st.tuples(st.integers(0, 50), st.integers(0, 10)),
                    min_size=0, max_size=4))
    def test_constraint_roundtrip(self, pairs):
        footprint = GeneralizedInterval.from_pairs(
            [(lo, lo + width) for lo, width in pairs])
        constraint = footprint.to_constraint()
        decoded = decode_value(encode_value(constraint))
        assert GeneralizedInterval.from_constraint(decoded) == footprint


names = st.from_regex(r"[a-z][a-z0-9_]{0,6}", fullmatch=True)


@st.composite
def databases(draw):
    db = VideoDatabase(draw(names))
    entity_names = draw(st.lists(names, min_size=1, max_size=4, unique=True))
    for i, name in enumerate(entity_names):
        attrs = draw(st.dictionaries(names, values, max_size=3))
        db.new_entity(f"e_{name}_{i}", **attrs)
    entity_oids = [e.oid for e in db.entities()]
    interval_count = draw(st.integers(0, 3))
    for i in range(interval_count):
        pairs = draw(st.lists(
            st.tuples(st.integers(0, 40), st.integers(0, 10)),
            min_size=1, max_size=3))
        members = draw(st.sets(st.sampled_from(entity_oids), max_size=3)) \
            if entity_oids else set()
        db.new_interval(
            f"g{i}", entities=members,
            duration=[(lo, lo + width) for lo, width in pairs])
    for __ in range(draw(st.integers(0, 3))):
        args = draw(st.lists(st.one_of(st.sampled_from(entity_oids), scalars),
                             min_size=1, max_size=3)) if entity_oids else [1]
        db.relate(draw(names), *args)
    return db


class TestDatabaseRoundtrip:
    @settings(max_examples=50, deadline=None)
    @given(databases())
    def test_full_roundtrip(self, db):
        restored = loads(dumps(db))
        assert set(restored.entities()) == set(db.entities())
        assert set(restored.intervals()) == set(db.intervals())
        assert restored.facts() == db.facts()

    @settings(max_examples=50, deadline=None)
    @given(databases())
    def test_snapshot_stability(self, db):
        snapshot = dumps(db)
        assert dumps(loads(snapshot)) == snapshot
