"""Property-based tests for the semantics theorems (experiment E7).

The paper proves its language has a unique minimal model computed by the
least fixpoint of T_P (Theorems 1-3, Lemmas 2-4).  These tests check the
computational faces of those results over randomly generated databases
and programs:

* **Theorem 3 / determinism** — naive and semi-naive evaluation compute
  the same saturated interpretation (they are two schedules for the same
  least fixpoint), including when constructive rules grow the extended
  active domain.
* **Lemma 2 (monotonicity)** — growing the database never removes derived
  facts: lfp(P, D1) ⊆ lfp(P, D2) whenever D1 ⊆ D2.
* **Soundness/completeness against an independent oracle** — recursive
  reachability agrees with networkx's transitive closure, and the
  ``contains`` rule agrees with footprint containment.
"""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from vidb.model.oid import Oid
from vidb.query.fixpoint import evaluate
from vidb.query.parser import parse_program
from vidb.storage.database import VideoDatabase

NODES = ["g0", "g1", "g2", "g3", "g4"]

edges = st.lists(
    st.tuples(st.sampled_from(NODES), st.sampled_from(NODES)),
    max_size=10, unique=True,
)

REACH_PROGRAM = parse_program("""
    reach(X, Y) :- edge(X, Y).
    reach(X, Z) :- reach(X, Y), edge(Y, Z).
""")

CONTAINS_PROGRAM = parse_program("""
    contains(G1, G2) :- interval(G1), interval(G2),
                        G2.duration => G1.duration.
""")

CONSTRUCTIVE_PROGRAM = parse_program("""
    linked(G1, G2) :- edge(G1, G2).
    merged(G1 ++ G2) :- linked(G1, G2).
    merged(G ++ H) :- merged(G), linked(H, H2), H2 = H.
""")


def build_db(edge_list, spans=None):
    db = VideoDatabase("prop")
    db.declare_relation("edge")
    spans = spans or {}
    for i, node in enumerate(NODES):
        lo, width = spans.get(node, (i * 10, 5))
        db.new_interval(node, duration=[(lo, lo + width)])
    for src, dst in edge_list:
        db.relate("edge", Oid.interval(src), Oid.interval(dst))
    return db


class TestModesComputeSameFixpoint:
    @settings(max_examples=60, deadline=None)
    @given(edges)
    def test_recursive_program(self, edge_list):
        db = build_db(edge_list)
        naive = evaluate(db, REACH_PROGRAM, mode="naive")
        seminaive = evaluate(db, REACH_PROGRAM, mode="seminaive")
        assert naive.relation("reach") == seminaive.relation("reach")

    @settings(max_examples=30, deadline=None)
    @given(edges)
    def test_constructive_program(self, edge_list):
        db = build_db(edge_list)
        naive = evaluate(db, CONSTRUCTIVE_PROGRAM, mode="naive")
        seminaive = evaluate(db, CONSTRUCTIVE_PROGRAM, mode="seminaive")
        assert naive.relation("merged") == seminaive.relation("merged")
        assert set(naive.context.objects) == set(seminaive.context.objects)

    @settings(max_examples=30, deadline=None)
    @given(edges)
    def test_evaluation_deterministic(self, edge_list):
        db = build_db(edge_list)
        first = evaluate(db, REACH_PROGRAM)
        second = evaluate(db, REACH_PROGRAM)
        assert first.relation("reach") == second.relation("reach")


class TestMonotonicity:
    @settings(max_examples=60, deadline=None)
    @given(edges, st.data())
    def test_lemma2_growing_edb_grows_lfp(self, edge_list, data):
        subset_size = data.draw(st.integers(0, len(edge_list)))
        smaller = edge_list[:subset_size]
        small_result = evaluate(build_db(smaller), REACH_PROGRAM)
        big_result = evaluate(build_db(edge_list), REACH_PROGRAM)
        assert small_result.relation("reach") <= big_result.relation("reach")

    @settings(max_examples=30, deadline=None)
    @given(edges, st.data())
    def test_monotone_with_construction(self, edge_list, data):
        subset_size = data.draw(st.integers(0, len(edge_list)))
        smaller = edge_list[:subset_size]
        small = evaluate(build_db(smaller), CONSTRUCTIVE_PROGRAM)
        big = evaluate(build_db(edge_list), CONSTRUCTIVE_PROGRAM)
        assert small.relation("merged") <= big.relation("merged")


class TestAgainstIndependentOracles:
    @settings(max_examples=60, deadline=None)
    @given(edges)
    def test_reach_is_transitive_closure(self, edge_list):
        db = build_db(edge_list)
        result = evaluate(db, REACH_PROGRAM)
        graph = nx.DiGraph()
        graph.add_nodes_from(NODES)
        graph.add_edges_from((a, b) for a, b in edge_list)
        closure = nx.transitive_closure(graph, reflexive=False)
        expected = {
            (Oid.interval(a), Oid.interval(b)) for a, b in closure.edges()
        }
        assert result.relation("reach") == expected

    @settings(max_examples=40, deadline=None)
    @given(st.dictionaries(st.sampled_from(NODES),
                           st.tuples(st.integers(0, 30), st.integers(1, 20)),
                           min_size=5, max_size=5))
    def test_contains_is_footprint_containment(self, spans):
        db = build_db([], spans=spans)
        result = evaluate(db, CONTAINS_PROGRAM)
        derived = result.relation("contains")
        for outer in db.intervals():
            for inner in db.intervals():
                expected = outer.footprint().contains(inner.footprint())
                assert ((outer.oid, inner.oid) in derived) == expected


class TestFixpointIsModel:
    """Lemma 3/4: the saturated interpretation satisfies every rule —
    re-deriving over the saturated relations adds nothing new."""

    @settings(max_examples=40, deadline=None)
    @given(edges)
    def test_saturation_idempotent(self, edge_list):
        db = build_db(edge_list)
        result = evaluate(db, REACH_PROGRAM)
        reach = result.relation("reach")
        edge_rel = result.relation("edge")
        # apply the rules by hand over the saturated interpretation
        derived = set(edge_rel)
        for x, y in reach:
            for y2, z in edge_rel:
                if y == y2:
                    derived.add((x, z))
        assert derived <= reach | edge_rel
        assert {pair for pair in derived} <= reach


class TestExtendedActiveDomain:
    @settings(max_examples=30, deadline=None)
    @given(edges)
    def test_created_objects_are_flat_composites(self, edge_list):
        db = build_db(edge_list)
        result = evaluate(db, CONSTRUCTIVE_PROGRAM)
        base_parts = set(NODES)
        for oid in result.context.objects:
            if oid.is_interval:
                assert oid.parts <= base_parts

    @settings(max_examples=30, deadline=None)
    @given(edges)
    def test_closure_bounded_by_powerset(self, edge_list):
        db = build_db(edge_list)
        result = evaluate(db, CONSTRUCTIVE_PROGRAM)
        interval_count = sum(
            1 for oid in result.context.objects if oid.is_interval)
        assert interval_count <= 2 ** len(NODES) - 1
