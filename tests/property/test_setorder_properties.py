"""Property-based tests: set-order constraints against brute force.

With elements drawn from a small universe U, a conjunction of set-order
atoms is satisfiable over finite sets iff it is satisfiable with every
variable assigned a subset of U ∪ (constants mentioned) — so exhaustive
enumeration over a 3-element universe is a complete oracle for these
generated inputs.
"""

from itertools import chain, combinations, product

from hypothesis import given, settings
from hypothesis import strategies as st

from vidb.constraints.setorder import (
    Member,
    SetConjunction,
    SetVar,
    SubsetConst,
    SubsetVar,
    SupersetConst,
)

UNIVERSE = ("a", "b", "c")
#: The oracle's enumeration universe adds one *fresh* element never used
#: by the generators: set variables range over unbounded domains, so a
#: variable can always contain something outside every mentioned constant
#: — without "z", the oracle would wrongly certify entailments like
#: "{a,b,c} ⊆ Y entails X ⊆ Y".
ORACLE_UNIVERSE = UNIVERSE + ("z",)
VARS = [SetVar("X"), SetVar("Y")]

elements = st.sampled_from(UNIVERSE)
element_sets = st.frozensets(elements, max_size=3)
set_vars = st.sampled_from(VARS)


@st.composite
def set_atoms(draw):
    kind = draw(st.sampled_from(["member", "subset_const", "superset_const",
                                 "subset_var"]))
    if kind == "member":
        return Member(draw(elements), draw(set_vars))
    if kind == "subset_const":
        return SubsetConst(draw(set_vars), draw(element_sets))
    if kind == "superset_const":
        return SupersetConst(draw(element_sets), draw(set_vars))
    return SubsetVar(draw(set_vars), draw(set_vars))


conjunctions = st.lists(set_atoms(), min_size=1, max_size=5)


def powerset(universe):
    return [frozenset(c) for r in range(len(universe) + 1)
            for c in combinations(universe, r)]


def brute_force_solutions(atoms):
    variables = sorted({v for a in atoms for v in a.variables()},
                       key=lambda v: v.name)
    if not variables:
        yield {}
        return
    for values in product(powerset(ORACLE_UNIVERSE), repeat=len(variables)):
        assignment = dict(zip(variables, values))
        if all(atom.holds(assignment) for atom in atoms):
            yield assignment


class TestSatisfiabilityOracle:
    @settings(max_examples=200, deadline=None)
    @given(conjunctions)
    def test_agrees_with_brute_force(self, atoms):
        expected = next(brute_force_solutions(atoms), None) is not None
        assert SetConjunction(atoms).satisfiable() == expected

    @settings(max_examples=100, deadline=None)
    @given(conjunctions)
    def test_canonical_solution_is_a_solution(self, atoms):
        conjunction = SetConjunction(atoms)
        if conjunction.satisfiable():
            solution = conjunction.canonical_solution()
            # complete the assignment for variables absent from atoms
            for atom in atoms:
                assert atom.holds(solution)

    @settings(max_examples=100, deadline=None)
    @given(conjunctions)
    def test_canonical_solution_is_minimal(self, atoms):
        conjunction = SetConjunction(atoms)
        if not conjunction.satisfiable():
            return
        canonical = conjunction.canonical_solution()
        for solution in brute_force_solutions(atoms):
            for var, value in canonical.items():
                assert value <= solution.get(var, value)


class TestEntailmentOracle:
    @settings(max_examples=200, deadline=None)
    @given(conjunctions, set_atoms())
    def test_atom_entailment_sound_and_complete(self, atoms, goal):
        claimed = SetConjunction(atoms).entails_atom(goal)
        # Ground truth: goal holds in every solution (extended to goal's
        # variables with all subsets when they are unconstrained).
        goal_vars = goal.variables()
        combined_vars = sorted(
            {v for a in atoms for v in a.variables()} | set(goal_vars),
            key=lambda v: v.name)
        truth = True
        found_solution = False
        for values in product(powerset(ORACLE_UNIVERSE), repeat=len(combined_vars)):
            assignment = dict(zip(combined_vars, values))
            if all(a.holds(assignment) for a in atoms):
                found_solution = True
                if not goal.holds(assignment):
                    truth = False
                    break
        if not found_solution:
            truth = True  # unsatisfiable premise entails everything
        assert claimed == truth

    @settings(max_examples=100, deadline=None)
    @given(conjunctions, conjunctions)
    def test_conjunction_entailment_sound(self, premise, conclusion):
        if SetConjunction(premise).entails(SetConjunction(conclusion)):
            combined_vars = sorted(
                {v for a in premise + conclusion for v in a.variables()},
                key=lambda v: v.name)
            for values in product(powerset(ORACLE_UNIVERSE),
                                  repeat=len(combined_vars)):
                assignment = dict(zip(combined_vars, values))
                if all(a.holds(assignment) for a in premise):
                    assert all(a.holds(assignment) for a in conclusion)
