"""Property-based tests: the dense-order solver against brute force.

For conjunctions of order atoms over a dense order, satisfiability over
the rationals is witnessed — when the constants come from a finite set C —
by an assignment drawing values from C, the midpoints of consecutive
members of C, and one value below/above all of C.  Enumerating those
candidate assignments gives an independent (exponential) oracle to test
the graph-based solver against.
"""

from fractions import Fraction
from itertools import product

from hypothesis import given, settings
from hypothesis import strategies as st

from vidb.constraints.dense import Comparison, conjoin
from vidb.constraints.solver import clause_satisfiable, entails, satisfiable
from vidb.constraints.terms import Var

VARS = [Var("x"), Var("y"), Var("z")]
OPS = ["=", "!=", "<", "<=", ">", ">="]

constants = st.integers(min_value=0, max_value=4)


@st.composite
def atoms(draw):
    left = draw(st.sampled_from(VARS))
    op = draw(st.sampled_from(OPS))
    if draw(st.booleans()):
        right = draw(st.sampled_from(VARS))
        if right == left and op in ("<", ">", "!="):
            op = "<="  # keep trivially-false self-loops rare but present
    else:
        right = draw(constants)
    return Comparison(left, op, right)


clauses = st.lists(atoms(), min_size=1, max_size=6)


def candidate_values(clause, chain_length=3):
    """A witness-complete value grid for order constraints.

    A satisfiable conjunction over k variables has a witness using the
    constants themselves, up to k distinct values strictly inside each gap
    between consecutive constants, and up to k values below/above all
    constants — so enumerate exactly those.
    """
    consts = sorted({a.right for a in clause if not isinstance(a.right, Var)})
    if not consts:
        consts = [0]
    values = {Fraction(c) for c in consts}
    for i in range(1, chain_length + 1):
        values.add(Fraction(consts[0]) - i)
        values.add(Fraction(consts[-1]) + i)
    for a, b in zip(consts, consts[1:]):
        for i in range(1, chain_length + 1):
            values.add(Fraction(a) + Fraction(b - a) * Fraction(
                i, chain_length + 1))
    return sorted(values)


def brute_force_satisfiable(clause):
    variables = sorted({v for atom in clause for v in atom.variables()},
                       key=lambda v: v.name)
    candidates = candidate_values(clause)
    if not variables:
        return all(atom.evaluate({}) for atom in clause)
    for assignment_values in product(candidates, repeat=len(variables)):
        assignment = dict(zip(variables, assignment_values))
        if all(atom.evaluate(assignment) for atom in clause):
            return True
    return False


class TestSolverVsBruteForce:
    @settings(max_examples=300, deadline=None)
    @given(clauses)
    def test_clause_satisfiability_agrees(self, clause):
        assert clause_satisfiable(clause) == brute_force_satisfiable(clause)

    @settings(max_examples=100, deadline=None)
    @given(clauses, clauses)
    def test_disjunction_satisfiable_iff_some_branch(self, c1, c2):
        disjunction = conjoin(*c1) | conjoin(*c2)
        expected = brute_force_satisfiable(c1) or brute_force_satisfiable(c2)
        assert satisfiable(disjunction) == expected


class TestEntailmentProperties:
    @settings(max_examples=100, deadline=None)
    @given(clauses)
    def test_entailment_reflexive(self, clause):
        c = conjoin(*clause)
        assert entails(c, c)

    @settings(max_examples=100, deadline=None)
    @given(clauses, atoms())
    def test_conjunction_entails_its_atoms(self, clause, extra):
        c = conjoin(*(clause + [extra]))
        assert entails(c, extra)

    @settings(max_examples=100, deadline=None)
    @given(clauses, clauses)
    def test_entailment_sound_on_candidate_assignments(self, c1, c2):
        """Soundness: when the solver claims c1 => c2, every candidate
        assignment satisfying c1 also satisfies c2."""
        if entails(conjoin(*c1), conjoin(*c2)):
            candidates = candidate_values(list(c1) + list(c2))
            variables = sorted(
                {v for a in list(c1) + list(c2) for v in a.variables()},
                key=lambda v: v.name)
            for values in product(candidates, repeat=len(variables)):
                assignment = dict(zip(variables, values))
                if all(a.evaluate(assignment) for a in c1):
                    assert all(a.evaluate(assignment) for a in c2)

    @settings(max_examples=100, deadline=None)
    @given(clauses, clauses, clauses)
    def test_entailment_transitive(self, c1, c2, c3):
        a, b, c = conjoin(*c1), conjoin(*c2), conjoin(*c3)
        if entails(a, b) and entails(b, c):
            assert entails(a, c)
