"""Stateful property test: the indexed database vs a naive model.

Hypothesis drives random operation sequences (add/replace/remove objects,
assert/retract facts, transactions with rollback) against both the real
:class:`VideoDatabase` and a dumb dict-based model; after every step the
index-backed access paths must agree with brute-force recomputation over
the model.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from vidb.intervals.generalized import GeneralizedInterval
from vidb.model.objects import EntityObject, GeneralizedIntervalObject
from vidb.model.oid import Oid
from vidb.model.relations import RelationFact
from vidb.storage.database import VideoDatabase

ENTITY_NAMES = [f"e{i}" for i in range(6)]
INTERVAL_NAMES = [f"g{i}" for i in range(6)]
ROLES = ["host", "guest", "crew"]


class DatabaseMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.db = VideoDatabase("stateful")
        self.entities = {}       # oid -> EntityObject
        self.intervals = {}      # oid -> GeneralizedIntervalObject
        self.facts = set()

    # -- operations --------------------------------------------------------
    @rule(name=st.sampled_from(ENTITY_NAMES), role=st.sampled_from(ROLES))
    def add_entity(self, name, role):
        oid = Oid.entity(name)
        if oid in self.entities:
            return
        obj = EntityObject(oid, {"role": role})
        self.db.add(obj)
        self.entities[oid] = obj

    @rule(name=st.sampled_from(INTERVAL_NAMES),
          start=st.integers(0, 50), width=st.integers(1, 20),
          member_names=st.frozensets(st.sampled_from(ENTITY_NAMES),
                                     max_size=3))
    def add_interval(self, name, start, width, member_names):
        oid = Oid.interval(name)
        if oid in self.intervals:
            return
        members = frozenset(Oid.entity(m) for m in member_names
                            if Oid.entity(m) in self.entities)
        obj = GeneralizedIntervalObject(oid, {
            "entities": members,
            "duration": GeneralizedInterval.from_pairs(
                [(start, start + width)]),
        })
        self.db.add(obj)
        self.intervals[oid] = obj

    @rule(name=st.sampled_from(ENTITY_NAMES), role=st.sampled_from(ROLES))
    def update_role(self, name, role):
        oid = Oid.entity(name)
        if oid not in self.entities:
            return
        self.db.set_attribute(oid, "role", role)
        self.entities[oid] = self.entities[oid].with_attribute("role", role)

    @rule(name=st.sampled_from(INTERVAL_NAMES))
    def remove_interval(self, name):
        oid = Oid.interval(name)
        if oid not in self.intervals:
            return
        # facts referencing the interval are retracted first (otherwise
        # they dangle — which validate() would rightly flag)
        for fact in [f for f in self.facts if oid in f.args]:
            self.db.remove_fact(fact)
            self.facts.discard(fact)
        self.db.remove_object(oid)
        del self.intervals[oid]

    @rule(src=st.sampled_from(ENTITY_NAMES),
          interval=st.sampled_from(INTERVAL_NAMES))
    def relate(self, src, interval):
        src_oid, gi_oid = Oid.entity(src), Oid.interval(interval)
        if src_oid not in self.entities or gi_oid not in self.intervals:
            return
        self.db.relate("in", src_oid, gi_oid)
        self.facts.add(RelationFact("in", (src_oid, gi_oid)))

    @rule(name=st.sampled_from(ENTITY_NAMES), role=st.sampled_from(ROLES))
    def rolled_back_transaction_changes_nothing(self, name, role):
        oid = Oid.entity(name)
        try:
            with self.db.transaction():
                if oid in self.entities:
                    self.db.set_attribute(oid, "role", role + "_tmp")
                else:
                    self.db.new_entity(name, role=role)
                self.db.new_interval("tx_scratch", duration=[(990, 999)])
                raise RuntimeError("abort")
        except RuntimeError:
            pass  # everything must have been undone

    # -- invariants -------------------------------------------------------------
    @invariant()
    def stats_agree(self):
        stats = self.db.stats()
        assert stats["entities"] == len(self.entities)
        assert stats["intervals"] == len(self.intervals)
        assert stats["facts"] == len(self.facts)

    @invariant()
    def attribute_index_agrees(self):
        for role in ROLES:
            expected = {oid for oid, obj in self.entities.items()
                        if obj.get("role") == role}
            actual = {o.oid for o in self.db.find_by_attribute("role", role)}
            assert actual == expected

    @invariant()
    def membership_index_agrees(self):
        for entity_oid in self.entities:
            expected = {oid for oid, obj in self.intervals.items()
                        if entity_oid in obj.entities}
            actual = {i.oid
                      for i in self.db.intervals_with_entity(entity_oid)}
            assert actual == expected

    @invariant()
    def temporal_index_agrees(self):
        for probe in (5, 25, 45):
            expected = {oid for oid, obj in self.intervals.items()
                        if obj.footprint().contains_point(probe)}
            actual = {i.oid for i in self.db.intervals_at(probe)}
            assert actual == expected

    @invariant()
    def facts_agree(self):
        assert self.db.facts("in") == frozenset(self.facts)

    @invariant()
    def referential_integrity_clean(self):
        # our rules never create dangling references
        assert self.db.sequence.validate() == []


DatabaseMachine.TestCase.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None)

TestDatabaseStateful = DatabaseMachine.TestCase
