"""Property-based test: observer-fed views ≡ from-scratch evaluation
under interleaved committed and aborted transactions.

Random transaction scripts — each a list of edge insertions (optionally
with a removal thrown in) ending in commit or abort — are applied to a
database with a StreamHub + ViewRegistry attached.  The registered
view, fed only through the observer stream, must afterwards equal a
fresh least-fixpoint over a database that replayed *only the committed
segments*; aborted segments must leave no trace.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from vidb.model.oid import Oid
from vidb.query.engine import QueryEngine
from vidb.query.fixpoint import evaluate
from vidb.query.parser import parse_program
from vidb.stream.hub import StreamHub
from vidb.stream.standing import SubscriptionManager
from vidb.stream.views import ViewRegistry
from vidb.storage.database import VideoDatabase

NODES = ["g0", "g1", "g2", "g3"]

REACH = parse_program("""
    reach(X, Y) :- next(X, Y).
    reach(X, Z) :- reach(X, Y), next(Y, Z).
""")

edge = st.tuples(st.sampled_from(NODES), st.sampled_from(NODES))

#: One transaction: its edges, whether it commits, and whether it also
#: removes the first edge it inserted (making the delta non-monotone).
segment = st.tuples(st.lists(edge, min_size=1, max_size=4),
                    st.booleans(), st.booleans())
script = st.lists(segment, max_size=6)


def build_db():
    db = VideoDatabase("stream-prop")
    db.declare_relation("next")
    for i, node in enumerate(NODES):
        db.new_interval(node, duration=[(i * 10, i * 10 + 5)])
    return db


class Abort(Exception):
    pass


def run_script(db, steps):
    """Apply *steps*; returns the edges seen only in aborted segments."""
    committed_edges = set()
    aborted_edges = set()
    for edges, commits, removes in steps:
        try:
            with db.transaction():
                applied = []
                for src, dst in edges:
                    fact = db.relate("next", Oid.interval(src),
                                     Oid.interval(dst))
                    applied.append((fact, (src, dst)))
                if removes:
                    db.remove_fact(applied[0][0])
                if not commits:
                    raise Abort()
        except Abort:
            aborted_edges.update(edge for _, edge in applied)
            continue
        committed_edges.update(edge for _, edge in applied)
    return aborted_edges - committed_edges


class TestObserverFedViewEqualsFromScratch:
    @settings(max_examples=40, deadline=None)
    @given(script)
    def test_view_matches_committed_state(self, steps):
        db = build_db()
        hub = StreamHub(db)
        view = ViewRegistry(hub).register("reach", REACH)

        aborted_only = run_script(db, steps)

        # The fed view equals a fresh least-fixpoint over the final
        # database (whose state is, by rollback, the committed prefix)...
        fresh = evaluate(db, REACH)
        assert view.relation("reach") == fresh.relation("reach")
        assert view.relation("next") == fresh.relation("next")
        # ...edges only ever inserted by aborted segments left no trace...
        surviving = {tuple(str(v) for v in row)
                     for row in view.relation("next")}
        assert not (aborted_only & surviving)
        hub.check_epoch()  # ...and the mirror stayed in lockstep.

    @settings(max_examples=40, deadline=None)
    @given(script)
    def test_subscriber_hears_each_answer_exactly_once(self, steps):
        db = build_db()
        hub = StreamHub(db)
        manager = SubscriptionManager(hub)
        sub = manager.subscribe("?- reach(X, Y).",
                                QueryEngine(db, rules=REACH))

        run_script(db, steps)

        heard = []
        for batch in sub.poll():
            heard.extend(tuple(row) for row in batch["rows"])
        # No duplicates across all notification batches...
        assert len(heard) == len(set(heard))
        # ...and together they cover exactly the final reach relation
        # (nothing was ever removed from it that had been notified —
        # removed tuples stay "heard", so heard ⊇ final always holds;
        # with no removals it is exactly equal).
        final = {tuple(str(v) for v in row)
                 for row in evaluate(db, REACH).relation("reach")}
        assert final <= set(heard) or not final
        if not any(removes for _, commits, removes in steps if commits):
            assert set(heard) == final
