"""Unit tests for the cached ProgramAnalyzer driver."""

import threading

from vidb.analysis import ProgramAnalyzer, analyze
from vidb.query.parser import parse_program, parse_query

PROGRAM = parse_program("""
    appears(O, G) :- interval(G), object(O), O in G.entities.
    orphan(X) :- object(X).
""")
QUERY = parse_query("?- appears(O, G).")


class TestCaching:
    def test_program_level_hit(self):
        analyzer = ProgramAnalyzer()
        first = analyzer.analyze(PROGRAM)
        second = analyzer.analyze(PROGRAM)
        assert second is first
        assert (analyzer.hits, analyzer.misses) == (1, 1)

    def test_query_level_hit(self):
        analyzer = ProgramAnalyzer()
        first = analyzer.analyze(PROGRAM, QUERY)
        second = analyzer.analyze(PROGRAM, QUERY)
        assert second is first
        assert (analyzer.hits, analyzer.misses) == (1, 1)

    def test_alpha_equivalent_queries_share_an_entry(self):
        analyzer = ProgramAnalyzer()
        analyzer.analyze(PROGRAM, parse_query("?- appears(O, G)."))
        analyzer.analyze(PROGRAM, parse_query("?- appears(X, Y)."))
        assert analyzer.hits == 1

    def test_different_edb_misses(self):
        analyzer = ProgramAnalyzer()
        analyzer.analyze(PROGRAM, QUERY, edb={"rel"})
        analyzer.analyze(PROGRAM, QUERY, edb={"rel", "other"})
        assert analyzer.misses == 2

    def test_different_world_assumption_misses(self):
        analyzer = ProgramAnalyzer()
        open_world = analyzer.analyze(PROGRAM, QUERY, closed_world=False)
        closed = analyzer.analyze(PROGRAM, QUERY, closed_world=True)
        assert analyzer.misses == 2
        assert open_world is not closed

    def test_equal_program_text_hits_across_objects(self):
        # Cache keys are value-based (fingerprint), not identity-based.
        analyzer = ProgramAnalyzer()
        analyzer.analyze(parse_program("p(X) :- object(X)."))
        analyzer.analyze(parse_program("p(X) :- object(X)."))
        assert analyzer.hits == 1

    def test_clear_forgets(self):
        analyzer = ProgramAnalyzer()
        analyzer.analyze(PROGRAM, QUERY)
        analyzer.clear()
        analyzer.analyze(PROGRAM, QUERY)
        assert (analyzer.hits, analyzer.misses) == (0, 2)

    def test_lru_evicts_oldest(self):
        analyzer = ProgramAnalyzer(max_entries=2)
        programs = [parse_program(f"p{i}(X) :- object(X).")
                    for i in range(3)]
        for program in programs:
            analyzer.analyze(program)
        analyzer.analyze(programs[0])  # evicted: misses again
        assert analyzer.misses == 4

    def test_cached_result_matches_uncached(self):
        analyzer = ProgramAnalyzer()
        cached = analyzer.analyze(PROGRAM, QUERY)
        direct = analyze(PROGRAM, QUERY)
        assert cached.diagnostics == direct.diagnostics
        assert cached.reachable == direct.reachable


class TestThreadSafety:
    def test_concurrent_mixed_analyses(self):
        analyzer = ProgramAnalyzer(max_entries=8)
        programs = [parse_program(f"p{i}(X) :- object(X).")
                    for i in range(4)]
        errors = []

        def worker(seed):
            try:
                for i in range(40):
                    analyzer.analyze(programs[(seed + i) % len(programs)])
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,))
                   for t in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert analyzer.hits + analyzer.misses == 240
