"""Unit tests for the individual analysis passes.

Every seeded defect is asserted with both its ``VDB0xx`` code and its
source span — the span contract is what makes `vidb lint` output
navigable, so it is part of the acceptance surface, not a nicety.
"""

import pytest

from vidb.analysis import analyze
from vidb.analysis.checks import reachable_predicates
from vidb.query.parser import parse_document, parse_program, parse_query


def lint(text, **kwargs):
    program, queries = parse_document(text)
    return analyze(program, queries, **kwargs)


def only(result, code):
    found = [d for d in result.diagnostics if d.code == code]
    assert len(found) == 1, \
        f"expected exactly one {code}, got {[d.code for d in result.diagnostics]}"
    return found[0]


class TestDeadRules:
    def test_dense_order_contradiction_is_vdb020(self):
        result = lint("dead(G) :- interval(G), G.start < 3, G.start > 5.")
        diagnostic = only(result, "VDB020")
        assert diagnostic.severity == "warning"
        assert diagnostic.span is not None
        assert (diagnostic.span.line, diagnostic.span.column) == (1, 1)
        assert diagnostic.rule_index == 0
        assert diagnostic.predicate == "dead"

    def test_contradiction_through_shared_variable(self):
        result = lint("""
            p(G) :- interval(G), G.start = 4, G.start >= 10.
        """)
        assert "VDB020" in result.codes()

    def test_transitive_contradiction(self):
        # a < b, b < c, c < a: unsatisfiable only through the cycle.
        result = lint(
            "p(G, H, K) :- interval(G), interval(H), interval(K), "
            "G.s < H.s, H.s < K.s, K.s < G.s.")
        assert "VDB020" in result.codes()

    def test_satisfiable_body_is_not_dead(self):
        result = lint("live(G) :- interval(G), G.start > 3, G.start < 5.")
        assert "VDB020" not in result.codes()

    def test_set_order_contradiction_is_vdb021(self, monkeypatch):
        # The surface grammar only produces lower-bound set atoms, which
        # are always jointly satisfiable — the VDB021 emission path is
        # defensive, so exercise it by forcing the set solver's verdict.
        import vidb.analysis.checks as checks
        monkeypatch.setattr(checks, "set_satisfiable", lambda atoms: False)
        result = lint(
            "p(G) :- interval(G), o1 in G.entities, G.start > 2, G.start > 1.")
        diagnostic = only(result, "VDB021")
        assert (diagnostic.span.line, diagnostic.span.column) == (1, 1)
        # A dead rule must not also be reported as redundant.
        assert "VDB023" not in result.codes()

    def test_dead_rule_suppresses_redundancy_noise(self):
        # start < 3 entails start < 100 vacuously once the body is
        # unsatisfiable; reporting VDB023 there would be noise.
        result = lint(
            "p(G) :- interval(G), G.start < 3, G.start > 5, G.start < 100.")
        assert "VDB020" in result.codes()
        assert "VDB023" not in result.codes()


class TestEntailments:
    def test_statically_false_entailment_is_vdb022(self):
        result = lint("p(G) :- interval(G), (t > 10) => (t > 20).")
        diagnostic = only(result, "VDB022")
        assert diagnostic.severity == "warning"
        assert diagnostic.span is not None
        assert diagnostic.span.line == 1

    def test_statically_true_entailment_is_silent(self):
        result = lint("p(G) :- interval(G), (t > 20) => (t > 10).")
        assert "VDB022" not in result.codes()

    def test_unsatisfiable_rhs_is_vdb024_info(self):
        result = lint(
            "p(G) :- interval(G), G.duration => (t > 5 and t < 3).")
        diagnostic = only(result, "VDB024")
        assert diagnostic.severity == "info"
        assert diagnostic.span is not None

    def test_path_to_path_entailment_is_silent(self):
        result = lint(
            "contains(G1, G2) :- interval(G1), interval(G2), "
            "G2.duration => G1.duration.")
        assert {"VDB022", "VDB024"} & result.codes() == set()


class TestRedundancy:
    def test_implied_comparison_is_vdb023(self):
        result = lint(
            "r(G) :- interval(G), G.start > 10, G.start > 2.")
        diagnostic = only(result, "VDB023")
        assert diagnostic.severity == "warning"
        # The span points at the redundant atom, not the rule head.
        assert diagnostic.span.column > 1

    def test_redundant_membership_atom(self):
        result = lint(
            "r(G) :- interval(G), {o1, o2} subset G.entities, "
            "o1 in G.entities.")
        diagnostic = only(result, "VDB023")
        assert "o1 in G.entities" in diagnostic.message

    def test_independent_constraints_are_kept(self):
        result = lint(
            "r(G) :- interval(G), G.start > 2, G.fin < 30.")
        assert "VDB023" not in result.codes()

    def test_duplicate_atom_reported_once_per_copy(self):
        result = lint("r(G) :- interval(G), G.start > 2, G.start > 2.")
        found = [d for d in result.diagnostics if d.code == "VDB023"]
        assert len(found) == 2  # each copy is implied by the other


class TestSafetyDiagnostics:
    def test_range_restriction_is_vdb002(self):
        result = lint("p(X, Y) :- object(X).")
        diagnostic = only(result, "VDB002")
        assert diagnostic.is_error
        assert diagnostic.span is not None

    def test_head_redefinition_is_vdb003(self):
        result = lint("interval(X) :- object(X).")
        assert only(result, "VDB003").is_error

    def test_arity_conflict_is_vdb004(self):
        result = lint("""
            p(X) :- object(X).
            p(X, Y) :- object(X), object(Y).
        """)
        diagnostic = only(result, "VDB004")
        assert diagnostic.is_error
        assert diagnostic.span.line == 3

    def test_unstratifiable_program_is_vdb005(self):
        result = lint("""
            win(X) :- pos(X), not lose(X).
            lose(X) :- pos(X), not win(X).
        """, extra={"pos": 1})
        diagnostic = only(result, "VDB005")
        assert diagnostic.is_error
        assert diagnostic.span is not None

    def test_unsafe_query_is_vdb002(self):
        result = lint("p(X) :- object(X). ?- p(X), Y = 3.")
        assert "VDB002" in {d.code for d in result.errors}


class TestPredicateUses:
    def test_undefined_predicate_closed_world_is_error(self):
        result = lint("q(X) :- nosuch(X).", closed_world=True)
        diagnostic = only(result, "VDB006")
        assert diagnostic.is_error
        assert diagnostic.predicate == "nosuch"
        assert diagnostic.span is not None
        assert diagnostic.span.column > 1

    def test_undefined_predicate_open_world_is_warning(self):
        result = lint("q(X) :- nosuch(X).", closed_world=False)
        diagnostic = only(result, "VDB006")
        assert diagnostic.severity == "warning"

    def test_edb_and_computed_and_extra_count_as_defined(self):
        result = lint(
            "q(X, G) :- rel(X, G), gi_before(G, G), helper(X).",
            edb={"rel"}, computed={"gi_before": 2}, extra={"helper": 1})
        assert "VDB006" not in result.codes()

    def test_arity_of_use_mismatch_is_vdb007(self):
        result = lint("""
            p(X) :- object(X).
            q(A, B) :- p(A, B).
        """)
        diagnostic = only(result, "VDB007")
        assert diagnostic.severity == "warning"
        assert diagnostic.predicate == "p"
        assert diagnostic.span.line == 3

    def test_conflicted_definitions_skip_arity_of_use(self):
        # With p defined at two arities there is no single expectation.
        result = lint("""
            p(X) :- object(X).
            p(X, Y) :- object(X), object(Y).
            q(A) :- p(A).
        """)
        assert "VDB007" not in result.codes()

    def test_undefined_in_query_body_located(self):
        result = lint("?- missing(X).", closed_world=True)
        diagnostic = only(result, "VDB006")
        assert diagnostic.rule_index is None
        assert diagnostic.span is not None


class TestStructuralLints:
    def test_singleton_variable_is_vdb030(self):
        result = lint("lonely(X) :- object(X), object(Other).")
        diagnostic = only(result, "VDB030")
        assert "Other" in diagnostic.message
        # Span points at the variable occurrence itself.
        assert diagnostic.span is not None
        assert diagnostic.span.column > 20

    def test_underscore_free_variables_both_flagged(self):
        result = lint("p(X) :- rel(X, Y), other(Z, Z).",
                      edb={"rel", "other"})
        found = [d for d in result.diagnostics if d.code == "VDB030"]
        assert len(found) == 1  # Y once; Z twice is a join with itself
        assert "Y" in found[0].message

    def test_cartesian_product_is_vdb031(self):
        result = lint("pairs(A, B) :- object(A), interval(B).")
        diagnostic = only(result, "VDB031")
        assert "cartesian" in diagnostic.message
        assert diagnostic.span is not None

    def test_joined_literals_are_not_cartesian(self):
        result = lint(
            "q(O, G) :- object(O), interval(G), O in G.entities.")
        assert "VDB031" not in result.codes()

    def test_ground_filter_literal_is_not_a_component(self):
        # object(o1) has no variables: it filters, it does not multiply.
        result = lint(
            "q(G) :- interval(G), object(o1), o1 in G.entities.")
        assert "VDB031" not in result.codes()


class TestReachability:
    def test_unreachable_predicate_is_vdb032(self):
        result = lint("""
            used(X) :- object(X).
            orphan(X) :- object(X).
            ?- used(X).
        """)
        diagnostic = only(result, "VDB032")
        assert diagnostic.predicate == "orphan"
        assert diagnostic.span.line == 3

    def test_transitively_reachable_is_silent(self):
        result = lint("""
            a(X) :- b(X).
            b(X) :- object(X).
            ?- a(X).
        """)
        assert "VDB032" not in result.codes()

    def test_no_queries_no_reachability_findings(self):
        result = lint("orphan(X) :- object(X).")
        assert "VDB032" not in result.codes()

    def test_constructive_rules_feed_interval_class(self):
        # A ++ rule grows the interval class, so a query over interval
        # reaches it even without naming its head predicate.
        result = lint("""
            merged(G1 ++ G2) :- linked(G1, G2).
            ?- interval(G).
        """, edb={"linked"})
        assert "VDB032" not in result.codes()

    def test_reachable_predicates_helper(self):
        program = parse_program("""
            a(X) :- b(X).
            b(X) :- object(X).
            c(X) :- object(X).
        """)
        reachable = reachable_predicates(program, {"a"})
        assert {"a", "b", "object"} <= reachable
        assert "c" not in reachable


class TestQueryLevelFindings:
    def test_dead_query_body(self):
        result = lint("?- interval(G), G.start < 1, G.start > 2.")
        diagnostic = only(result, "VDB020")
        assert diagnostic.rule_index is None
        assert "query" in diagnostic.message

    def test_cartesian_query(self):
        program, queries = parse_document("?- object(A), interval(B).")
        result = analyze(program, queries)
        assert "VDB031" in result.codes()

    def test_single_query_object_accepted(self):
        program = parse_program("p(X) :- object(X).")
        query = parse_query("?- p(X).")
        result = analyze(program, query)  # Query, not a sequence
        assert result.reachable is not None
        assert "p" in result.reachable
