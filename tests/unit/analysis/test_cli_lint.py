"""Unit tests for the `vidb lint` CLI command (in-process)."""

import json

import pytest

from vidb.cli import main
from vidb.storage.persistence import save
from vidb.workloads.paper import rope_database

FIXTURE = "tests/fixtures/lint_bad.vdb"
EXAMPLES = ["examples/rules/editing.vdb", "examples/rules/surveillance.vdb"]

CLEAN = """\
appears(O, G) :- interval(G), object(O), O in G.entities.
?- appears(O, G).
"""


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "clean.vdb"
    path.write_text(CLEAN)
    return str(path)


@pytest.fixture
def snapshot(tmp_path):
    path = tmp_path / "rope.json"
    save(rope_database(), path)
    return str(path)


class TestExitContract:
    def test_clean_file_is_zero(self, clean_file, capsys):
        assert main(["lint", clean_file]) == 0
        out = capsys.readouterr().out
        assert out.strip().endswith("clean")

    def test_clean_file_strict_is_still_zero(self, clean_file):
        assert main(["lint", clean_file, "--strict"]) == 0

    def test_warnings_are_zero_without_strict(self, capsys):
        assert main(["lint", FIXTURE]) == 0
        assert "9 warnings" in capsys.readouterr().out

    def test_warnings_are_one_with_strict(self, capsys):
        assert main(["lint", FIXTURE, "--strict"]) == 1

    def test_errors_are_two(self, tmp_path, capsys):
        bad = tmp_path / "broken.vdb"
        bad.write_text("p(X) :- object(X)")  # missing period
        assert main(["lint", str(bad)]) == 2
        assert "VDB001" in capsys.readouterr().out

    def test_missing_file_is_usage_error(self, capsys):
        assert main(["lint", "/nonexistent/rules.vdb"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_worst_file_wins_across_many(self, clean_file):
        assert main(["lint", clean_file, FIXTURE, "--strict"]) == 1


class TestOutput:
    def test_compiler_style_lines_with_spans(self, capsys):
        main(["lint", FIXTURE])
        out = capsys.readouterr().out
        assert f"{FIXTURE}:7:1: warning[VDB020]" in out
        assert f"{FIXTURE}:10:44: warning[VDB023]" in out
        assert f"{FIXTURE}:13:32: warning[VDB030]" in out
        assert f"{FIXTURE}:16:27: warning[VDB031]" in out
        assert f"{FIXTURE}:19:1: warning[VDB032]" in out

    def test_json_output(self, capsys):
        main(["lint", FIXTURE, "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["exit"] == 0
        entry = payload["files"][FIXTURE]
        assert entry["summary"] == "9 warnings"
        codes = {d["code"] for d in entry["diagnostics"]}
        assert {"VDB020", "VDB023", "VDB030", "VDB031", "VDB032"} <= codes
        spans = [d["span"] for d in entry["diagnostics"]]
        assert {"line": 7, "column": 1} in spans

    def test_json_strict_reports_exit(self, capsys):
        assert main(["lint", FIXTURE, "--json", "--strict"]) == 1
        assert json.loads(capsys.readouterr().out)["exit"] == 1


class TestDatabaseFlag:
    def test_closed_world_flags_unknown_relation(self, tmp_path, snapshot,
                                                 capsys):
        path = tmp_path / "uses_rel.vdb"
        path.write_text("q(X, G) :- nosuchrel(X, G). ?- q(X, G).\n")
        # Open world: just warnings.
        assert main(["lint", str(path)]) == 0
        # Closed world against the Rope snapshot: VDB006 error.
        assert main(["lint", str(path), "--database", snapshot]) == 2
        out = capsys.readouterr().out
        assert "error[VDB006]" in out

    def test_database_relations_count_as_defined(self, tmp_path, snapshot):
        path = tmp_path / "uses_in.vdb"
        path.write_text("q(X, Y, G) :- in(X, Y, G). ?- q(X, Y, G).\n")
        assert main(["lint", str(path), "--database", snapshot,
                     "--strict"]) == 0


class TestShippedExamples:
    def test_examples_lint_clean_under_strict(self):
        assert main(["lint", *EXAMPLES, "--strict"]) == 0


FIXABLE = """\
% a redundant atom the fixer can drop
warm(G) :- interval(G), G.start > 10, G.start > 2.
?- warm(G).
"""


class TestFixFlag:
    @pytest.fixture
    def fixable_file(self, tmp_path):
        path = tmp_path / "fixable.vdb"
        path.write_text(FIXABLE)
        return path

    def test_fix_rewrites_in_place(self, fixable_file, capsys):
        assert main(["lint", str(fixable_file), "--fix"]) == 0
        out = capsys.readouterr().out
        assert "fixed:" in out
        assert "applied 1 fix(es)" in out
        rewritten = fixable_file.read_text()
        assert "G.start > 2" not in rewritten
        assert "G.start > 10" in rewritten
        assert "% a redundant atom" in rewritten  # comments survive

    def test_dry_run_leaves_file_alone(self, fixable_file, capsys):
        assert main(["lint", str(fixable_file), "--fix", "--dry-run"]) == 0
        assert "would apply 1 fix(es)" in capsys.readouterr().out
        assert fixable_file.read_text() == FIXABLE

    def test_fixed_file_lints_clean_under_strict(self, fixable_file):
        main(["lint", str(fixable_file), "--fix"])
        assert main(["lint", str(fixable_file), "--strict"]) == 0

    def test_fix_reports_remaining_diagnostics(self, fixable_file, capsys):
        # Post-fix state is what gets reported: the fixed file has no
        # VDB023 left.
        main(["lint", str(fixable_file), "--fix"])
        out = capsys.readouterr().out
        assert "VDB023" not in out

    def test_fix_json_payload(self, fixable_file, capsys):
        assert main(["lint", str(fixable_file), "--fix", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        entry = payload["files"][str(fixable_file)]
        assert entry["fixed"] is True
        assert entry["fixes"][0]["kind"] == "drop-atom"
        assert entry["fixes"][0]["line"] == 2

    def test_fix_on_clean_file_is_noop(self, clean_file, capsys):
        assert main(["lint", clean_file, "--fix"]) == 0
        out = capsys.readouterr().out
        assert "fixed:" not in out
