"""Unit tests for the cost/cardinality estimator (VDB042/VDB043)."""

from vidb.analysis.cost import (
    CostReport,
    Stats,
    estimate_program,
)
from vidb.query.parser import parse_document, parse_program, parse_query
from vidb.storage.database import VideoDatabase


def stats(**relations):
    entities = relations.pop("entities", 100)
    intervals = relations.pop("intervals", 100)
    return Stats(relations=relations, entities=entities, intervals=intervals)


def codes(report: CostReport):
    return [d.code for d in report.diagnostics()]


class TestStats:
    def test_from_database(self):
        db = VideoDatabase("cost-test")
        db.declare_relation("appears")
        entity = db.new_entity("o1")
        db.new_interval("gi1", entities=[entity.oid], duration=[(0, 10)])
        db.relate("appears", "o1", "gi1")
        snapshot = Stats.from_database(db)
        assert snapshot.entities == 1
        assert snapshot.intervals == 1
        assert snapshot.relations["appears"] == 1

    def test_size_of_class_predicates(self):
        snapshot = stats(appears=7, entities=3, intervals=5)
        assert snapshot.size_of("object") == 3.0
        assert snapshot.size_of("interval") == 5.0
        assert snapshot.size_of("appears") == 7.0
        assert snapshot.size_of("nonexistent") is None


class TestVDB042CartesianBlowup:
    def test_cartesian_pair_blows_up(self):
        program = parse_program(
            "pair(X, Y) :- appears(X, G), appears(Y, H).")
        report = estimate_program(program, stats(appears=200))
        diags = report.diagnostics()
        assert [d.code for d in diags if d.code == "VDB042"]
        blowup = [d for d in diags if d.code == "VDB042"][0]
        assert blowup.severity == "warning"
        assert blowup.span is not None
        assert blowup.rule_index == 0

    def test_joined_body_does_not_blow_up(self):
        program = parse_program(
            "joined(X, G) :- appears(X, G), starts(G, T).")
        report = estimate_program(program, stats(appears=200, starts=200))
        assert "VDB042" not in codes(report)

    def test_small_inputs_stay_quiet(self):
        # 10 x 10 = 100 < BLOWUP_ROWS: too small to be worth a warning.
        program = parse_program(
            "pair(X, Y) :- appears(X, G), appears(Y, H).")
        report = estimate_program(program, stats(appears=10))
        assert "VDB042" not in codes(report)

    def test_query_body_is_estimated_too(self):
        query = parse_query("?- appears(X, G), appears(Y, H).")
        report = estimate_program(parse_program(""), stats(appears=200),
                                  queries=(query,))
        found = [d for d in report.diagnostics() if d.code == "VDB042"]
        assert found and found[0].rule_index is None


class TestVDB043Reordering:
    def test_selective_literal_first_is_suggested(self):
        # big first then a selective filter via the tiny relation:
        # putting `tiny` first bounds X before the big scan.
        program = parse_program(
            "slow(X, Y) :- big(X, Y), tiny(X).")
        report = estimate_program(program, stats(big=100000, tiny=2))
        found = [d for d in report.diagnostics() if d.code == "VDB043"]
        assert found
        assert found[0].severity == "info"
        assert "tiny" in found[0].message

    def test_already_optimal_order_stays_quiet(self):
        program = parse_program(
            "fast(X, Y) :- tiny(X), big(X, Y).")
        report = estimate_program(program, stats(big=100000, tiny=2))
        assert "VDB043" not in codes(report)

    def test_pure_cartesian_has_no_reorder_fix(self):
        # No order fixes a genuine cartesian product: VDB042 without a
        # spurious VDB043.
        program = parse_program(
            "pair(X, Y) :- appears(X, G), appears(Y, H).")
        report = estimate_program(program, stats(appears=200))
        assert "VDB042" in codes(report)
        assert "VDB043" not in codes(report)


class TestDerivedSizing:
    def test_derived_predicate_sizes_propagate(self):
        program = parse_program("""
            seen(X) :- appears(X, G).
            popular(X) :- seen(X), starred(X).
        """)
        report = estimate_program(program, stats(appears=500, starred=10))
        assert report.sizes["seen"] > 0
        assert "popular" in report.sizes

    def test_relevant_filter_skips_unreachable_rules(self):
        program = parse_program("""
            pair(X, Y) :- appears(X, G), appears(Y, H).
            seen(X) :- appears(X, G).
        """)
        report = estimate_program(program, stats(appears=200),
                                  relevant=frozenset({"seen"}))
        labels = [cost.label for cost in report.costs]
        assert not any("pair" in label for label in labels)
        # sizes still cover the whole program
        assert "pair" in report.sizes


class TestProfileRows:
    def test_rows_render_reorder_hint(self):
        program = parse_program("slow(X, Y) :- big(X, Y), tiny(X).")
        report = estimate_program(program, stats(big=100000, tiny=2))
        rows = report.rows()
        assert rows
        hints = [hint for (_, _, _, _, hint) in rows]
        assert any(hint.startswith("reorder:") for hint in hints)


class TestEngineIntegration:
    def build_engine(self):
        from vidb.query.engine import QueryEngine

        db = VideoDatabase("cost-engine")
        db.declare_relation("appears")
        for i in range(40):
            entity = db.new_entity(f"o{i}")
            db.new_interval(f"gi{i}", entities=[entity.oid],
                            duration=[(i, i + 1)])
            db.relate("appears", f"o{i}", f"gi{i}")
        return QueryEngine(db, rules="pair(X, Y) :- appears(X, G), "
                                     "appears(Y, H).")

    def test_report_carries_cost_and_advisories(self):
        engine = self.build_engine()
        report = engine.execute("?- pair(X, Y).")
        assert report.cost is not None
        assert report.cost.costs
        assert any(d.code == "VDB042" for d in report.diagnostics)

    def test_cost_cache_hits_on_warm_path(self):
        engine = self.build_engine()
        engine.execute("?- pair(X, Y).")
        cached = len(engine._cost_cache)
        engine.execute("?- pair(X, Y).")
        assert len(engine._cost_cache) == cached  # same key, no growth

    def test_cost_cache_invalidated_by_epoch(self):
        engine = self.build_engine()
        engine.execute("?- pair(X, Y).")
        before = len(engine._cost_cache)
        engine.db.new_entity("fresh")
        engine.execute("?- pair(X, Y).")
        assert len(engine._cost_cache) == before + 1

    def test_profile_renders_cost_section(self):
        engine = self.build_engine()
        report = engine.execute("?- pair(X, Y).", trace=True)
        profile = report.profile()
        assert "-- cost (estimated) --" in profile
        assert "-- advisories --" in profile
        assert "VDB042" in profile

    def test_as_dict_exposes_cost(self):
        engine = self.build_engine()
        payload = engine.execute("?- pair(X, Y).").as_dict()
        assert "cost" in payload
        assert payload["cost"][0]["peak"] > 0
