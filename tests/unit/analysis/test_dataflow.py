"""Unit tests for the interval-dataflow pass (VDB040/041/044).

Every seeded defect is asserted with its ``VDB0xx`` code, severity and
source span — same acceptance surface as the per-rule passes.
"""

from vidb.analysis import analyze
from vidb.analysis.dataflow import (
    Interval,
    analyze_dataflow,
    query_bounds,
)
from vidb.query.parser import parse_document, parse_program, parse_query


def lint(text, **kwargs):
    program, queries = parse_document(text)
    return analyze(program, queries, **kwargs)


def only(result, code):
    found = [d for d in result.diagnostics if d.code == code]
    assert len(found) == 1, \
        f"expected exactly one {code}, got {[d.code for d in result.diagnostics]}"
    return found[0]


class TestInterval:
    def test_point_and_containment(self):
        point = Interval.point(5)
        assert point.contains(5)
        assert not point.contains(6)
        assert not point.is_empty

    def test_intersect_disjoint_is_empty(self):
        above = Interval.from_op(">", 100)
        below = Interval.from_op("<", 50)
        assert above.intersect(below).is_empty

    def test_intersect_open_endpoints_meet_empty(self):
        # (10, inf) ∩ (-inf, 10) is empty; so is [10, inf) ∩ (-inf, 10).
        assert Interval.from_op(">", 10).intersect(
            Interval.from_op("<", 10)).is_empty
        assert Interval.from_op(">=", 10).intersect(
            Interval.from_op("<", 10)).is_empty
        assert not Interval.from_op(">=", 10).intersect(
            Interval.from_op("<=", 10)).is_empty

    def test_hull_is_join(self):
        low = Interval.from_op("<", 5)
        high = Interval.from_op(">", 100)
        hull = low.hull(high)
        assert hull.contains(0) and hull.contains(1000) and hull.contains(50)

    def test_top_absorbs(self):
        top = Interval.top()
        narrow = Interval.from_op(">", 3)
        assert top.intersect(narrow) == narrow
        assert top.hull(narrow).is_top

    def test_render_ascii(self):
        assert Interval.from_op(">", 100).render() == "(100, +inf)"
        assert Interval.point(5).render() == "[5, 5]"


class TestDataflowFixpoint:
    RULES = """
        hot(X) :- object(X), X.temp > 100.
        cold(X) :- object(X), X.temp < 0.
        warm(X) :- hot(X), X.temp < 50.
        both(X) :- hot(X), X.temp < 200.
    """

    def test_narrowed_summaries(self):
        program = parse_program(self.RULES)
        flow = analyze_dataflow(program)
        assert flow.converged
        names = {s.predicate for s in flow.narrowed()}
        assert "hot" in names and "both" in names

    def test_contradicting_consumer_is_flagged(self):
        program = parse_program(self.RULES)
        flow = analyze_dataflow(program)
        warm = [f for f in flow.flows if f.rule.head.predicate == "warm"]
        assert warm and warm[0].contradicts
        assert not warm[0].dead_local  # dead only via hot's bounds

    def test_empty_predicates(self):
        program = parse_program(self.RULES)
        flow = analyze_dataflow(program)
        assert "warm" in flow.empty_predicates()
        assert "hot" not in flow.empty_predicates()


class TestVDB040:
    def test_provably_empty_predicate(self):
        result = lint("""
            hot(X) :- object(X), X.temp > 100.
            warm(X) :- hot(X), X.temp < 50.
            ?- warm(X).
        """)
        diagnostic = only(result, "VDB040")
        assert diagnostic.severity == "warning"
        assert diagnostic.predicate == "warm"
        assert diagnostic.span is not None
        assert diagnostic.span.line == 3

    def test_negative_compatible_bounds(self):
        result = lint("""
            hot(X) :- object(X), X.temp > 100.
            hotter(X) :- hot(X), X.temp > 200.
            ?- hotter(X).
        """)
        assert "VDB040" not in result.codes()
        assert "VDB041" not in result.codes()


class TestVDB041:
    def test_inter_rule_contradiction_span_points_at_consumer(self):
        result = lint("""
            hot(X) :- object(X), X.temp > 100.
            warm(X) :- hot(X), X.temp < 50.
            ?- warm(X).
        """)
        found = [d for d in result.diagnostics if d.code == "VDB041"]
        rule_level = [d for d in found if d.rule_index == 1]
        assert rule_level, [d.as_dict() for d in found]
        assert rule_level[0].severity == "warning"
        assert rule_level[0].span.line == 3

    def test_query_consuming_empty_predicate(self):
        result = lint("""
            hot(X) :- object(X), X.temp > 100.
            never(X) :- hot(X), X.temp < 50.
            ?- never(X).
        """)
        query_level = [d for d in result.diagnostics
                       if d.code == "VDB041" and d.rule_index is None]
        assert query_level
        assert query_level[0].span.line == 4

    def test_no_contradiction_no_vdb041(self):
        result = lint("""
            hot(X) :- object(X), X.temp > 100.
            sauna(X) :- hot(X), X.temp < 500.
            ?- sauna(X).
        """)
        assert "VDB041" not in result.codes()

    def test_empty_producer_flavor(self):
        # The producer is empty for its own local reasons (VDB020);
        # consumers get the empty-producer flavor of VDB041.
        result = lint("""
            dead(G) :- interval(G), G.start < 3, G.start > 5.
            user(G) :- dead(G).
            ?- user(G).
        """)
        found = [d for d in result.diagnostics
                 if d.code == "VDB041" and d.rule_index == 1]
        assert found
        assert "empty" in found[0].message


class TestVDB044:
    def test_annotate_bounds_emits_infos(self):
        program, queries = parse_document(
            "hot(X) :- object(X), X.temp > 100.\n?- hot(X).\n")
        result = analyze(program, queries, annotate_bounds=True)
        diagnostic = only(result, "VDB044")
        assert diagnostic.severity == "info"
        assert "(100, +inf)" in diagnostic.message

    def test_off_by_default(self):
        result = lint("hot(X) :- object(X), X.temp > 100.\n?- hot(X).\n")
        assert "VDB044" not in result.codes()


class TestQueryBounds:
    def test_bounds_for_query_variables(self):
        program = parse_program("hot(X) :- object(X), X.temp > 100.")
        flow = analyze_dataflow(program)
        query = parse_query("?- hot(X), X.temp < 200.")
        bounds = query_bounds(query, flow)
        key = [k for k in bounds if "temp" in k]
        assert key, bounds
        interval = bounds[key[0]]
        assert interval.contains(150)
        assert not interval.contains(50)
        assert not interval.contains(250)

    def test_unbounded_query_has_no_entries(self):
        program = parse_program("seen(X) :- object(X).")
        flow = analyze_dataflow(program)
        bounds = query_bounds(parse_query("?- seen(X)."), flow)
        assert not any(not v.is_top for v in bounds.values())
