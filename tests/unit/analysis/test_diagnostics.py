"""Unit tests for the diagnostic value types and their registry."""

import pytest

from vidb.analysis.diagnostics import (
    CODES,
    ERROR,
    INFO,
    WARNING,
    AnalysisResult,
    Diagnostic,
    make,
    sort_diagnostics,
)
from vidb.query.ast import SourceSpan


class TestRegistry:
    def test_codes_are_stable_vdb_format(self):
        for code in CODES:
            assert code.startswith("VDB")
            assert len(code) == 6
            assert code[3:].isdigit()

    def test_every_code_has_a_valid_default_severity(self):
        for severity, title in CODES.values():
            assert severity in (ERROR, WARNING, INFO)
            assert title

    def test_error_codes_are_the_00x_block(self):
        for code, (severity, _) in CODES.items():
            if severity == ERROR:
                assert code < "VDB010" or code.startswith("VDB06")

    def test_expected_codes_present(self):
        expected = {"VDB001", "VDB002", "VDB005", "VDB006", "VDB007",
                    "VDB020", "VDB021", "VDB022", "VDB023", "VDB024",
                    "VDB030", "VDB031", "VDB032",
                    "VDB040", "VDB041", "VDB042", "VDB043", "VDB044",
                    "VDB060", "VDB061", "VDB062"}
        assert expected <= set(CODES)


class TestMake:
    def test_defaults_severity_from_registry(self):
        assert make("VDB020", "dead").severity == WARNING
        assert make("VDB005", "cycle").severity == ERROR
        assert make("VDB024", "rhs").severity == INFO

    def test_severity_override(self):
        diagnostic = make("VDB006", "unknown p", severity=WARNING)
        assert diagnostic.severity == WARNING
        assert not diagnostic.is_error

    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError):
            make("VDB999", "nope")

    def test_unknown_severity_rejected(self):
        with pytest.raises(ValueError):
            make("VDB020", "dead", severity="fatal")

    def test_context_fields_carried(self):
        diagnostic = make("VDB030", "singleton", rule_index=3,
                          rule_name="r", predicate="p")
        assert diagnostic.rule_index == 3
        assert diagnostic.rule_name == "r"
        assert diagnostic.predicate == "p"


class TestRender:
    def test_with_path_and_span(self):
        diagnostic = make("VDB020", "dead rule",
                          span=SourceSpan(7, 3))
        assert diagnostic.render("rules.vdb") == \
            "rules.vdb:7:3: warning[VDB020] dead rule"

    def test_without_span(self):
        diagnostic = make("VDB005", "not stratifiable")
        assert diagnostic.render("rules.vdb") == \
            "rules.vdb: error[VDB005] not stratifiable"

    def test_without_path(self):
        diagnostic = make("VDB030", "singleton", span=SourceSpan(2, 9))
        assert str(diagnostic) == ":2:9: warning[VDB030] singleton"

    def test_as_dict_round_trips_span(self):
        diagnostic = make("VDB023", "redundant", span=SourceSpan(4, 11),
                          rule_index=1)
        out = diagnostic.as_dict()
        assert out["code"] == "VDB023"
        assert out["span"] == {"line": 4, "column": 11}
        assert out["rule_index"] == 1
        assert "predicate" not in out


class TestOrdering:
    def test_source_order_then_severity(self):
        late = make("VDB030", "later", span=SourceSpan(9, 1))
        early_warn = make("VDB020", "early warning", span=SourceSpan(2, 1))
        early_err = make("VDB002", "early error", span=SourceSpan(2, 1))
        spanless = make("VDB005", "program-level")
        ordered = sort_diagnostics([late, early_warn, spanless, early_err])
        assert [d.message for d in ordered] == \
            ["early error", "early warning", "later", "program-level"]


class TestAnalysisResult:
    def _result(self):
        return AnalysisResult((
            make("VDB002", "unsafe", span=SourceSpan(1, 1)),
            make("VDB020", "dead", span=SourceSpan(2, 1)),
            make("VDB024", "rhs unsat", span=SourceSpan(3, 1)),
        ))

    def test_partitions_by_severity(self):
        result = self._result()
        assert [d.code for d in result.errors] == ["VDB002"]
        assert [d.code for d in result.warnings] == ["VDB020"]
        assert [d.code for d in result.infos] == ["VDB024"]
        assert result.has_errors

    def test_codes_set(self):
        assert self._result().codes() == {"VDB002", "VDB020", "VDB024"}

    def test_extend_deduplicates_and_resorts(self):
        result = self._result()
        extra = make("VDB030", "singleton", span=SourceSpan(1, 5))
        merged = result.extend([extra, result.diagnostics[0]])
        assert len(merged.diagnostics) == 4
        assert merged.diagnostics[1].code == "VDB030"  # sorted into place

    def test_as_dicts_and_render(self):
        result = self._result()
        assert [d["code"] for d in result.as_dicts()] == \
            ["VDB002", "VDB020", "VDB024"]
        lines = result.render("f.vdb")
        assert lines[0].startswith("f.vdb:1:1: error[VDB002]")

    def test_empty_result_is_clean(self):
        result = AnalysisResult()
        assert not result.has_errors
        assert result.diagnostics == ()
