"""Integration tests: the query engine runs the analyzer at prepare
time — warnings land on the report, errors raise before the fixpoint."""

import pytest

from vidb.errors import SafetyError, UnknownPredicateError
from vidb.model.oid import Oid
from vidb.query.engine import QueryEngine
from vidb.query.execution import ExecutionOptions
from vidb.query.parser import parse_program
from vidb.storage.database import VideoDatabase


@pytest.fixture
def db():
    database = VideoDatabase("analysis-integration")
    database.new_entity("o1", name="David")
    database.new_entity("o2", name="Philip")
    database.new_interval("g1", entities=["o1", "o2"], duration=[(0, 10)])
    database.new_interval("g2", entities=["o2"], duration=[(20, 30)])
    return database


class TestWarningsOnReport:
    def test_cartesian_query_warns_with_span(self, db):
        engine = QueryEngine(db)
        report = engine.execute("?- object(A), interval(B).")
        codes = [d.code for d in report.diagnostics]
        assert "VDB031" in codes
        warning = next(d for d in report.diagnostics if d.code == "VDB031")
        assert warning.span is not None
        assert warning.span.line == 1
        # The query still evaluates: 2 objects x 2 intervals.
        assert len(report.answers) == 4

    def test_unreachable_rule_warns(self, db):
        engine = QueryEngine(db)
        engine.add_rules("""
            used(X) :- object(X).
            orphan(X) :- object(X).
        """)
        report = engine.execute("?- used(X).")
        assert "VDB032" in [d.code for d in report.diagnostics]

    def test_clean_query_has_no_diagnostics(self, db):
        engine = QueryEngine(db)
        report = engine.execute(
            "?- interval(G), object(o1), o1 in G.entities.")
        assert report.diagnostics == ()

    def test_diagnostics_serialized_in_report_dict(self, db):
        engine = QueryEngine(db)
        report = engine.execute("?- object(A), interval(B).")
        out = report.as_dict()
        assert any(d["code"] == "VDB031" for d in out["diagnostics"])

    def test_clean_report_dict_omits_diagnostics(self, db):
        engine = QueryEngine(db)
        report = engine.execute("?- object(O).")
        assert "diagnostics" not in report.as_dict()

    def test_dead_rule_still_warns_but_query_runs(self, db):
        engine = QueryEngine(db)
        engine.add_rules(
            "dead(G) :- interval(G), G.start < 3, G.start > 5.")
        report = engine.execute("?- dead(G).")
        assert "VDB020" in [d.code for d in report.diagnostics]
        assert len(report.answers) == 0


class TestErrorsShortCircuit:
    def test_unknown_predicate_raises_eagerly(self, db):
        engine = QueryEngine(db)
        with pytest.raises(UnknownPredicateError):
            engine.execute("?- nosuch(X).")

    def test_analysis_stage_recorded_before_evaluate(self, db):
        engine = QueryEngine(db)
        report = engine.execute("?- object(O).")
        stages = list(report.stats.stages)
        assert "analyze" in stages
        assert stages.index("analyze") < stages.index("evaluate")

    def test_unreachable_bad_rule_does_not_block_pruned_query(self, db):
        # With pruning on, an error inside a rule the query never touches
        # must not stop the query (the pruned evaluation skips the rule).
        engine = QueryEngine(db, prune_rules=True)
        engine.program = engine.program.extend(parse_program(
            "good(X) :- object(X).\n"
            "bad(X) :- object(X), nosuch(X)."))
        report = engine.execute("?- good(X).")
        assert len(report.answers) == 2

    def test_reachable_bad_rule_blocks(self, db):
        engine = QueryEngine(db, prune_rules=True)
        engine.program = engine.program.extend(parse_program("bad(X) :- object(X), nosuch(X)."))
        with pytest.raises(UnknownPredicateError):
            engine.execute("?- bad(X).")

    def test_unpruned_engine_blocks_on_any_bad_rule(self, db):
        engine = QueryEngine(db, prune_rules=False)
        engine.program = engine.program.extend(parse_program(
            "good(X) :- object(X).\n"
            "bad(X) :- object(X), nosuch(X)."))
        with pytest.raises(UnknownPredicateError):
            engine.execute("?- good(X).")

    def test_non_predicate_errors_raise_safety_error(self, db):
        engine = QueryEngine(db, prune_rules=False)
        # Bypass add_rules' own eager check to reach the analyzer's.
        engine.program = engine.program.extend(
            parse_program("p(X) :- object(X).\np(X, Y) :- rel(X, Y)."))
        db.relate("rel", Oid.entity("o1"), Oid.entity("o2"))
        with pytest.raises(SafetyError):
            engine.execute("?- p(X).")


class TestOptingOut:
    def test_options_analyze_false_skips(self, db):
        engine = QueryEngine(db)
        report = engine.execute("?- object(A), interval(B).",
                                ExecutionOptions(analyze=False))
        assert report.diagnostics == ()

    def test_engine_analyze_false_skips(self, db):
        engine = QueryEngine(db, analyze=False)
        report = engine.execute("?- object(A), interval(B).")
        assert report.diagnostics == ()

    def test_options_analyze_true_overrides_engine_default(self, db):
        engine = QueryEngine(db, analyze=False)
        report = engine.execute("?- object(A), interval(B).",
                                ExecutionOptions(analyze=True))
        assert "VDB031" in [d.code for d in report.diagnostics]


class TestWarmPath:
    def test_repeat_execution_hits_analysis_cache(self, db):
        engine = QueryEngine(db)
        engine.execute("?- object(O).")
        engine.execute("?- object(O).")
        assert engine._analyzer.hits >= 1
        assert engine._analyzer.misses == 1

    def test_database_mutation_invalidates_by_key(self, db):
        engine = QueryEngine(db)
        engine.execute("?- object(O).")
        db.relate("seen", Oid.entity("o1"))
        engine.execute("?- object(O).")
        # relation_names() changed, so the second run is a fresh key —
        # never a stale hit.
        assert engine._analyzer.misses == 2
