"""Unit + property tests for the ``vidb lint --fix`` autofixer.

Invariants (checked both on goldens and property-generated programs):
the fixed text parses, re-lints strictly cleaner (or is unchanged), and
is kernel-equivalent to the input.
"""

from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from vidb.analysis import fix_text, verify_equivalent
from vidb.analysis.lint import lint_text
from vidb.query.parser import parse_document

EXAMPLES = sorted(
    (Path(__file__).resolve().parents[3] / "examples" / "rules").glob("*.vdb"))


def counts(text, **kwargs):
    from collections import Counter

    return Counter(d.code for d in lint_text(text, **kwargs).diagnostics)


class TestDropDeadRule:
    TEXT = (
        "% the dead one\n"
        "dead(G) :- interval(G), G.start < 3, G.start > 5.\n"
        "live(G) :- interval(G), G.start > 0.\n"
        "?- live(G).\n"
    )

    def test_dead_rule_dropped(self):
        outcome = fix_text(self.TEXT)
        assert outcome.changed
        assert "dead(G)" not in outcome.text
        assert "live(G)" in outcome.text
        assert any(fix.kind == "drop-rule" for fix in outcome.fixes)

    def test_fix_reports_line(self):
        outcome = fix_text(self.TEXT)
        drop = [fix for fix in outcome.fixes if fix.kind == "drop-rule"][0]
        assert drop.line == 2

    def test_result_is_post_fix_lint(self):
        outcome = fix_text(self.TEXT)
        assert outcome.result is not None
        assert "VDB020" not in {d.code for d in outcome.result.diagnostics}

    def test_equivalence_verified(self):
        outcome = fix_text(self.TEXT)
        assert verify_equivalent(self.TEXT, outcome.text)


class TestDropRedundantAtom:
    TEXT = (
        "warm(G) :- interval(G), G.start > 10, G.start > 2.\n"
        "?- warm(G).\n"
    )

    def test_redundant_atom_removed(self):
        outcome = fix_text(self.TEXT)
        assert outcome.changed
        assert "G.start > 2" not in outcome.text
        assert "G.start > 10" in outcome.text
        assert any(fix.kind == "drop-atom" for fix in outcome.fixes)

    def test_strictly_cleaner(self):
        before = counts(self.TEXT)
        outcome = fix_text(self.TEXT)
        after = counts(outcome.text)
        assert sum(after.values()) < sum(before.values())
        assert all(after[code] <= before[code] for code in before)


class TestConservatism:
    def test_clean_document_is_untouched(self):
        text = "live(G) :- interval(G), G.start > 0.\n?- live(G).\n"
        outcome = fix_text(text)
        assert not outcome.changed
        assert outcome.text == text

    def test_unparseable_document_is_untouched(self):
        text = "this is not a rule document"
        outcome = fix_text(text)
        assert not outcome.changed
        assert outcome.text == text

    def test_queried_dead_rule_kept_when_drop_would_mint_warning(self):
        # Dropping the only defining rule of a queried predicate would
        # mint an undefined-predicate finding: not strictly cleaner, so
        # the fixer must leave it alone.
        text = ("dead(G) :- interval(G), G.start < 3, G.start > 5.\n"
                "?- dead(G).\n")
        outcome = fix_text(text)
        assert "dead(G)" in outcome.text

    def test_comments_and_layout_survive(self):
        text = (
            "% keep me\n"
            "warm(G) :- interval(G), G.start > 10, G.start > 2.\n"
            "\n"
            "% me too\n"
            "?- warm(G).\n"
        )
        outcome = fix_text(text)
        assert outcome.changed
        assert "% keep me" in outcome.text
        assert "% me too" in outcome.text


class TestExampleCorpus:
    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
    def test_examples_round_trip(self, path):
        original = path.read_text(encoding="utf-8")
        outcome = fix_text(original)
        # The shipped examples lint clean, so --fix must not touch them.
        assert outcome.text == original
        parse_document(outcome.text)  # and the output always parses
        assert verify_equivalent(original, outcome.text)


# -- property test -----------------------------------------------------------

_OPS = ("<", "<=", ">", ">=")


@st.composite
def rule_documents(draw):
    """Small rule documents with seeded contradictions/redundancies."""
    lines = []
    n_rules = draw(st.integers(min_value=1, max_value=4))
    for index in range(n_rules):
        atoms = ["interval(G)"]
        for _ in range(draw(st.integers(min_value=0, max_value=3))):
            op = draw(st.sampled_from(_OPS))
            value = draw(st.integers(min_value=0, max_value=20))
            atoms.append(f"G.start {op} {value}")
        lines.append(f"p{index}(G) :- {', '.join(atoms)}.")
    queried = draw(st.integers(min_value=0, max_value=n_rules - 1))
    lines.append(f"?- p{queried}(G).")
    return "\n".join(lines) + "\n"


class TestFixProperties:
    @settings(max_examples=40, deadline=None)
    @given(rule_documents())
    def test_fix_invariants(self, text):
        outcome = fix_text(text)
        # 1. the output always parses
        parse_document(outcome.text)
        # 2. re-lint is never worse, strictly cleaner when changed
        before = counts(text)
        after = counts(outcome.text)
        assert all(after[code] <= before[code] for code in after)
        if outcome.changed:
            assert sum(after.values()) < sum(before.values())
        else:
            assert outcome.text == text
        # 3. kernel equivalence
        assert verify_equivalent(text, outcome.text)
