"""Unit tests for document-level linting: lint_text / lint_file,
the summary line, and the exit-code contract."""

from vidb.analysis import exit_code, lint_file, lint_text, summarize
from vidb.analysis.diagnostics import AnalysisResult, make
from vidb.query.ast import SourceSpan

FIXTURE = "tests/fixtures/lint_bad.vdb"


class TestLintText:
    def test_clean_document(self):
        result = lint_text("""
            appears(O, G) :- interval(G), object(O), O in G.entities.
            ?- appears(O, G).
        """)
        assert result.diagnostics == ()
        assert summarize(result) == "clean"

    def test_parse_failure_becomes_vdb001_with_span(self):
        result = lint_text("p(X) :- object(X)")  # missing final period
        assert [d.code for d in result.diagnostics] == ["VDB001"]
        diagnostic = result.diagnostics[0]
        assert diagnostic.is_error
        assert diagnostic.span is not None
        assert diagnostic.span.line == 1

    def test_invalid_construct_becomes_vdb001(self):
        # `++` in a body is rejected by the AST layer, not the tokenizer.
        result = lint_text("p(G) :- q(G1 ++ G2).")
        assert "VDB001" in result.codes()
        assert result.has_errors

    def test_open_world_by_default(self):
        result = lint_text("q(X, G) :- in(X, G). ?- q(X, G).")
        findings = [d for d in result.diagnostics if d.code == "VDB006"]
        assert findings and all(d.severity == "warning" for d in findings)

    def test_closed_world_with_edb(self):
        result = lint_text("q(X, G) :- in(X, G). ?- q(X, G).",
                           edb={"in"}, closed_world=True)
        assert result.diagnostics == ()


class TestSeededFixture:
    """The acceptance contract: every planted defect is reported with
    its code AND its source span."""

    def test_expected_codes_and_spans(self):
        result = lint_file(FIXTURE)
        located = {(d.code, d.span.line, d.span.column)
                   for d in result.diagnostics}
        assert ("VDB020", 7, 1) in located        # dead rule
        assert ("VDB023", 10, 44) in located      # redundant constraint
        assert ("VDB030", 13, 32) in located      # singleton Other
        assert ("VDB031", 16, 27) in located      # cartesian product
        assert ("VDB032", 19, 1) in located       # unreachable orphan

    def test_fixture_has_warnings_but_no_errors(self):
        result = lint_file(FIXTURE)
        assert not result.has_errors
        assert len(result.warnings) == 9
        assert summarize(result) == "9 warnings"

    def test_fixture_renders_compiler_style_lines(self):
        result = lint_file(FIXTURE)
        lines = result.render(FIXTURE)
        assert any(line.startswith(f"{FIXTURE}:7:1: warning[VDB020]")
                   for line in lines)


class TestSummaries:
    def test_counts_and_plurals(self):
        result = AnalysisResult((
            make("VDB002", "a", span=SourceSpan(1, 1)),
            make("VDB005", "b", span=SourceSpan(2, 1)),
            make("VDB030", "c", span=SourceSpan(3, 1)),
            make("VDB024", "d", span=SourceSpan(4, 1)),
        ))
        assert summarize(result) == "2 errors, 1 warning, 1 info"


class TestExitCodes:
    def _with(self, code):
        return AnalysisResult((make(code, "x"),))

    def test_clean_is_zero(self):
        assert exit_code(AnalysisResult()) == 0
        assert exit_code(AnalysisResult(), strict=True) == 0

    def test_warnings_are_zero_unless_strict(self):
        result = self._with("VDB030")
        assert exit_code(result) == 0
        assert exit_code(result, strict=True) == 1

    def test_infos_never_fail(self):
        result = self._with("VDB024")
        assert exit_code(result, strict=True) == 0

    def test_errors_are_two_regardless(self):
        result = self._with("VDB005")
        assert exit_code(result) == 2
        assert exit_code(result, strict=True) == 2
