"""Unit tests for the service `lint` surface: executor method, wire op,
and client helper."""

import pytest

from vidb.service.executor import ServiceExecutor
from vidb.service.server import ServiceClient, VideoServer
from vidb.workloads.paper import rope_database


@pytest.fixture
def service():
    with ServiceExecutor(rope_database(), max_workers=2) as executor:
        yield executor


@pytest.fixture
def client(service):
    with VideoServer(service, port=0) as server:
        server.start_background()
        host, port = server.address
        with ServiceClient(host, port) as c:
            yield c


class TestExecutorLint:
    def test_clean_text_against_live_schema(self, service):
        result = service.lint(
            "q(X, Y, G) :- in(X, Y, G). ?- q(X, Y, G).")
        assert result.diagnostics == ()
        assert not result.has_errors

    def test_closed_world_uses_database_relations(self, service):
        result = service.lint("q(X) :- nosuchrel(X). ?- q(X).")
        errors = [d for d in result.errors if d.code == "VDB006"]
        assert errors and errors[0].span is not None

    def test_engine_rules_count_as_defined(self, service):
        # Rules already loaded into the serving engine are `extra`
        # context for the lint, so a fragment may reference them.
        service.add_rules(
            "appears(O, G) :- interval(G), object(O), O in G.entities.")
        result = service.lint("q(O) :- appears(O, G). ?- q(O).")
        assert "VDB006" not in result.codes()

    def test_dead_rule_flagged_with_span(self, service):
        result = service.lint(
            "dead(G) :- interval(G), G.start < 1, G.start > 2.\n"
            "?- dead(G).")
        finding = next(d for d in result.diagnostics if d.code == "VDB020")
        assert (finding.span.line, finding.span.column) == (1, 1)


class TestLintOverTheWire:
    def test_clean_document(self, client):
        reply = client.lint(
            "q(X, G) :- interval(G), object(X), X in G.entities. "
            "?- q(X, G).")
        assert reply["ok_to_load"] is True
        assert reply["summary"] == "clean"
        assert reply["diagnostics"] == []

    def test_bad_document_reports_codes_and_spans(self, client):
        reply = client.lint(
            "dead(G) :- interval(G), G.start < 1, G.start > 2.\n"
            "bad(X) :- nosuchrel(X).\n"
            "?- dead(G).")
        assert reply["ok_to_load"] is False
        codes = {d["code"] for d in reply["diagnostics"]}
        assert {"VDB020", "VDB006"} <= codes
        dead = next(d for d in reply["diagnostics"]
                    if d["code"] == "VDB020")
        assert dead["span"] == {"line": 1, "column": 1}
        assert "error" in reply["summary"]

    def test_lint_does_not_mutate_or_block(self, client):
        before = client.info()["epoch"]
        client.lint("p(X) :- object(X). ?- p(X).")
        after = client.info()["epoch"]
        assert after == before
        # The service still answers queries normally afterwards.
        reply = client.query("?- object(o1).")
        assert reply["count"] == 1

    def test_missing_text_field_is_protocol_error(self, client):
        from vidb.errors import ProtocolError
        with pytest.raises(ProtocolError):
            client.request("lint")
