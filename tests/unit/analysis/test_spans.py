"""Source spans: threaded from the parser onto AST nodes, and kept
alive through AST transforms (prepared-query parameter substitution)."""

from vidb.query.ast import (
    ComparisonAtom,
    Literal,
    MembershipAtom,
    NegatedLiteral,
    SourceSpan,
    Variable,
    spanned,
)
from vidb.query.parser import parse_program, parse_query, parse_rule
from vidb.service.session import PreparedQuery


class TestParserSpans:
    def test_rule_and_head_spans(self):
        rule = parse_rule("p(X) :- object(X), X.age > 3.")
        assert rule.span == SourceSpan(1, 1)
        assert rule.head.span == SourceSpan(1, 1)

    def test_body_item_spans_are_column_accurate(self):
        rule = parse_rule("p(X) :- object(X), X.age > 3.")
        literal, comparison = rule.body
        assert literal.span == SourceSpan(1, 9)
        assert comparison.span == SourceSpan(1, 20)

    def test_multiline_program_spans(self):
        program = parse_program(
            "a(X) :- object(X).\n\nb(Y) :- interval(Y).")
        assert program.rules[0].span.line == 1
        assert program.rules[1].span.line == 3

    def test_variable_occurrence_spans_differ(self):
        rule = parse_rule("p(X) :- rel(X, X).")
        occurrences = [arg for arg in rule.body[0].args
                       if isinstance(arg, Variable)]
        spans = [v.span for v in occurrences]
        assert spans[0] != spans[1]
        assert all(span is not None for span in spans)

    def test_query_spans(self):
        query = parse_query("?- interval(G), o1 in G.entities.")
        assert query.span is not None
        assert query.body[0].span == SourceSpan(1, 4)
        assert query.body[1].span == SourceSpan(1, 17)

    def test_spans_are_ignored_by_equality_and_hash(self):
        plain = Literal("p", [Variable("X")])
        located = spanned(Literal("p", [Variable("X")]), SourceSpan(3, 7))
        assert plain == located
        assert hash(plain) == hash(located)


class TestSpansSurviveSubstitution:
    def _prepared(self, text, params):
        return PreparedQuery("q", text, params=params)

    def test_literal_span_survives_bind(self):
        prepared = self._prepared(
            "?- interval(G), object(O), O in G.entities.", ["O"])
        bound = prepared.bind(O="o1")
        original = prepared.query
        for before, after in zip(original.body, bound.body):
            assert after.span == before.span
        assert bound.span == original.span

    def test_negated_literal_span_survives(self):
        prepared = self._prepared(
            "?- object(O), not vip(O).", ["O"])
        bound = prepared.bind(O="o1")
        negated = bound.body[1]
        assert isinstance(negated, NegatedLiteral)
        assert negated.span == prepared.query.body[1].span
        assert negated.span is not None

    def test_comparison_and_membership_spans_survive(self):
        prepared = self._prepared(
            "?- interval(G), object(O), O in G.entities, G.start > 2.",
            ["O"])
        bound = prepared.bind(O="o7")
        membership = bound.body[2]
        comparison = bound.body[3]
        assert isinstance(membership, MembershipAtom)
        assert isinstance(comparison, ComparisonAtom)
        assert membership.span == prepared.query.body[2].span
        assert comparison.span == prepared.query.body[3].span
        # The attribute paths inside keep their own spans too.
        assert membership.collection.span == \
            prepared.query.body[2].collection.span

    def test_unbound_prepare_returns_original_ast(self):
        prepared = self._prepared("?- object(O).", [])
        assert prepared.bind() is prepared.query

    def test_analyzer_locates_findings_in_bound_query(self):
        # End to end: substitution must not strip the positions the
        # analyzer reports against.
        from vidb.analysis import analyze
        from vidb.query.ast import Program

        prepared = self._prepared(
            "?- object(A), interval(B), A in B.entities, object(C).",
            ["C"])
        bound = prepared.bind(C="o1")
        result = analyze(Program(), bound, closed_world=True)
        assert [d.code for d in result.diagnostics] == []
        # Unbound, object(C) is a disconnected component: VDB031, located
        # at the second group's literal.
        unbound = analyze(Program(), prepared.query, closed_world=True)
        finding = next(d for d in unbound.diagnostics
                       if d.code == "VDB031")
        assert finding.span is not None
        assert finding.span.column == len(
            "?- object(A), interval(B), A in B.entities, ") + 1


class TestSpannedHelper:
    def test_spanned_sets_and_returns_node(self):
        node = Literal("p", [Variable("X")])
        out = spanned(node, SourceSpan(4, 2))
        assert out is node
        assert node.span == SourceSpan(4, 2)

    def test_spanned_with_none_is_noop(self):
        node = Literal("p", [Variable("X")])
        assert spanned(node, None).span is None
