"""Unit tests for the streaming-safety pass (VDB060/061/062) and the
subscribe-time rejection contract."""

import pytest

from vidb.analysis import analyze
from vidb.analysis.checks import MAINT_INCREMENTAL, MAINT_REJECTED
from vidb.errors import StandingQueryError
from vidb.query.engine import QueryEngine
from vidb.query.parser import parse_document
from vidb.storage.database import VideoDatabase


def lint_streaming(text, **kwargs):
    program, queries = parse_document(text)
    kwargs.setdefault("closed_world", False)
    return analyze(program, queries, streaming=True, **kwargs)


def build_db():
    db = VideoDatabase("streaming-safety")
    db.declare_relation("appears")
    entity = db.new_entity("o1")
    db.new_interval("gi1", entities=[entity.oid], duration=[(0, 10)])
    return db


class TestVDB060NonMonotone:
    def test_negated_query_is_error(self):
        result = lint_streaming(
            "?- interval(G), object(O), not appears(O, G).")
        found = [d for d in result.diagnostics if d.code == "VDB060"]
        assert found
        assert found[0].severity == "error"
        assert found[0].span is not None

    def test_negation_in_relevant_rule_is_error(self):
        result = lint_streaming("""
            absent(O, G) :- interval(G), object(O), not appears(O, G).
            ?- absent(O, G).
        """)
        found = [d for d in result.diagnostics if d.code == "VDB060"]
        rule_level = [d for d in found if d.rule_index is not None]
        assert rule_level
        assert rule_level[0].span.line == 2

    def test_negation_in_irrelevant_rule_does_not_block(self):
        # The negated rule is unreachable from the standing query; the
        # classification stays incremental.
        result = lint_streaming("""
            absent(O, G) :- interval(G), object(O), not appears(O, G).
            seen(O) :- appears(O, G).
            ?- seen(O).
        """)
        assert "VDB060" not in result.codes()

    def test_monotone_query_is_clean(self):
        result = lint_streaming("?- appears(O, G).")
        assert "VDB060" not in result.codes()


class TestVDB061UnboundedGrowth:
    def test_constructive_rule_warns(self):
        result = lint_streaming("""
            merged(G ++ H) :- appears(O, G), appears(O, H).
            ?- merged(K).
        """)
        found = [d for d in result.diagnostics if d.code == "VDB061"]
        assert found
        assert found[0].severity == "warning"

    def test_plain_rules_stay_quiet(self):
        result = lint_streaming("""
            seen(O) :- appears(O, G).
            ?- seen(O).
        """)
        assert "VDB061" not in result.codes()


class TestVDB062DeletionSensitivity:
    def test_multi_literal_join_is_info(self):
        result = lint_streaming("?- appears(O, G), appears(O, H).")
        found = [d for d in result.diagnostics if d.code == "VDB062"]
        assert found
        assert found[0].severity == "info"

    def test_single_literal_query_stays_quiet(self):
        result = lint_streaming("?- appears(O, G).")
        assert "VDB062" not in result.codes()


class TestClassification:
    def test_incremental_classification(self):
        result = lint_streaming("?- appears(O, G).")
        assert result.streaming
        assert result.streaming[0]["maintenance"] == MAINT_INCREMENTAL

    def test_rejected_classification(self):
        result = lint_streaming(
            "?- interval(G), object(O), not appears(O, G).")
        assert result.streaming[0]["maintenance"] == MAINT_REJECTED

    def test_deletion_sensitivity_flag(self):
        result = lint_streaming("?- appears(O, G), appears(O, H).")
        assert result.streaming[0]["deletion_sensitive"] is True


class TestAnalyzeStanding:
    def test_clean_standing_query_returns_analysis(self):
        engine = QueryEngine(build_db())
        analysis = engine.analyze_standing("?- appears(O, G).")
        assert analysis.streaming
        assert analysis.streaming[0]["maintenance"] == MAINT_INCREMENTAL

    def test_non_monotone_standing_query_raises(self):
        engine = QueryEngine(build_db())
        with pytest.raises(StandingQueryError) as exc:
            engine.analyze_standing(
                "?- interval(G), object(O), not appears(O, G).")
        assert exc.value.diagnostics  # located diagnostics ride along
        assert any(d.code == "VDB060" for d in exc.value.diagnostics)

    def test_subscription_rejected_before_view_build(self):
        from vidb.stream.hub import StreamHub
        from vidb.stream.standing import SubscriptionManager

        db = build_db()
        engine = QueryEngine(db)
        hub = StreamHub(db)
        manager = SubscriptionManager(hub)
        with pytest.raises(StandingQueryError):
            manager.subscribe(
                "?- interval(G), object(O), not appears(O, G).", engine)
        assert manager.count() == 0

    def test_accepted_subscription_describes_classification(self):
        from vidb.stream.hub import StreamHub
        from vidb.stream.standing import SubscriptionManager

        db = build_db()
        engine = QueryEngine(db)
        hub = StreamHub(db)
        manager = SubscriptionManager(hub)
        sub = manager.subscribe("?- appears(O, G).", engine)
        entry = sub.describe()
        assert entry["maintenance"] == MAINT_INCREMENTAL
        assert entry["deletion_sensitive"] is False
