"""Unit tests for the table renderer."""

from vidb.bench.tables import format_table


class TestFormatTable:
    def test_basic_rendering(self):
        rows = [{"name": "a", "count": 1}, {"name": "bb", "count": 20}]
        text = format_table(rows)
        lines = text.splitlines()
        assert lines[0].split() == ["name", "count"]
        assert "bb" in lines[3]

    def test_title(self):
        text = format_table([{"x": 1}], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_numbers_right_aligned(self):
        rows = [{"n": 1}, {"n": 100}]
        lines = format_table(rows).splitlines()
        assert lines[2].endswith("  1") or lines[2].strip() == "1"
        assert lines[3].strip() == "100"

    def test_explicit_column_order(self):
        rows = [{"a": 1, "b": 2}]
        text = format_table(rows, columns=["b", "a"])
        header = text.splitlines()[0].split()
        assert header == ["b", "a"]

    def test_missing_cells_blank(self):
        rows = [{"a": 1}, {"b": 2}]
        text = format_table(rows)
        assert "a" in text and "b" in text

    def test_float_formatting(self):
        text = format_table([{"v": 0.123456789}])
        assert "0.1235" in text
