"""Unit tests for timing and scaling-law helpers."""

import pytest

from vidb.bench.timing import loglog_slope, scaling_run, time_callable


class TestTimeCallable:
    def test_returns_positive_duration(self):
        assert time_callable(lambda: sum(range(100)), repeat=2) > 0

    def test_repeat_takes_best(self):
        calls = []

        def fn():
            calls.append(1)

        time_callable(fn, repeat=4)
        assert len(calls) == 4


class TestLogLogSlope:
    def test_linear_data_slope_one(self):
        xs = [10, 100, 1000]
        ys = [2.0 * x for x in xs]
        assert abs(loglog_slope(xs, ys) - 1.0) < 1e-9

    def test_quadratic_data_slope_two(self):
        xs = [10, 100, 1000]
        ys = [0.5 * x ** 2 for x in xs]
        assert abs(loglog_slope(xs, ys) - 2.0) < 1e-9

    def test_constant_data_slope_zero(self):
        assert abs(loglog_slope([1, 10, 100], [5, 5, 5])) < 1e-9

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            loglog_slope([1], [1])

    def test_equal_xs_rejected(self):
        with pytest.raises(ValueError):
            loglog_slope([5, 5], [1, 2])


class TestScalingRun:
    def test_input_construction_not_timed(self):
        built = []

        def make_input(n):
            built.append(n)
            return n

        results = scaling_run([1, 2], make_input, lambda n: n * 2, repeat=1)
        assert built == [1, 2]
        assert [size for size, __ in results] == [1, 2]
        assert all(seconds >= 0 for __, seconds in results)
