"""Unit tests for failover promotion: election, offline path, fencing."""

import pytest

from vidb.cluster import ClusterRouter, Promoter, ReplicaServer, \
    promote_data_dir
from vidb.durability import DurableDatabase, Replica, read_fence
from vidb.errors import ClusterError, FencedError
from vidb.service import ServiceClient, ServiceExecutor, VideoServer
from vidb.storage.database import VideoDatabase


def seed_db():
    db = VideoDatabase("seed")
    db.new_entity("a", name="Ana")
    db.new_interval("g1", entities=["a"], duration=[(0, 10)])
    return db


@pytest.fixture
def primary(tmp_path):
    durable = DurableDatabase(tmp_path / "data", seed=seed_db(),
                              fsync="never")
    service = ServiceExecutor(durable)
    server = VideoServer(service).start_background()
    yield server
    server.shutdown()
    service.close()


def make_replica(primary, tmp_path, name):
    data_dir = primary.service.durability.data_dir
    server = ReplicaServer.from_data_dir(
        data_dir, promote_data_dir=tmp_path / f"promoted-{name}")
    server.server.start_background()
    return server


class TestElection:
    def test_picks_the_highest_applied_lsn(self, primary, tmp_path):
        behind = make_replica(primary, tmp_path, "behind")
        ahead = make_replica(primary, tmp_path, "ahead")
        try:
            primary.service.db.new_entity("b")
            ahead.poll_once()  # only this one catches up
            promoter = Promoter([behind.address, ahead.address])
            winner, candidates = promoter.pick()
            assert winner == ahead.address
            by_address = {c["address"]: c for c in candidates}
            ahost, aport = ahead.address
            bhost, bport = behind.address
            assert (by_address[f"{ahost}:{aport}"]["applied_lsn"]
                    > by_address[f"{bhost}:{bport}"]["applied_lsn"])
        finally:
            behind.close()
            ahead.close()

    def test_no_reachable_candidate_raises(self, primary, tmp_path):
        replica = make_replica(primary, tmp_path, "r1")
        address = replica.address
        replica.close()
        promoter = Promoter([address], connect_timeout=0.2)
        with pytest.raises(ClusterError):
            promoter.pick()

    def test_no_candidates_at_all_rejected(self):
        with pytest.raises(ClusterError):
            Promoter([])


class TestOnlinePromotion:
    def test_promote_and_repoint(self, primary, tmp_path):
        replica = make_replica(primary, tmp_path, "r1")
        router = ClusterRouter(primary.address,
                               [replica.address],
                               probe_interval_s=0.05).start()
        try:
            host, port = router.address
            with ServiceClient(host, port) as client:
                client.insert_entity("b")
            replica.poll_once()
            promoter = Promoter([replica.address])
            result = promoter.promote(router=router.address)
            assert result.winner == replica.address
            assert result.details["promoted"] is True
            rhost, rport = replica.address
            assert router.primary == (rhost, rport)
            # Writes through the router now land on the promoted node.
            with ServiceClient(host, port) as client:
                client.insert_entity("c")
            assert replica.service.db.entity("c") is not None
        finally:
            router.close()
            replica.close()


class TestOfflinePromotion:
    def test_recovers_fences_and_reroots(self, tmp_path):
        old_dir = tmp_path / "old"
        with DurableDatabase(old_dir, seed=seed_db(), fsync="never") as d:
            d.db.new_entity("b")
            last = d.last_lsn
        new_dir = tmp_path / "new"
        result = promote_data_dir(old_dir, new_dir)
        assert result.winner is None
        assert result.details["lsn"] == last
        assert result.details["generation"] == last + 1
        marker = read_fence(old_dir)
        assert marker is not None and marker["promoted_to"] == str(new_dir)
        # The old generation refuses to serve again...
        with pytest.raises(FencedError):
            DurableDatabase(old_dir)
        # ...while the new one carries the full committed history.
        with DurableDatabase(new_dir) as promoted:
            assert promoted.db.entity("b") is not None
            assert promoted.last_lsn >= last + 1

    def test_same_directory_rejected(self, tmp_path):
        with pytest.raises(ClusterError):
            promote_data_dir(tmp_path / "d", tmp_path / "d")

    def test_new_generation_feeds_replicas(self, tmp_path):
        old_dir, new_dir = tmp_path / "old", tmp_path / "new"
        with DurableDatabase(old_dir, seed=seed_db(), fsync="never") as d:
            d.db.new_entity("b")
        promote_data_dir(old_dir, new_dir)
        follower = Replica.from_data_dir(new_dir)
        assert follower.db.entity("b") is not None
        assert follower.lag() == 0
