"""Unit tests for the serving replica (read tier + in-place promotion)."""

import pytest

from vidb.cluster import ReplicaServer
from vidb.durability import DurableDatabase, read_fence
from vidb.errors import (
    ClusterError,
    FencedError,
    ReadOnlyError,
    ReplicaLagError,
)
from vidb.service.server import ServiceClient
from vidb.storage.database import VideoDatabase


def seed_db():
    db = VideoDatabase("seed")
    db.new_entity("a", name="Ana")
    db.new_interval("g1", entities=["a"], duration=[(0, 10)])
    return db


@pytest.fixture
def primary(tmp_path):
    with DurableDatabase(tmp_path / "data", seed=seed_db(),
                         fsync="never") as d:
        yield d


@pytest.fixture
def replica_server(tmp_path, primary):
    # No poll thread: tests drive replication explicitly via poll_once().
    server = ReplicaServer.from_data_dir(
        primary.data_dir, lsn_wait_s=0.05,
        promote_data_dir=tmp_path / "promoted")
    server.server.start_background()
    yield server
    server.close()


def client_for(server):
    host, port = server.address
    return ServiceClient(host, port)


class TestServing:
    def test_serves_reads_from_bootstrap_state(self, replica_server):
        with client_for(replica_server) as client:
            reply = client.query("?- object(O).")
            assert reply["count"] == 1

    def test_rejects_writes_with_read_only(self, replica_server):
        with client_for(replica_server) as client:
            with pytest.raises(ReadOnlyError):
                client.insert_entity("b")

    def test_reports_position_via_wal_op(self, primary, replica_server):
        primary.db.new_entity("b")
        replica_server.poll_once()
        with client_for(replica_server) as client:
            reply = client.wal()
        assert reply["role"] == "replica"
        assert reply["read_only"] is True
        assert reply["applied_lsn"] == primary.last_lsn
        assert reply["lag_lsn"] == 0

    def test_info_reports_replica_role(self, replica_server):
        with client_for(replica_server) as client:
            info = client.info()
        assert info["role"] == "replica"
        assert info["read_only"] is True
        assert "lsn" in info

    def test_replication_visible_to_queries(self, primary, replica_server):
        primary.db.new_entity("b", name="Ben")
        applied = replica_server.poll_once()
        assert applied >= 1
        with client_for(replica_server) as client:
            assert client.query("?- object(O).")["count"] == 2

    def test_readiness_includes_source(self, replica_server):
        checks = replica_server.readiness()
        assert checks["executor"] is True
        assert checks["replica"] is True
        assert checks["source"] is True

    def test_metrics_include_lag_gauges(self, replica_server):
        snapshot = replica_server.service.snapshot()
        assert "replica.lag_lsn" in snapshot
        assert "replica.applied_lsn" in snapshot


class TestSessionConsistency:
    def test_read_at_applied_lsn_serves(self, primary, replica_server):
        primary.db.new_entity("b")
        replica_server.poll_once()
        with client_for(replica_server) as client:
            reply = client.query("?- object(O).",
                                 min_lsn=primary.last_lsn)
            assert reply["count"] == 2

    def test_read_beyond_applied_lsn_fails_lagging(self, primary,
                                                   replica_server):
        primary.db.new_entity("b")  # journaled but not yet polled
        with client_for(replica_server) as client:
            with pytest.raises(ReplicaLagError):
                client.query("?- object(O).",
                             min_lsn=primary.last_lsn, wait_s=0.01)

    def test_wait_succeeds_once_caught_up(self, primary, replica_server):
        primary.db.new_entity("b")
        token = primary.last_lsn
        replica_server.poll_once()
        with client_for(replica_server) as client:
            assert client.query("?- object(O).",
                                min_lsn=token)["count"] == 2

    def test_bad_min_lsn_is_protocol_error(self, replica_server):
        from vidb.errors import ProtocolError

        with client_for(replica_server) as client:
            with pytest.raises(ProtocolError):
                client.request("query", query="?- object(O).",
                               min_lsn="nope")


class TestResyncRebind:
    def test_checkpoint_truncation_forces_resync_and_rebind(
            self, tmp_path, primary):
        server = ReplicaServer.from_data_dir(
            primary.data_dir, promote_data_dir=tmp_path / "promoted")
        server.server.start_background()
        try:
            server.poll_once()
            old_db = server.service.db
            # Enough traffic to checkpoint twice: the records between
            # the replica's position and the new log head are gone.
            for index in range(6):
                primary.db.new_entity(f"bulk{index}")
            primary.checkpoint()
            primary.db.new_entity("after")
            server.poll_once()
            assert server.replica.resyncs >= 1 or server.replica.lag() == 0
            # The executor must serve the *new* database object.
            assert server.service.db is server.replica.db
            if server.replica.resyncs > 1:
                assert server.service.db is not old_db
            with client_for(server) as client:
                count = client.query("?- object(O).")["count"]
            assert count == len(list(primary.db.entities()))
        finally:
            server.close()


class TestPromotion:
    def test_promote_flips_to_writable_primary(self, tmp_path, primary,
                                               replica_server):
        primary.db.new_entity("b")
        replica_server.poll_once()
        old_last = primary.last_lsn
        result = replica_server.promote()
        assert result["promoted"] is True
        assert result["lsn"] == old_last
        assert result["generation"] > old_last
        assert result["fenced"] is True
        with client_for(replica_server) as client:
            reply = client.insert_entity("c")
            assert reply["head_lsn"] > old_last
            info = client.info()
        assert info["role"] == "primary"
        assert info["read_only"] is False

    def test_promote_fences_the_old_generation(self, tmp_path, primary,
                                               replica_server):
        replica_server.promote()
        marker = read_fence(primary.data_dir)
        assert marker is not None and marker["fenced"] is True
        # A restarted old primary refuses the directory outright.
        primary.close()
        with pytest.raises(FencedError):
            DurableDatabase(primary.data_dir)

    def test_live_fenced_primary_fails_at_checkpoint(self, tmp_path):
        with DurableDatabase(tmp_path / "data", seed=seed_db(),
                             fsync="never", checkpoint_every=1) as live:
            server = ReplicaServer.from_data_dir(
                live.data_dir, promote_data_dir=tmp_path / "promoted")
            server.server.start_background()
            try:
                server.poll_once()
                server.promote()
                # checkpoint_every=1: the next mutation reaches the
                # checkpoint path, which re-checks the fence.
                with pytest.raises(FencedError):
                    live.db.new_entity("zombie")
            finally:
                server.close()

    def test_promoted_lsns_continue_the_sequence(self, primary,
                                                 replica_server):
        primary.db.new_entity("b")
        replica_server.poll_once()
        applied = replica_server.replica.applied_lsn
        replica_server.promote()
        durable = replica_server.service.durability
        assert durable is not None
        assert durable.last_lsn >= applied + 1
        assert durable.generation == applied + 1

    def test_double_promotion_rejected(self, replica_server):
        replica_server.promote()
        with pytest.raises(ClusterError):
            replica_server.promote()

    def test_promotion_into_source_dir_rejected(self, primary,
                                                replica_server):
        with pytest.raises(ClusterError):
            replica_server.promote(data_dir=primary.data_dir)

    def test_promotion_needs_a_target_dir(self, primary):
        server = ReplicaServer.from_data_dir(primary.data_dir)
        server.server.start_background()
        try:
            with pytest.raises(ClusterError):
                server.promote()
        finally:
            server.close()

    def test_promote_op_over_the_wire(self, tmp_path, primary,
                                      replica_server):
        with client_for(replica_server) as client:
            reply = client.promote(
                data_dir=str(tmp_path / "wire-promoted"))
            assert reply["promoted"] is True
            assert client.insert_entity("c")["ok"] is True

    def test_promote_op_rejected_on_plain_server(self, tmp_path):
        from vidb.service import ServiceExecutor, VideoServer

        with ServiceExecutor(seed_db()) as service:
            with VideoServer(service) as server:
                server.start_background()
                host, port = server.address
                with ServiceClient(host, port) as client:
                    with pytest.raises(ClusterError):
                        client.promote()

    def test_old_history_can_rejoin_as_replica(self, tmp_path, primary,
                                               replica_server):
        """The stale generation re-enters the cluster as a follower of
        the new primary (its own directory stays fenced)."""
        primary.db.new_entity("b")
        replica_server.poll_once()
        replica_server.promote()
        new_dir = replica_server.service.durability.data_dir
        from vidb.durability import Replica

        follower = Replica.from_data_dir(new_dir)
        assert follower.applied_lsn >= replica_server.replica.applied_lsn
        assert set(follower.db.entities()) == set(
            replica_server.service.db.entities())
