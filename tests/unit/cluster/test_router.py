"""Unit tests for the cluster router (balancing, health, failover)."""

import pytest

from vidb.cluster import ClusterRouter, ReplicaServer
from vidb.durability import DurableDatabase
from vidb.errors import ClusterError, ProtocolError
from vidb.obs.trace import TraceContext, assemble_trace
from vidb.service import ServiceClient, ServiceExecutor, VideoServer
from vidb.storage.database import VideoDatabase


def seed_db():
    db = VideoDatabase("seed")
    db.new_entity("a", name="Ana")
    db.new_interval("g1", entities=["a"], duration=[(0, 10)])
    return db


@pytest.fixture
def primary(tmp_path):
    durable = DurableDatabase(tmp_path / "data", seed=seed_db(),
                              fsync="never")
    service = ServiceExecutor(durable)
    server = VideoServer(service).start_background()
    yield server
    server.shutdown()
    service.close()


def make_replica(primary, tmp_path, name, lsn_wait_s=0.05):
    """A serving replica driven manually (no poll thread)."""
    data_dir = primary.service.durability.data_dir
    server = ReplicaServer.from_data_dir(
        data_dir, lsn_wait_s=lsn_wait_s,
        promote_data_dir=tmp_path / f"promoted-{name}")
    server.server.start_background()
    return server


def make_router(primary, replicas, **options):
    options.setdefault("probe_interval_s", 0.05)
    router = ClusterRouter(primary.address,
                           [r.address for r in replicas], **options)
    return router.start()


class TestRouting:
    def test_writes_reach_the_primary(self, primary, tmp_path):
        replica = make_replica(primary, tmp_path, "r1")
        router = make_router(primary, [replica])
        try:
            host, port = router.address
            with ServiceClient(host, port) as client:
                reply = client.insert_entity("b")
                assert reply["ok"] and "head_lsn" in reply
            assert primary.service.db.entity("b") is not None
        finally:
            router.close()
            replica.close()

    def test_reads_balance_across_replicas(self, primary, tmp_path):
        replicas = [make_replica(primary, tmp_path, f"r{i}")
                    for i in range(2)]
        for replica in replicas:
            replica.poll_once()
        router = make_router(primary, replicas)
        try:
            host, port = router.address
            with ServiceClient(host, port) as client:
                for __ in range(4):
                    assert client.query("?- object(O).")["count"] == 1
            snapshot = router.metrics.snapshot()
            for replica in replicas:
                rhost, rport = replica.address
                key = f"router_reads_total{{replica={rhost}:{rport}}}"
                assert snapshot.get(key, 0) >= 1
            assert snapshot["router.reads_balanced"] == 4
        finally:
            router.close()
            for replica in replicas:
                replica.close()

    def test_no_replicas_serves_reads_from_primary(self, primary):
        router = make_router(primary, [])
        try:
            host, port = router.address
            with ServiceClient(host, port) as client:
                assert client.query("?- object(O).")["count"] == 1
            snapshot = router.metrics.snapshot()
            assert snapshot.get(
                "router_reads_total{replica=primary}", 0) == 1
        finally:
            router.close()

    def test_session_state_sticks_to_the_primary(self, primary, tmp_path):
        replica = make_replica(primary, tmp_path, "r1")
        replica.poll_once()
        router = make_router(primary, [replica])
        try:
            host, port = router.address
            with ServiceClient(host, port) as client:
                client.prepare("byname", "?- object(O).")
                assert client.execute("byname")["count"] == 1
        finally:
            router.close()
            replica.close()

    def test_unknown_op_passes_through_backend_error(self, primary):
        router = make_router(primary, [])
        try:
            host, port = router.address
            with ServiceClient(host, port) as client:
                with pytest.raises(ProtocolError):
                    client.request("frobnicate")
        finally:
            router.close()


class TestConsistencyFallback:
    def test_lagging_replica_read_falls_back_to_primary(self, primary,
                                                        tmp_path):
        replica = make_replica(primary, tmp_path, "r1", lsn_wait_s=0.05)
        replica.poll_once()
        router = make_router(primary, [replica])
        try:
            host, port = router.address
            with ServiceClient(host, port) as client:
                client.insert_entity("b")  # replica never polls this
                # The client's session token outruns the replica: the
                # router must re-serve the read from the primary, not
                # surface the lagging error or stale data.
                reply = client.query("?- object(O).")
                assert reply["count"] == 2
            snapshot = router.metrics.snapshot()
            assert snapshot["router.fallbacks"] >= 1
            assert snapshot.get(
                "router_reads_total{replica=primary}", 0) >= 1
        finally:
            router.close()
            replica.close()


class TestHealth:
    def test_dead_replica_is_marked_down_and_skipped(self, primary,
                                                     tmp_path):
        replica = make_replica(primary, tmp_path, "r1")
        replica.poll_once()
        router = make_router(primary, [replica])
        try:
            assert len(router.healthy_replicas()) == 1
            replica.close()
            host, port = router.address
            with ServiceClient(host, port) as client:
                # Served despite the dead replica (fallback path).
                assert client.query("?- object(O).")["count"] == 1
            router.probe()
            assert router.healthy_replicas() == []
            events = [e["type"] for e in router.events.recent()]
            assert "router.replica_down" in events
        finally:
            router.close()

    def test_lag_cap_removes_replica_from_pool(self, primary, tmp_path):
        replica = make_replica(primary, tmp_path, "r1")
        replica.poll_once()
        router = make_router(primary, [replica], max_lag_lsn=0)
        try:
            assert len(router.healthy_replicas()) == 1
            from vidb.durability.replica import ShipBatch

            # Visible watermark advances with nothing applied: lag > 0.
            replica.replica.ingest(
                ShipBatch([], replica.replica.applied_lsn + 3))
            router.probe()
            assert router.healthy_replicas() == []
        finally:
            router.close()
            replica.close()

    def test_topology_reports_state(self, primary, tmp_path):
        replica = make_replica(primary, tmp_path, "r1")
        replica.poll_once()
        router = make_router(primary, [replica])
        try:
            host, port = router.address
            with ServiceClient(host, port) as client:
                topology = client.request("cluster")
            phost, pport = primary.address
            assert topology["primary"] == f"{phost}:{pport}"
            assert len(topology["replicas"]) == 1
            assert topology["replicas"][0]["healthy"] is True
        finally:
            router.close()
            replica.close()


class TestFailover:
    def test_dead_primary_surfaces_cluster_error(self, tmp_path):
        durable = DurableDatabase(tmp_path / "data", seed=seed_db(),
                                  fsync="never")
        service = ServiceExecutor(durable)
        server = VideoServer(service).start_background()
        router = ClusterRouter(server.address, []).start()
        try:
            address = server.address
            server.shutdown()
            service.close()
            host, port = router.address
            with ServiceClient(host, port) as client:
                with pytest.raises(ClusterError):
                    client.insert_entity("b")
            assert router.primary == address
        finally:
            router.close()

    def test_repoint_moves_writes_to_new_primary(self, primary, tmp_path):
        replica = make_replica(primary, tmp_path, "r1")
        replica.poll_once()
        router = make_router(primary, [replica])
        try:
            host, port = router.address
            with ServiceClient(host, port) as client:
                client.insert_entity("before")
                replica.poll_once()
                replica.promote()
                rhost, rport = replica.address
                client.request("repoint", host=rhost, port=rport)
                reply = client.insert_entity("after")
                assert reply["ok"] is True
            # The write landed on the promoted replica, not the old
            # primary; the promoted node left the read pool.
            from vidb.model.oid import Oid

            assert replica.service.db.entity("after") is not None
            assert primary.service.db.get(Oid.entity("after")) is None
            assert router.healthy_replicas() == []
            events = [e["type"] for e in router.events.recent()]
            assert "failover.repoint" in events
        finally:
            router.close()
            replica.close()

    def test_repoint_validates_fields(self, primary):
        router = make_router(primary, [])
        try:
            host, port = router.address
            with ServiceClient(host, port) as client:
                with pytest.raises(ProtocolError):
                    client.request("repoint", host=1, port="x")
        finally:
            router.close()


class TestClusterTelemetry:
    def test_scrape_feeds_cluster_health(self, primary, tmp_path):
        replica = make_replica(primary, tmp_path, "r1")
        replica.poll_once()
        router = make_router(primary, [replica], scrape_interval_s=30.0)
        try:
            # start() already ran one synchronous scrape pass.
            host, port = router.address
            with ServiceClient(host, port) as client:
                health = client.cluster_health()
            assert health["router"] == f"{host}:{port}"
            assert health["rollups"]["nodes"] == 2
            assert health["rollups"]["nodes_up"] == 2
            roles = {row["role"] for row in health["nodes"]}
            assert roles == {"primary", "replica"}
            assert all(row["up"] for row in health["nodes"])
        finally:
            router.close()
            replica.close()

    def test_dead_member_marked_down_keeps_last_snapshot(self, primary,
                                                         tmp_path):
        replica = make_replica(primary, tmp_path, "r1")
        replica.poll_once()
        router = make_router(primary, [replica], scrape_interval_s=30.0)
        try:
            rhost, rport = replica.address
            replica.close()
            router.scrape()
            health = router.cluster_health()
            assert health["rollups"]["nodes_up"] == 1
            down = next(row for row in health["nodes"]
                        if row["node"] == f"{rhost}:{rport}")
            assert down["up"] is False and "error" in down
        finally:
            router.close()

    def test_fleet_exposition_labels_every_member(self, primary, tmp_path):
        replica = make_replica(primary, tmp_path, "r1")
        replica.poll_once()
        router = make_router(primary, [replica], scrape_interval_s=30.0)
        try:
            text = router.fleet_exposition()
            phost, pport = primary.address
            rhost, rport = replica.address
            assert (f'vidb_cluster_node_up{{node="{phost}:{pport}",'
                    'role="primary"} 1') in text
            assert (f'vidb_cluster_node_up{{node="{rhost}:{rport}",'
                    'role="replica"} 1') in text
            assert "vidb_cluster_nodes_up 2" in text
        finally:
            router.close()
            replica.close()

    def test_traced_query_assembles_across_processes(self, primary,
                                                     tmp_path):
        replica = make_replica(primary, tmp_path, "r1")
        replica.poll_once()
        router = make_router(primary, [replica], scrape_interval_s=30.0)
        try:
            host, port = router.address
            context = TraceContext.new(sampled=True)
            with ServiceClient(host, port,
                               trace_context=context) as client:
                assert client.query("?- object(O).")["count"] == 1
                segments = client.trace(id=context.trace_id)["segments"]
                rows = client.traces()
            # Router + serving backend each contributed a segment...
            roles = {s["node"]["role"] for s in segments}
            assert "router" in roles
            assert roles & {"replica", "primary"}
            # ...and they assemble into one tree under the client span.
            roots = assemble_trace(segments)
            assert len(roots) == 1
            assert roots[0]["parent_span_id"] == context.span_id
            assert roots[0]["node"]["role"] == "router"
            assert roots[0]["children"], "backend segment not parented"
            # The fleet-wide summary list merges to one row per trace.
            assert [r["trace_id"] for r in rows] == [context.trace_id]
        finally:
            router.close()
            replica.close()

    def test_unsampled_requests_leave_no_segments(self, primary):
        router = make_router(primary, [], scrape_interval_s=30.0)
        try:
            host, port = router.address
            with ServiceClient(host, port) as client:
                client.query("?- object(O).")
                assert client.traces() == []
            assert len(router.flight_recorder) == 0
        finally:
            router.close()
