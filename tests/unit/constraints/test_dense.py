"""Unit tests for dense-order constraint formulas (Definitions 2/4/5)."""

import pytest

from vidb.constraints.dense import (
    FALSE,
    TRUE,
    And,
    Comparison,
    Or,
    conjoin,
    disjoin,
    flip_op,
    fold_ground,
    from_dnf,
    interval_constraint,
    negate_op,
)
from vidb.constraints.terms import Var
from vidb.errors import ConstraintError

t = Var("t")
x = Var("x")
y = Var("y")


class TestComparison:
    def test_constant_moves_to_right(self):
        atom = Comparison(5, "<", t)
        assert atom.left == t and atom.op == ">" and atom.right == 5

    def test_ground_comparison_rejected(self):
        with pytest.raises(ConstraintError):
            Comparison(1, "<", 2)

    def test_unknown_operator(self):
        with pytest.raises(ConstraintError):
            Comparison(t, "<>", 5)

    def test_negation_involutive(self):
        atom = t < 5
        assert atom.negate().negate() == atom

    def test_negation_complements(self):
        assert (t < 5).negate() == Comparison(t, ">=", 5)
        assert t.eq(5).negate() == t.ne(5)

    def test_variables(self):
        assert (x < y).variables() == frozenset({x, y})
        assert (x < 1).variables() == frozenset({x})

    def test_substitute_to_ground_folds(self):
        atom = t < 5
        assert atom.substitute({t: 3}) is TRUE
        assert atom.substitute({t: 7}) is FALSE

    def test_substitute_renames(self):
        atom = (x < y).substitute({x: t})
        assert atom == Comparison(t, "<", y)

    def test_evaluate(self):
        assert (x < y).evaluate({x: 1, y: 2})
        assert not (x < y).evaluate({x: 2, y: 2})
        assert x.eq(y).evaluate({x: 2, y: 2})

    def test_dnf_single_atom(self):
        assert (t < 5).dnf() == [((t < 5),)]


class TestOpTables:
    def test_negate_op(self):
        assert negate_op("<") == ">="
        assert negate_op("=") == "!="
        assert negate_op(">=") == "<"

    def test_flip_op(self):
        assert flip_op("<") == ">"
        assert flip_op("<=") == ">="
        assert flip_op("=") == "="


class TestFoldGround:
    def test_numeric(self):
        assert fold_ground(1, "<", 2) is TRUE
        assert fold_ground(2, "<=", 2) is TRUE
        assert fold_ground(3, ">", 3) is FALSE

    def test_cross_domain_equality(self):
        assert fold_ground(1, "=", "1") is FALSE
        assert fold_ground(1, "!=", "1") is TRUE

    def test_cross_domain_order_rejected(self):
        with pytest.raises(ConstraintError):
            fold_ground(1, "<", "a")

    def test_strings(self):
        assert fold_ground("a", "<", "b") is TRUE


class TestConnectives:
    def test_and_flattens(self):
        c = And([And([(t > 1), (t < 5)]), (t != 3)])
        assert len(c.parts) == 3

    def test_or_flattens(self):
        c = Or([Or([(t > 1), (t < 0)]), t.eq(7)])
        assert len(c.parts) == 3

    def test_conjoin_folds_truth(self):
        assert conjoin(TRUE, t < 5) == (t < 5)
        assert conjoin(FALSE, t < 5) is FALSE
        assert conjoin() is TRUE

    def test_disjoin_folds_truth(self):
        assert disjoin(FALSE, t < 5) == (t < 5)
        assert disjoin(TRUE, t < 5) is TRUE
        assert disjoin() is FALSE

    def test_demorgan_negation(self):
        c = ((t > 1) & (t < 5)).negate()
        assert isinstance(c, Or)
        assert set(c.parts) == {Comparison(t, "<=", 1), Comparison(t, ">=", 5)}

    def test_dnf_distributes(self):
        c = ((t > 1) | (t > 10)) & (t < 5)
        clauses = c.dnf()
        assert len(clauses) == 2
        assert all(len(clause) == 2 for clause in clauses)

    def test_dnf_of_truth(self):
        assert TRUE.dnf() == [()]
        assert FALSE.dnf() == []

    def test_evaluate_connectives(self):
        c = ((t > 1) & (t < 5)) | t.eq(42)
        assert c.evaluate({t: 3})
        assert c.evaluate({t: 42})
        assert not c.evaluate({t: 10})

    def test_and_requires_two_parts(self):
        with pytest.raises(ConstraintError):
            And([t < 5])

    def test_substitute_through_connectives(self):
        c = ((x < y) & (y < 5)).substitute({x: 1, y: 2})
        assert c is TRUE


class TestIntervalConstraint:
    def test_closed_interval_form(self):
        c = interval_constraint(t, 1, 5)
        assert c.evaluate({t: 1}) and c.evaluate({t: 5}) and c.evaluate({t: 3})
        assert not c.evaluate({t: 0}) and not c.evaluate({t: 6})

    def test_open_bounds(self):
        c = interval_constraint(t, 1, 5, closed_lo=False, closed_hi=False)
        assert not c.evaluate({t: 1}) and not c.evaluate({t: 5})
        assert c.evaluate({t: 3})


class TestFromDnf:
    def test_roundtrip(self):
        c = ((t > 1) & (t < 5)) | t.eq(42)
        rebuilt = from_dnf(c.dnf())
        assert rebuilt.dnf() == c.dnf()

    def test_empty_is_false(self):
        assert from_dnf([]) is FALSE

    def test_empty_clause_is_true(self):
        assert from_dnf([()]) is TRUE
