"""Unit tests for concrete domains (Definition 1)."""

from fractions import Fraction

import pytest

from vidb.constraints.domains import (
    INTEGERS,
    RATIONALS,
    STRINGS,
    ConcreteDomain,
    Predicate,
    domain_of,
)
from vidb.errors import DomainError


class TestPredicate:
    def test_call_checks_arity(self):
        pred = Predicate("lt", 2, lambda a, b: a < b)
        assert pred(1, 2) is True
        with pytest.raises(DomainError):
            pred(1)

    def test_rejects_zero_arity(self):
        with pytest.raises(DomainError):
            Predicate("nullary", 0, lambda: True)

    def test_result_is_bool(self):
        pred = Predicate("truthy", 1, lambda a: a)
        assert pred(5) is True
        assert pred(0) is False


class TestBuiltinDomains:
    def test_integers_membership(self):
        assert 5 in INTEGERS
        assert 5.5 not in INTEGERS
        assert True not in INTEGERS  # booleans excluded

    def test_rationals_membership(self):
        assert 5 in RATIONALS
        assert 5.5 in RATIONALS
        assert Fraction(1, 3) in RATIONALS
        assert "x" not in RATIONALS

    def test_strings_membership(self):
        assert "abc" in STRINGS
        assert 1 not in STRINGS

    def test_integers_not_dense_rationals_dense(self):
        assert not INTEGERS.dense
        assert RATIONALS.dense

    def test_builtin_comparators_present(self):
        for op in ("=", "!=", "<", "<=", ">", ">="):
            assert op in INTEGERS.predicates()
            assert INTEGERS.predicate(op)(1, 2) == {"=": False, "!=": True,
                                                    "<": True, "<=": True,
                                                    ">": False, ">=": False}[op]

    def test_unknown_predicate_raises(self):
        with pytest.raises(DomainError):
            RATIONALS.predicate("between")

    def test_check_validates_membership(self):
        assert RATIONALS.check(2.5) == 2.5
        with pytest.raises(DomainError):
            STRINGS.check(1)


class TestCustomDomain:
    def test_add_predicate_and_lookup(self):
        evens = ConcreteDomain("evens", lambda v: isinstance(v, int) and v % 2 == 0)
        evens.add_predicate("sum_even", 2, lambda a, b: (a + b) % 2 == 0)
        assert evens.predicate("sum_even")(2, 4)
        assert 4 in evens and 3 not in evens


class TestDomainOf:
    def test_dispatch(self):
        assert domain_of(1) is RATIONALS
        assert domain_of("x") is STRINGS

    def test_unknown_value(self):
        with pytest.raises(DomainError):
            domain_of([1, 2])
