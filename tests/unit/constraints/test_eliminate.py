"""Unit tests for existential variable elimination."""

from vidb.constraints.dense import FALSE, TRUE, Comparison
from vidb.constraints.eliminate import eliminate_variable, project
from vidb.constraints.solver import entails, equivalent, satisfiable
from vidb.constraints.terms import Var

x, y, z, t = Var("x"), Var("y"), Var("z"), Var("t")


class TestEliminateVariable:
    def test_transitivity_falls_out(self):
        # ∃x (y < x ∧ x < z)  ≡  y < z
        c = (y < x) & (x < z)
        assert equivalent(eliminate_variable(c, x), y < z)

    def test_equality_substitutes(self):
        c = x.eq(y) & (x < 5)
        assert equivalent(eliminate_variable(c, x), y < 5)

    def test_unbounded_side_vanishes(self):
        # ∃x (x > y) is always true (dense order, no endpoints)
        assert equivalent(eliminate_variable(x > y, x), TRUE)

    def test_ground_contradiction_surfaces(self):
        c = (x > 5) & (x < 3)
        assert eliminate_variable(c, x) is FALSE or \
            not satisfiable(eliminate_variable(c, x))

    def test_pinned_single_point_region(self):
        # ∃x (y <= x ∧ x <= y ∧ x != y) is unsatisfiable
        c = Comparison(x, ">=", y) & Comparison(x, "<=", y) & x.ne(y)
        assert not satisfiable(eliminate_variable(c, x))

    def test_pinned_point_with_other_puncture(self):
        # ∃x (y <= x ∧ x <= y ∧ x != z)  ≡  y != z
        c = Comparison(x, ">=", y) & Comparison(x, "<=", y) & x.ne(z)
        assert equivalent(eliminate_variable(c, x), y.ne(z))

    def test_open_region_ignores_punctures(self):
        # ∃x (0 < x < 3 ∧ x != 1 ∧ x != 2) holds: density beats punctures
        c = (x > 0) & (x < 3) & x.ne(1) & x.ne(2)
        assert equivalent(eliminate_variable(c, x), TRUE)

    def test_self_comparison_contradiction(self):
        assert not satisfiable(eliminate_variable((x < x) & (y > 0), x))

    def test_result_entailed_by_original(self):
        c = (y < x) & (x < z) & (y > 0)
        eliminated = eliminate_variable(c, x)
        assert entails(c, eliminated)

    def test_disjunction_distributes(self):
        c = ((y < x) & (x < 3)) | ((x > 9) & (x < y))
        eliminated = eliminate_variable(c, x)
        assert equivalent(eliminated, (y < 3) | (y > 9))


class TestProject:
    def test_keep_one_of_three(self):
        c = (x < y) & (y < z) & (x > 0) & (z < 10)
        projected = project(c, [y])
        assert projected.variables() <= {y}
        assert equivalent(projected, (y > 0) & (y < 10))

    def test_keep_all_is_identity_semantics(self):
        c = (x < y) & (y < 5)
        assert equivalent(project(c, [x, y]), c)

    def test_temporal_window_projection(self):
        # "the times at which something both after A and before B exists":
        # ∃t (A < t ∧ t < B)  ≡  A < B — the scheduling-feasibility test.
        a, b = Var("A"), Var("B")
        c = (t > a) & (t < b)
        assert equivalent(project(c, [a, b]), a < b)
