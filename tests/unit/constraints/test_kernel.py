"""Unit tests for the constraint kernel API: registry, interning,
caching, batching, shims, and engine-level kernel selection."""

import warnings

import pytest

from vidb.constraints import (
    DEFAULT_KERNEL_NAME,
    KERNEL_ENV_VAR,
    ConstraintKernel,
    available_kernels,
    default_kernel,
    default_kernel_name,
    get_kernel,
    make_kernel,
    register_kernel,
    resolve_kernel,
    set_default_kernel,
)
from vidb.constraints.dense import FALSE, TRUE, conjoin, disjoin
from vidb.constraints.interned import InternedKernel, atom_key
from vidb.constraints.reference import ReferenceKernel
from vidb.constraints.setorder import (
    Member,
    SetVar,
    SubsetConst,
    SubsetVar,
    SupersetConst,
)
from vidb.constraints.terms import Var
from vidb.errors import ConstraintError

x = Var("x")
y = Var("y")
z = Var("z")


# -- registry ------------------------------------------------------------------

class TestRegistry:
    def test_builtins_available(self):
        names = available_kernels()
        assert "interned" in names
        assert "reference" in names
        for name in ("interned", "reference"):
            assert isinstance(get_kernel(name), ConstraintKernel)

    def test_make_kernel_fresh_instances(self):
        assert make_kernel("interned") is not make_kernel("interned")

    def test_get_kernel_shared_instance(self):
        assert get_kernel("interned") is get_kernel("interned")

    def test_unknown_name(self):
        with pytest.raises(ConstraintError, match="unknown constraint kernel"):
            make_kernel("no-such-kernel")

    def test_register_duplicate_requires_replace(self):
        with pytest.raises(ConstraintError, match="already registered"):
            register_kernel("interned", InternedKernel)
        register_kernel("interned", InternedKernel, replace=True)

    def test_register_custom(self):
        class Custom(ReferenceKernel):
            name = "custom-test"

        register_kernel("custom-test", Custom)
        try:
            kernel = make_kernel("custom-test")
            assert kernel.name == "custom-test"
            assert kernel.satisfiable(x > 1)
        finally:
            # Re-registering under replace=True with a throwaway factory
            # is not removal, but keeps the registry harmless for other
            # tests that enumerate names.
            register_kernel("custom-test", Custom, replace=True)

    def test_default_name_and_env_override(self, monkeypatch):
        monkeypatch.delenv(KERNEL_ENV_VAR, raising=False)
        previous = set_default_kernel(None)
        try:
            assert default_kernel_name() == DEFAULT_KERNEL_NAME
            monkeypatch.setenv(KERNEL_ENV_VAR, "reference")
            assert default_kernel_name() == "reference"
            assert default_kernel().name == "reference"
        finally:
            set_default_kernel(previous)

    def test_set_default_kernel_overrides_env(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV_VAR, "reference")
        previous = set_default_kernel("interned")
        try:
            assert default_kernel_name() == "interned"
        finally:
            set_default_kernel(previous)

    def test_set_default_unknown_name(self):
        with pytest.raises(ConstraintError):
            set_default_kernel("bogus")

    def test_resolve_kernel_forms(self):
        assert resolve_kernel(None) is default_kernel()
        assert resolve_kernel("reference").name == "reference"
        kernel = InternedKernel()
        assert resolve_kernel(kernel) is kernel

    def test_resolve_kernel_bad_spec(self):
        with pytest.raises(ConstraintError):
            resolve_kernel(42)  # type: ignore[arg-type]


# -- interning / canonical forms -----------------------------------------------

class TestInterning:
    def test_atom_key_numeric_cross_type(self):
        assert atom_key(x > 1) == atom_key(x > 1.0)

    def test_reordered_clauses_share_form(self):
        kernel = InternedKernel()
        a = disjoin(conjoin(x > 1, y < 2), conjoin(x < 0))
        b = disjoin(conjoin(x < 0), conjoin(y < 2, x > 1))
        assert kernel.intern(a).key == kernel.intern(b).key
        # and the same InternedForm object is shared
        assert kernel.intern(a) is kernel.intern(b)

    def test_duplicate_atoms_collapse(self):
        kernel = InternedKernel()
        a = conjoin(x > 1, x > 1, y < 2)
        b = conjoin(y < 2, x > 1)
        assert kernel.intern(a) is kernel.intern(b)

    def test_true_false_forms(self):
        kernel = InternedKernel()
        assert kernel.satisfiable(TRUE)
        assert not kernel.satisfiable(FALSE)
        assert kernel.entails(FALSE, x > 1)
        assert kernel.entails(x > 1, TRUE)
        assert not kernel.entails(TRUE, FALSE)

    def test_by_constraint_fast_path(self):
        kernel = InternedKernel()
        c = conjoin(x > 1, y < 2)
        kernel.intern(c)
        before = dict(kernel.counters())
        kernel.intern(c)
        after = kernel.counters()
        assert after["canon.hits"] == before["canon.hits"] + 1

    def test_counters_stable_keys(self):
        kernel = InternedKernel()
        keys = set(kernel.counters())
        assert {"canon.hits", "canon.misses", "entails.hits",
                "entails.misses", "forms", "evictions"} <= keys

    def test_entails_pair_cache(self):
        kernel = InternedKernel()
        a, b = conjoin(x > 2), conjoin(x > 1)
        assert kernel.entails(a, b)
        before = kernel.counters()["entails.hits"]
        assert kernel.entails(a, b)
        assert kernel.counters()["entails.hits"] == before + 1

    def test_eviction_keeps_answers_correct(self):
        kernel = InternedKernel(max_forms=4, max_cached=4)
        for i in range(20):
            assert kernel.satisfiable(conjoin(x > i, x < i + 1))
            assert not kernel.satisfiable(conjoin(x > i + 1, x < i))
        assert kernel.counters()["evictions"] > 0
        # stale indices must not alias new forms after a clear
        assert kernel.entails(conjoin(x > 5), conjoin(x > 1))

    def test_reset_clears_counters(self):
        kernel = InternedKernel()
        kernel.satisfiable(x > 1)
        kernel.reset()
        counters = kernel.counters()
        assert counters["forms"] == 0
        assert counters["sat.misses"] == 0


# -- batched APIs --------------------------------------------------------------

class TestBatchedApis:
    def test_entails_many_matches_single(self):
        kernel = InternedKernel()
        reference = ReferenceKernel()
        pairs = [
            (conjoin(x > 2), conjoin(x > 1)),
            (conjoin(x > 1), conjoin(x > 2)),
            (conjoin(x > 1, x < 3), disjoin(conjoin(x < 5), conjoin(y > 0))),
            (FALSE, conjoin(x > 1)),
            (conjoin(x > 2), conjoin(x > 1)),  # duplicate: cache hit
        ]
        assert (kernel.entails_many(pairs)
                == [reference.entails(a, b) for a, b in pairs])

    def test_satisfiable_many_default_loop(self):
        kernel = ReferenceKernel()
        out = kernel.satisfiable_many(
            [conjoin(x > 1, x < 2), conjoin(x > 2, x < 1), TRUE, FALSE])
        assert out == [True, False, True, False]

    def test_entails_many_empty(self):
        assert InternedKernel().entails_many([]) == []


# -- set-order kernel ops ------------------------------------------------------

class TestSetOrderOps:
    def test_set_satisfiable_parity(self):
        X, Y = SetVar("X"), SetVar("Y")
        sat = [Member("a", X), SubsetVar(X, Y), SubsetConst(Y, ["a", "b"])]
        unsat = [Member("a", X), SubsetConst(X, ["b"])]
        for kernel in (InternedKernel(), ReferenceKernel()):
            assert kernel.set_satisfiable(sat)
            assert not kernel.set_satisfiable(unsat)
            assert kernel.set_satisfiable([])

    def test_set_entails_parity(self):
        X, Y, Z = SetVar("X"), SetVar("Y"), SetVar("Z")
        premise = [SubsetVar(X, Y), SubsetVar(Y, Z), Member("a", X)]
        for kernel in (InternedKernel(), ReferenceKernel()):
            assert kernel.set_entails(premise, [Member("a", Z)])
            assert kernel.set_entails(premise, [SubsetVar(X, Z)])
            assert not kernel.set_entails(premise, [Member("b", Z)])
            # unsatisfiable premise entails anything
            assert kernel.set_entails(
                [Member("a", X), SubsetConst(X, ["b"])], [Member("q", Y)])

    def test_set_entails_superset_const(self):
        X = SetVar("X")
        premise = [SupersetConst(["a", "b"], X)]
        for kernel in (InternedKernel(), ReferenceKernel()):
            assert kernel.set_entails(premise, [Member("a", X)])
            assert not kernel.set_entails(premise, [Member("c", X)])

    def test_set_state_cache(self):
        kernel = InternedKernel()
        X = SetVar("X")
        atoms = [Member("a", X)]
        kernel.set_satisfiable(atoms)
        before = kernel.counters()["set.hits"]
        kernel.set_satisfiable(list(reversed(atoms)) + [Member("a", X)])
        assert kernel.counters()["set.hits"] == before + 1


# -- deprecation shims ---------------------------------------------------------

class TestShims:
    def test_solver_shims_warn_and_delegate(self):
        from vidb.constraints import solver
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert solver.satisfiable(x > 1)
            assert solver.entails(conjoin(x > 2), conjoin(x > 1))
            assert solver.equivalent(TRUE, TRUE)
            solver.simplify(conjoin(x > 1, x > 0))
        messages = [str(w.message) for w in caught
                    if issubclass(w.category, DeprecationWarning)]
        assert any("satisfiable" in m for m in messages)
        assert any("entails" in m for m in messages)
        assert all("default_kernel" in m for m in messages)

    def test_setorder_shims_warn_and_delegate(self):
        from vidb.constraints import setorder
        X = SetVar("X")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert setorder.satisfiable([Member("a", X)])
            assert setorder.entails([Member("a", X)], [Member("a", X)])
        assert sum(issubclass(w.category, DeprecationWarning)
                   for w in caught) >= 2


# -- engine-level selection ----------------------------------------------------

class TestEngineSelection:
    def _db(self):
        from vidb.workloads import rope_database
        return rope_database()

    def test_execution_options_kernel_validation(self):
        from vidb.errors import EvaluationError
        from vidb.query.execution import ExecutionOptions
        ExecutionOptions(kernel="reference")
        ExecutionOptions(kernel=None)
        with pytest.raises(EvaluationError):
            ExecutionOptions(kernel=InternedKernel())  # type: ignore[arg-type]

    def test_report_stats_name_kernel(self):
        from vidb.query.engine import QueryEngine
        from vidb.query.execution import ExecutionOptions
        engine = QueryEngine(self._db(), use_stdlib_rules=True)
        report = engine.execute("?- contains(V, O).")
        assert report.stats.kernel == default_kernel().name
        report = engine.execute(
            "?- contains(V, O).", options=ExecutionOptions(kernel="reference"))
        assert report.stats.kernel == "reference"

    def test_engine_kernel_constructor(self):
        from vidb.query.engine import QueryEngine
        engine = QueryEngine(self._db(), use_stdlib_rules=True,
                             kernel="reference")
        assert engine.kernel.name == "reference"
        report = engine.execute("?- contains(V, O).")
        assert report.stats.kernel == "reference"

    def test_unknown_kernel_fails_at_execution(self):
        from vidb.errors import EvaluationError
        from vidb.query.engine import QueryEngine
        from vidb.query.execution import ExecutionOptions
        engine = QueryEngine(self._db(), use_stdlib_rules=True)
        with pytest.raises((ConstraintError, EvaluationError)):
            engine.execute("?- contains(V, O).",
                           options=ExecutionOptions(kernel="bogus"))

    def test_kernels_agree_on_query_results(self):
        from vidb.query.engine import QueryEngine
        db = self._db()
        reports = {}
        for name in ("interned", "reference"):
            engine = QueryEngine(db, use_stdlib_rules=True, kernel=name)
            report = engine.execute("?- contains(V, O).")
            reports[name] = sorted(
                tuple(sorted(answer.as_dict().items()))
                for answer in report.answers)
        assert reports["interned"] == reports["reference"]
