"""Unit tests for set-order constraints (Definition 3)."""

import pytest

from vidb.constraints.setorder import (
    Member,
    SetConjunction,
    SetVar,
    SubsetConst,
    SubsetVar,
    SupersetConst,
    entails,
    satisfiable,
)
from vidb.errors import ConstraintError

X = SetVar("X")
Y = SetVar("Y")
Z = SetVar("Z")


class TestSetVar:
    def test_identity(self):
        assert SetVar("X") == SetVar("X")
        assert SetVar("X") != SetVar("Y")
        assert len({SetVar("X"), SetVar("X")}) == 1

    def test_rejects_bad_name(self):
        with pytest.raises(ConstraintError):
            SetVar("")


class TestAtoms:
    def test_member_holds(self):
        assert Member("a", X).holds({X: frozenset({"a", "b"})})
        assert not Member("c", X).holds({X: frozenset({"a"})})

    def test_subset_const_holds(self):
        atom = SubsetConst(X, {"a", "b"})
        assert atom.holds({X: frozenset({"a"})})
        assert not atom.holds({X: frozenset({"c"})})

    def test_superset_const_holds(self):
        atom = SupersetConst({"a"}, X)
        assert atom.holds({X: frozenset({"a", "b"})})
        assert not atom.holds({X: frozenset({"b"})})

    def test_subset_var_holds(self):
        atom = SubsetVar(X, Y)
        assert atom.holds({X: frozenset({"a"}), Y: frozenset({"a", "b"})})
        assert not atom.holds({X: frozenset({"c"}), Y: frozenset({"a"})})

    def test_member_is_derived_superset_form(self):
        # c ∈ X behaves exactly like {c} ⊆ X.
        c1 = SetConjunction([Member("a", X)])
        c2 = SetConjunction([SupersetConst({"a"}, X)])
        assert c1.lower_bound(X) == c2.lower_bound(X)


class TestSatisfiability:
    def test_empty_conjunction(self):
        assert SetConjunction([]).satisfiable()

    def test_basic_bounds(self):
        assert satisfiable([Member("a", X), SubsetConst(X, {"a", "b"})])

    def test_member_outside_upper_bound(self):
        assert not satisfiable([Member("c", X), SubsetConst(X, {"a", "b"})])

    def test_propagation_through_inclusion(self):
        # a ∈ X, X ⊆ Y, Y ⊆ {b} is unsatisfiable.
        assert not satisfiable([
            Member("a", X), SubsetVar(X, Y), SubsetConst(Y, {"b"})
        ])

    def test_propagation_through_chain(self):
        atoms = [Member("a", X), SubsetVar(X, Y), SubsetVar(Y, Z),
                 SubsetConst(Z, {"a", "b"})]
        assert satisfiable(atoms)
        atoms.append(SubsetConst(Z, {"b"}))
        assert not satisfiable(atoms)

    def test_upper_bounds_intersect(self):
        assert not satisfiable([
            SubsetConst(X, {"a", "b"}), SubsetConst(X, {"b", "c"}),
            Member("a", X),
        ])

    def test_lower_bounds_union(self):
        c = SetConjunction([SupersetConst({"a"}, X), SupersetConst({"b"}, X)])
        assert c.lower_bound(X) == frozenset({"a", "b"})

    def test_cyclic_inclusion(self):
        atoms = [SubsetVar(X, Y), SubsetVar(Y, X), Member("a", X)]
        c = SetConjunction(atoms)
        assert c.satisfiable()
        assert c.lower_bound(Y) == frozenset({"a"})


class TestCanonicalSolution:
    def test_minimal_solution_satisfies_all_atoms(self):
        atoms = [Member("a", X), SubsetVar(X, Y), SupersetConst({"b"}, Y),
                 SubsetConst(Y, {"a", "b", "c"})]
        conj = SetConjunction(atoms)
        solution = conj.canonical_solution()
        for atom in atoms:
            assert atom.holds(solution)

    def test_unsatisfiable_raises(self):
        conj = SetConjunction([Member("c", X), SubsetConst(X, {"a"})])
        with pytest.raises(ConstraintError):
            conj.canonical_solution()


class TestEntailment:
    def test_member_entailment(self):
        premise = [Member("a", X), SubsetVar(X, Y)]
        assert entails(premise, [Member("a", Y)])
        assert not entails(premise, [Member("b", Y)])

    def test_subset_const_entailment(self):
        premise = [SubsetConst(X, {"a"})]
        assert entails(premise, [SubsetConst(X, {"a", "b"})])
        assert not entails(premise, [SubsetConst(X, set())])

    def test_superset_const_entailment(self):
        premise = [SupersetConst({"a", "b"}, X)]
        assert entails(premise, [SupersetConst({"a"}, X)])
        assert not entails(premise, [SupersetConst({"c"}, X)])

    def test_subset_var_reflexive(self):
        assert SetConjunction([]).entails_atom(SubsetVar(X, X))

    def test_subset_var_transitive(self):
        premise = [SubsetVar(X, Y), SubsetVar(Y, Z)]
        assert entails(premise, [SubsetVar(X, Z)])

    def test_subset_var_via_bounds(self):
        # X ⊆ {a} and a ∈ Y entail X ⊆ Y.
        premise = [SubsetConst(X, {"a"}), Member("a", Y)]
        assert entails(premise, [SubsetVar(X, Y)])

    def test_subset_var_not_entailed(self):
        premise = [Member("a", X), Member("a", Y)]
        assert not entails(premise, [SubsetVar(X, Y)])

    def test_unsatisfiable_premise_entails_anything(self):
        premise = [Member("c", X), SubsetConst(X, {"a"})]
        assert entails(premise, [Member("zzz", Y)])

    def test_conjunction_entailment_atomwise(self):
        premise = [Member("a", X), Member("b", X), SubsetVar(X, Y)]
        conclusion = [Member("a", Y), Member("b", Y)]
        assert entails(premise, conclusion)


class TestValidation:
    def test_non_atom_rejected(self):
        with pytest.raises(ConstraintError):
            SetConjunction(["not an atom"])  # type: ignore[list-item]

    def test_conjoin_creates_new_object(self):
        base = SetConjunction([Member("a", X)])
        extended = base.conjoin(SubsetConst(X, {"a"}))
        assert len(extended.atoms) == 2
        assert len(base.atoms) == 1
