"""Unit tests for the dense-order decision procedures."""

from fractions import Fraction

import pytest

from vidb.constraints.dense import FALSE, TRUE, Comparison, conjoin, disjoin
from vidb.constraints.solver import (
    Span,
    clause_satisfiable,
    entails,
    equivalent,
    normalize_spans,
    satisfiable,
    simplify,
    solution_set_1var,
    spans_subset,
)
from vidb.constraints.terms import Var
from vidb.errors import ConstraintError

t = Var("t")
x = Var("x")
y = Var("y")
z = Var("z")


class TestClauseSatisfiable:
    def test_empty_clause(self):
        assert clause_satisfiable([])

    def test_simple_bounds(self):
        assert clause_satisfiable([(x > 1), (x < 5)])

    def test_contradictory_bounds(self):
        assert not clause_satisfiable([(x > 5), (x < 1)])

    def test_density_between_consecutive_integers(self):
        # Over a dense order, 1 < x < 2 is satisfiable.
        assert clause_satisfiable([(x > 1), (x < 2)])

    def test_strict_cycle_unsat(self):
        assert not clause_satisfiable([(x < y), (y < x)])

    def test_nonstrict_cycle_forces_equality(self):
        assert clause_satisfiable([Comparison(x, "<=", y), Comparison(y, "<=", x)])

    def test_cycle_with_one_strict_edge_unsat(self):
        assert not clause_satisfiable([Comparison(x, "<=", y), (y < x)])

    def test_equality_chain_with_disequality_unsat(self):
        assert not clause_satisfiable([x.eq(y), y.eq(z), x.ne(z)])

    def test_disequality_between_free_vars_sat(self):
        assert clause_satisfiable([x.ne(y)])

    def test_two_constants_forced_equal_unsat(self):
        assert not clause_satisfiable([x.eq(1), x.eq(2)])

    def test_var_equal_number_and_string_unsat(self):
        assert not clause_satisfiable([x.eq(1), x.eq("a")])

    def test_transitive_constant_squeeze(self):
        # x <= y, y <= x, x = 3, y != 3 is unsatisfiable.
        assert not clause_satisfiable(
            [Comparison(x, "<=", y), Comparison(y, "<=", x), x.eq(3), y.ne(3)]
        )

    def test_constant_ordering_respected(self):
        # 5 < x and x < 3 contradict via the implicit 3 < 5 edge.
        assert not clause_satisfiable([(x > 5), (x < 3)])

    def test_string_order(self):
        assert clause_satisfiable([(x > "a"), (x < "b")])
        assert not clause_satisfiable([(x > "b"), (x < "a")])

    def test_self_comparison(self):
        assert not clause_satisfiable([(x < x)])
        assert clause_satisfiable([Comparison(x, "<=", x)])


class TestSatisfiable:
    def test_true_false(self):
        assert satisfiable(TRUE)
        assert not satisfiable(FALSE)

    def test_disjunction_one_branch_alive(self):
        c = ((x > 5) & (x < 1)) | x.eq(3)
        assert satisfiable(c)

    def test_all_branches_dead(self):
        c = ((x > 5) & (x < 1)) | ((x > 9) & (x < 8))
        assert not satisfiable(c)


class TestSolutionSet1Var:
    def test_simple_interval(self):
        spans = solution_set_1var((t > 1) & (t < 5), t)
        assert spans == [Span(1, 5, True, True)]

    def test_equality_is_point(self):
        spans = solution_set_1var(t.eq(4), t)
        assert spans == [Span(4, 4, False, False)]

    def test_disequality_punctures(self):
        spans = solution_set_1var((t >= 0) & (t <= 10) & t.ne(5), t)
        assert len(spans) == 2
        assert spans[0].hi == 5 and spans[0].hi_open
        assert spans[1].lo == 5 and spans[1].lo_open

    def test_disjunction_merges_overlaps(self):
        c = ((t >= 0) & (t <= 5)) | ((t >= 3) & (t <= 9))
        spans = solution_set_1var(c, t)
        assert spans == [Span(0, 9, False, False)]

    def test_touching_closed_open_merge(self):
        c = ((t >= 0) & (t < 5)) | ((t >= 5) & (t <= 9))
        assert solution_set_1var(c, t) == [Span(0, 9, False, False)]

    def test_open_open_gap_stays(self):
        c = ((t >= 0) & (t < 5)) | ((t > 5) & (t <= 9))
        assert len(solution_set_1var(c, t)) == 2

    def test_unsat_clause_dropped(self):
        c = ((t > 5) & (t < 1)) | t.eq(2)
        assert solution_set_1var(c, t) == [Span(2, 2, False, False)]

    def test_unbounded(self):
        spans = solution_set_1var(t > 3, t)
        assert spans == [Span(3, None, True, True)]

    def test_two_variable_constraint_rejected(self):
        with pytest.raises(ConstraintError):
            solution_set_1var((x < y), x)


class TestSpansSubset:
    def test_subset(self):
        inner = [Span(1, 2, False, False)]
        outer = [Span(0, 5, False, False)]
        assert spans_subset(inner, outer)
        assert not spans_subset(outer, inner)

    def test_multi_fragment(self):
        inner = [Span(1, 2, False, False), Span(6, 7, False, False)]
        outer = [Span(0, 3, False, False), Span(5, 9, False, False)]
        assert spans_subset(inner, outer)

    def test_open_closed_boundary(self):
        inner = [Span(0, 5, False, False)]   # [0, 5]
        outer = [Span(0, 5, False, True)]    # [0, 5)
        assert not spans_subset(inner, outer)
        assert spans_subset(outer, inner)

    def test_empty_inner_always_subset(self):
        assert spans_subset([], [Span(0, 1, False, False)])
        assert spans_subset([], [])


class TestNormalizeSpans:
    def test_merges_and_sorts(self):
        spans = [Span(5, 9, False, False), Span(0, 6, False, False)]
        assert normalize_spans(spans) == [Span(0, 9, False, False)]

    def test_drops_empty(self):
        assert normalize_spans([Span(5, 1, False, False)]) == []


class TestEntails:
    def test_interval_containment(self):
        assert entails((t > 3) & (t < 5), (t > 0) & (t < 10))
        assert not entails((t > 0) & (t < 10), (t > 3) & (t < 5))

    def test_reflexive(self):
        c = (t > 3) & (t < 5)
        assert entails(c, c)

    def test_false_entails_everything(self):
        assert entails(FALSE, t < 0)

    def test_everything_entails_true(self):
        assert entails((t > 3), TRUE)

    def test_true_does_not_entail_false(self):
        assert not entails(TRUE, FALSE)

    def test_generalized_interval_entailment(self):
        inner = ((t > 1) & (t < 2)) | ((t > 6) & (t < 7))
        outer = ((t > 0) & (t < 3)) | ((t > 5) & (t < 8))
        assert entails(inner, outer)
        assert not entails(outer, inner)

    def test_multi_variable_entailment(self):
        assert entails((x < y) & (y < z), x < z)
        assert not entails((x < y), y < x)

    def test_equality_entails_nonstrict(self):
        assert entails(x.eq(y), Comparison(x, "<=", y))

    def test_boundary_strictness(self):
        assert not entails((t >= 0) & (t <= 5), (t > 0) & (t < 5))
        assert entails((t > 0) & (t < 5), (t >= 0) & (t <= 5))

    def test_string_fallback_path(self):
        # Strings force the generic (non-span) procedure.
        assert entails(x.eq("a"), x.ne("b"))


class TestEquivalent:
    def test_syntactic_variants(self):
        a = (t > 1) & (t < 5)
        b = (t < 5) & (t > 1)
        assert equivalent(a, b)

    def test_split_interval_not_equivalent(self):
        a = (t > 1) & (t < 5)
        b = ((t > 1) & (t < 3)) | ((t > 3) & (t < 5))
        assert not equivalent(a, b)

    def test_split_covering_point(self):
        a = (t > 1) & (t < 5)
        b = ((t > 1) & (t < 3)) | t.eq(3) | ((t > 3) & (t < 5))
        assert equivalent(a, b)


class TestSimplify:
    def test_drops_dead_clause(self):
        c = ((t > 5) & (t < 1)) | (t > 3)
        assert simplify(c) == (t > 3)

    def test_removes_redundant_atom(self):
        c = (t > 3) & (t > 1)
        assert simplify(c) == (t > 3)

    def test_false_when_unsat(self):
        assert simplify((t > 5) & (t < 1)) is FALSE

    def test_equivalent_to_original(self):
        c = ((t > 1) & (t > 0) & (t < 9)) | ((t > 20) & (t < 10))
        assert equivalent(simplify(c), c)
