"""Unit tests for the constraint term layer."""

from fractions import Fraction

import pytest

from vidb.constraints.dense import Comparison
from vidb.constraints.terms import (
    Var,
    check_constant,
    compare_constants,
    constants_comparable,
    is_constant,
    is_numeric,
)
from vidb.errors import ConstraintError


class TestVar:
    def test_equality_by_name(self):
        assert Var("t") == Var("t")
        assert Var("t") != Var("u")

    def test_hash_consistent_with_equality(self):
        assert hash(Var("t")) == hash(Var("t"))
        assert len({Var("t"), Var("t"), Var("u")}) == 2

    def test_rejects_empty_name(self):
        with pytest.raises(ConstraintError):
            Var("")

    def test_rejects_non_string_name(self):
        with pytest.raises(ConstraintError):
            Var(3)  # type: ignore[arg-type]

    def test_str_and_repr(self):
        assert str(Var("t")) == "t"
        assert repr(Var("t")) == "Var('t')"

    def test_comparison_operators_build_atoms(self):
        t = Var("t")
        atom = t < 5
        assert isinstance(atom, Comparison)
        assert atom.op == "<" and atom.right == 5

    def test_eq_ne_methods_build_atoms(self):
        t = Var("t")
        assert t.eq(3).op == "="
        assert t.ne(3).op == "!="

    def test_ge_le_gt(self):
        t = Var("t")
        assert (t >= 1).op == ">="
        assert (t <= 1).op == "<="
        assert (t > 1).op == ">"


class TestConstants:
    def test_is_constant_accepts_numbers_and_strings(self):
        for value in (1, 1.5, Fraction(1, 3), "abc"):
            assert is_constant(value)

    def test_is_constant_rejects_other_types(self):
        for value in (None, [1], {"a": 1}, object()):
            assert not is_constant(value)

    def test_booleans_are_not_numeric(self):
        assert not is_numeric(True)
        assert not is_numeric(False)

    def test_check_constant_rejects_boolean(self):
        with pytest.raises(ConstraintError):
            check_constant(True)

    def test_check_constant_passes_through(self):
        assert check_constant(7) == 7
        assert check_constant("x") == "x"

    def test_numbers_comparable_across_numeric_types(self):
        assert constants_comparable(1, 2.5)
        assert constants_comparable(Fraction(1, 2), 3)

    def test_number_string_not_comparable(self):
        assert not constants_comparable(1, "1")

    def test_compare_constants_ordering(self):
        assert compare_constants(1, 2) == -1
        assert compare_constants(2, 1) == 1
        assert compare_constants(2, 2.0) == 0
        assert compare_constants("a", "b") == -1

    def test_compare_constants_rejects_mixed(self):
        with pytest.raises(ConstraintError):
            compare_constants(1, "a")
