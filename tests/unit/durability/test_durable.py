"""Unit tests for DurableDatabase: journaling, checkpoints, shipping."""

import pytest

from vidb.durability.durable import DurableDatabase
from vidb.durability.recovery import recover
from vidb.durability.snapshot import list_snapshots, wal_path
from vidb.errors import DurabilityError
from vidb.model.oid import Oid
from vidb.storage.database import VideoDatabase


def seed_db():
    db = VideoDatabase("seed")
    db.new_entity("a", name="Ana")
    db.new_interval("g1", entities=["a"], duration=[(0, 10)])
    return db


def assert_same_state(left, right):
    assert left.stats() == right.stats()
    assert left.epoch == right.epoch
    assert set(left.entities()) == set(right.entities())
    assert set(left.intervals()) == set(right.intervals())
    assert left.facts() == right.facts()


class TestJournaling:
    def test_reopen_reproduces_state_and_epoch(self, tmp_path):
        with DurableDatabase(tmp_path, seed=seed_db(), fsync="never") as d:
            d.db.new_entity("b", name="Ben")
            d.db.relate("in", d.db.entity("b"), d.db.interval("g1"))
            d.db.set_attribute("a", "name", "Ana2")
            d.db.remove_object(Oid.entity("b"))
            primary = d.db
        result = recover(tmp_path)
        assert_same_state(primary, result.db)

    def test_committed_transaction_survives(self, tmp_path):
        with DurableDatabase(tmp_path, seed=seed_db(), fsync="never") as d:
            with d.db.transaction():
                d.db.new_entity("t1")
                d.db.new_entity("t2")
            primary = d.db
        recovered = recover(tmp_path).db
        assert_same_state(primary, recovered)
        assert recovered.stats()["entities"] == 3

    def test_rolled_back_transaction_is_void(self, tmp_path):
        with DurableDatabase(tmp_path, seed=seed_db(), fsync="never") as d:
            with pytest.raises(RuntimeError):
                with d.db.transaction():
                    d.db.new_entity("ghost")
                    d.db.set_attribute("a", "name", "Zoe")
                    raise RuntimeError("boom")
            primary = d.db
        result = recover(tmp_path)
        assert result.discarded > 0
        assert_same_state(primary, result.db)
        assert result.db.get(Oid.entity("ghost")) is None
        assert result.db.entity("a")["name"] == "Ana"

    def test_append_after_torn_tail_stays_recoverable(self, tmp_path):
        # recover → append → recover: the torn fragment must be cut off
        # before new frames land, otherwise the second recovery sees a
        # corrupt frame mid-log and refuses to start.
        with DurableDatabase(tmp_path, seed=seed_db(), fsync="never") as d:
            d.db.new_entity("before-crash")
        with wal_path(tmp_path).open("ab") as f:
            f.write(b"\x00\x00\x00\x99TORN")  # crash mid-append
        with DurableDatabase(tmp_path, fsync="never") as d:
            assert d.recovery.torn
            d.db.new_entity("after-crash")
            primary = d.db
        result = recover(tmp_path)
        assert not result.torn
        assert_same_state(primary, result.db)
        assert result.db.get(Oid.entity("before-crash")) is not None
        assert result.db.get(Oid.entity("after-crash")) is not None

    def test_mutation_after_close_raises(self, tmp_path):
        d = DurableDatabase(tmp_path, fsync="never")
        db = d.db
        d.close()
        db.new_entity("fine-after-detach")  # observer was removed: allowed
        d2 = DurableDatabase(tmp_path, fsync="never")
        d2._closed = True  # simulate a race: observer fires after close
        with pytest.raises(DurabilityError):
            d2.db.new_entity("lost")


class TestSeeding:
    def test_seed_populates_fresh_directory(self, tmp_path):
        with DurableDatabase(tmp_path, seed=seed_db(), fsync="never") as d:
            assert d.seeded
            assert d.db.stats()["entities"] == 1
        assert list_snapshots(tmp_path)  # initial snapshot installed

    def test_recovered_state_beats_seed(self, tmp_path):
        with DurableDatabase(tmp_path, seed=seed_db(), fsync="never") as d:
            d.db.new_entity("kept")
        other = VideoDatabase("other")
        with DurableDatabase(tmp_path, seed=other, fsync="never") as d:
            assert not d.seeded
            assert d.db.get(Oid.entity("kept")) is not None

    def test_fresh_directory_without_seed_is_empty(self, tmp_path):
        with DurableDatabase(tmp_path, name="blank", fsync="never") as d:
            assert d.db.name == "blank"
            assert d.db.epoch == 0


class TestCheckpoints:
    def test_auto_checkpoint_truncates_wal(self, tmp_path):
        with DurableDatabase(tmp_path, fsync="never",
                             checkpoint_every=3) as d:
            for i in range(7):
                d.db.new_entity(f"o{i}")
            assert d.stats()["snapshots.taken"] >= 2
            assert d.stats()["wal.since_checkpoint"] < 3
        recovered = recover(tmp_path).db
        assert recovered.stats()["entities"] == 7

    def test_no_checkpoint_inside_transaction(self, tmp_path):
        with DurableDatabase(tmp_path, fsync="never",
                             checkpoint_every=2) as d:
            with d.db.transaction():
                for i in range(10):  # would trip checkpoint_every mid-txn
                    d.db.new_entity(f"o{i}")
                with pytest.raises(DurabilityError):
                    d.checkpoint()
            d.checkpoint()  # fine once committed
        assert recover(tmp_path).db.stats()["entities"] == 10

    def test_checkpoint_prunes_old_snapshots(self, tmp_path):
        with DurableDatabase(tmp_path, fsync="never",
                             keep_snapshots=2) as d:
            for i in range(4):
                d.db.new_entity(f"o{i}")
                d.checkpoint()
            assert len(list_snapshots(tmp_path)) <= 2


class TestShipping:
    def test_up_to_date_follower_gets_nothing(self, tmp_path):
        with DurableDatabase(tmp_path, seed=seed_db(), fsync="never") as d:
            reply = d.ship(after_lsn=d.last_lsn)
            assert reply["records"] == []
            assert "snapshot" not in reply

    def test_stale_follower_gets_resync(self, tmp_path):
        with DurableDatabase(tmp_path, seed=seed_db(), fsync="never") as d:
            d.db.new_entity("x")
            d.checkpoint()
            reply = d.ship(after_lsn=-1)
            assert reply["resync"] is True
            assert reply["snapshot"]["wal_lsn"] == d.snapshot_lsn

    def test_ship_fsyncs_before_exposing_records(self, tmp_path):
        # A follower must only ever see durable LSNs: a flushed-but-lost
        # tail would be reassigned to different mutations after a crash.
        with DurableDatabase(tmp_path, fsync="never") as d:
            d.db.new_entity("x")
            before = d.stats()["wal.syncs"]
            d.ship(after_lsn=d.snapshot_lsn)
            assert d.stats()["wal.syncs"] == before + 1

    def test_limit_caps_records(self, tmp_path):
        with DurableDatabase(tmp_path, fsync="never") as d:
            for i in range(5):
                d.db.new_entity(f"o{i}")
            reply = d.ship(after_lsn=d.snapshot_lsn, limit=2)
            assert len(reply["records"]) == 2


class TestWrapper:
    def test_reads_delegate_to_inner_database(self, tmp_path):
        with DurableDatabase(tmp_path, seed=seed_db(), fsync="never") as d:
            assert d.entity("a")["name"] == "Ana"
            assert d.epoch == d.db.epoch
            assert d.stats()["wal.last_lsn"] == d.last_lsn  # stats NOT delegated

    def test_stats_keys(self, tmp_path):
        with DurableDatabase(tmp_path, fsync="never") as d:
            stats = d.stats()
        for key in ("wal.last_lsn", "wal.records", "wal.bytes", "wal.syncs",
                    "wal.since_checkpoint", "wal.ships", "snapshots.taken",
                    "snapshots.lsn", "recovery.replayed",
                    "recovery.discarded", "recovery.torn_tail"):
            assert key in stats

    def test_close_with_checkpoint(self, tmp_path):
        d = DurableDatabase(tmp_path, fsync="never")
        d.db.new_entity("x")
        d.close(checkpoint=True)
        assert wal_path(tmp_path).stat().st_size > 0  # checkpoint frame
        result = recover(tmp_path)
        assert result.replayed == 0  # everything inside the snapshot
        assert result.db.stats()["entities"] == 1
