"""Unit tests for crash recovery: snapshot choice, replay, fault injection."""

import json

import pytest

from vidb.durability.records import (
    CHECKPOINT,
    TXN_ABORT,
    TXN_BEGIN,
    TXN_COMMIT,
    encode_event,
    encode_object,
)
from vidb.durability.recovery import recover, replay_records
from vidb.durability.snapshot import snapshot_path, wal_path, write_snapshot
from vidb.durability.wal import WalRecord, WalWriter
from vidb.errors import RecoveryError, WalCorruptionError
from vidb.model.objects import EntityObject
from vidb.model.oid import Oid
from vidb.storage.database import VideoDatabase


def entity_record(lsn, oid, **attrs):
    return WalRecord(lsn, "add",
                     encode_object(EntityObject(Oid.entity(oid), attrs)))


def append_entity(writer, oid, **attrs):
    type_, data = encode_event(("add", EntityObject(Oid.entity(oid), attrs)))
    return writer.append(type_, data)


class TestReplay:
    def test_bare_records_apply(self):
        db = VideoDatabase("r")
        applied, discarded = replay_records(
            db, [entity_record(1, "a"), entity_record(2, "b")])
        assert (applied, discarded) == (2, 0)
        assert db.stats()["entities"] == 2

    def test_after_lsn_skips_covered_records(self):
        db = VideoDatabase("r")
        applied, _ = replay_records(
            db, [entity_record(1, "a"), entity_record(2, "b")], after_lsn=1)
        assert applied == 1
        assert db.get(Oid.entity("a")) is None

    def test_committed_transaction_applies_atomically(self):
        db = VideoDatabase("r")
        records = [WalRecord(1, TXN_BEGIN), entity_record(2, "a"),
                   entity_record(3, "b"), WalRecord(4, TXN_COMMIT)]
        applied, discarded = replay_records(db, records)
        assert (applied, discarded) == (2, 0)
        assert db.stats()["entities"] == 2

    def test_aborted_transaction_is_void(self):
        db = VideoDatabase("r")
        records = [WalRecord(1, TXN_BEGIN), entity_record(2, "a"),
                   WalRecord(3, TXN_ABORT), entity_record(4, "b")]
        applied, discarded = replay_records(db, records)
        assert (applied, discarded) == (1, 1)
        assert db.get(Oid.entity("a")) is None
        assert db.get(Oid.entity("b")) is not None

    def test_unterminated_transaction_is_void(self):
        db = VideoDatabase("r")
        records = [entity_record(1, "a"), WalRecord(2, TXN_BEGIN),
                   entity_record(3, "b")]
        applied, discarded = replay_records(db, records)
        assert (applied, discarded) == (1, 1)
        assert db.get(Oid.entity("b")) is None

    def test_checkpoint_records_are_skipped(self):
        db = VideoDatabase("r")
        records = [WalRecord(1, CHECKPOINT, {"snapshot_lsn": 0}),
                   entity_record(2, "a")]
        applied, _ = replay_records(db, records)
        assert applied == 1

    def test_unknown_record_type_raises(self):
        with pytest.raises(RecoveryError):
            replay_records(VideoDatabase("r"), [WalRecord(1, "explode")])

    def test_unapplicable_record_raises(self):
        # removing an object that does not exist must not pass silently
        record = WalRecord(1, "remove_object",
                           {"oid": {"$oid": {"kind": "entity",
                                             "parts": ["ghost"]}}})
        with pytest.raises(RecoveryError):
            replay_records(VideoDatabase("r"), [record])


class TestRecover:
    def test_empty_directory_recovers_empty(self, tmp_path):
        result = recover(tmp_path, default_name="fresh")
        assert result.empty
        assert result.db.name == "fresh"
        assert result.db.epoch == 0

    def test_snapshot_plus_tail(self, tmp_path):
        db = VideoDatabase("r")
        db.new_entity("a", name="Ana")
        write_snapshot(db, tmp_path, 2)
        with WalWriter(wal_path(tmp_path), fsync="never", next_lsn=1) as w:
            append_entity(w, "covered")      # lsn 1: already in the snapshot
            append_entity(w, "covered2")     # lsn 2: already in the snapshot
            append_entity(w, "tail", name="Tail")  # lsn 3: must replay
        result = recover(tmp_path)
        assert result.snapshot_lsn == 2
        assert result.replayed == 1
        assert result.last_lsn == 3
        assert result.db.entity("tail")["name"] == "Tail"
        assert result.db.get(Oid.entity("covered")) is None

    def test_torn_tail_is_dropped(self, tmp_path):
        with WalWriter(wal_path(tmp_path), fsync="never") as w:
            append_entity(w, "a")
        with wal_path(tmp_path).open("ab") as f:
            f.write(b"\x00\x00\x00")
        result = recover(tmp_path)
        assert result.torn
        assert result.replayed == 1
        assert not result.empty

    def test_midlog_corruption_raises(self, tmp_path):
        with WalWriter(wal_path(tmp_path), fsync="never") as w:
            append_entity(w, "a")
            append_entity(w, "b")
        blob = bytearray(wal_path(tmp_path).read_bytes())
        blob[10] ^= 0xFF  # inside the first frame, second frame intact
        wal_path(tmp_path).write_bytes(bytes(blob))
        with pytest.raises(WalCorruptionError):
            recover(tmp_path)

    def test_corrupt_newest_snapshot_falls_back(self, tmp_path):
        db = VideoDatabase("r")
        db.new_entity("old", name="Old")
        write_snapshot(db, tmp_path, 1)
        snapshot_path(tmp_path, 9).write_text("{broken", encoding="utf-8")
        result = recover(tmp_path)
        assert result.snapshot_lsn == 1
        assert len(result.skipped_snapshots) == 1
        assert result.db.entity("old")["name"] == "Old"

    def test_all_snapshots_corrupt_replays_from_zero(self, tmp_path):
        snapshot_path(tmp_path, 5).write_text("{broken", encoding="utf-8")
        with WalWriter(wal_path(tmp_path), fsync="never") as w:
            append_entity(w, "a")
        result = recover(tmp_path)
        assert result.snapshot_path is None
        assert result.replayed == 1
        assert len(result.skipped_snapshots) == 1

    def test_summary_shape(self, tmp_path):
        summary = recover(tmp_path).summary()
        assert summary == {"snapshot": None, "snapshot_lsn": 0,
                           "last_lsn": 0, "replayed": 0, "discarded": 0,
                           "torn_tail": False, "skipped_snapshots": 0}
        json.dumps(summary)  # must stay JSON-serializable for the CLI
