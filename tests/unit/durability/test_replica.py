"""Unit tests for log-shipping replicas (file and server transports)."""

import pytest

from vidb.durability.durable import DurableDatabase
from vidb.durability.replica import Replica, ShipBatch
from vidb.durability.wal import WalRecord
from vidb.errors import ReplicationError
from vidb.model.oid import Oid
from vidb.storage.database import VideoDatabase


def seed_db():
    db = VideoDatabase("seed")
    db.new_entity("a", name="Ana")
    db.new_interval("g1", entities=["a"], duration=[(0, 10)])
    return db


def assert_converged(replica, primary):
    assert replica.lag() == 0
    assert replica.db.stats() == primary.db.stats()
    assert replica.db.epoch == primary.db.epoch
    assert set(replica.db.entities()) == set(primary.db.entities())
    assert replica.db.facts() == primary.db.facts()


@pytest.fixture
def primary(tmp_path):
    with DurableDatabase(tmp_path / "data", seed=seed_db(),
                         fsync="never") as d:
        yield d


class TestFileReplica:
    def test_missing_directory_rejected(self, tmp_path):
        with pytest.raises(ReplicationError):
            Replica.from_data_dir(tmp_path / "nope")

    def test_bootstrap_loads_snapshot(self, primary):
        replica = Replica.from_data_dir(primary.data_dir)
        assert replica.db.entity("a")["name"] == "Ana"
        assert replica.resyncs == 1

    def test_tailing_converges(self, primary):
        replica = Replica.from_data_dir(primary.data_dir)
        primary.db.new_entity("b", name="Ben")
        primary.db.relate("in", primary.db.entity("b"),
                          primary.db.interval("g1"))
        replica.poll()
        assert_converged(replica, primary)
        # idempotent: nothing new applied on a quiet log
        assert replica.poll() == 0
        assert replica.lag() == 0

    def test_rotation_triggers_resync_only_when_behind(self, primary):
        replica = Replica.from_data_dir(primary.data_dir)
        primary.db.new_entity("b")
        replica.poll()
        position = replica.applied_lsn
        primary.checkpoint()               # truncates the WAL under us
        primary.db.new_entity("c")
        replica.poll()
        assert_converged(replica, primary)
        # the replica had everything up to the checkpoint already, so it
        # should have rewound its offset, not reloaded the snapshot
        assert replica.resyncs == 1
        assert replica.applied_lsn > position

    def test_rotation_resync_when_records_were_truncated(self, primary):
        replica = Replica.from_data_dir(primary.data_dir)
        primary.db.new_entity("b")
        primary.checkpoint()               # replica never saw lsn of "b"
        primary.db.new_entity("c")
        replica.poll()
        assert_converged(replica, primary)
        assert replica.resyncs == 2        # bootstrap + genuine resync

    def test_aborted_transactions_never_surface(self, primary):
        replica = Replica.from_data_dir(primary.data_dir)
        with pytest.raises(RuntimeError):
            with primary.db.transaction():
                primary.db.new_entity("ghost")
                raise RuntimeError("boom")
        with primary.db.transaction():
            primary.db.new_entity("real")
        replica.poll()
        assert_converged(replica, primary)
        assert replica.db.get(Oid.entity("ghost")) is None
        assert replica.records_discarded > 0

    def test_stats_shape(self, primary):
        replica = Replica.from_data_dir(primary.data_dir)
        stats = replica.stats()
        for key in ("replica.applied_lsn", "replica.visible_lsn",
                    "replica.lag", "replica.records_applied",
                    "replica.records_discarded", "replica.polls",
                    "replica.resyncs"):
            assert key in stats


def _rel(lsn, name):
    return WalRecord(lsn, "declare_relation", {"name": name})


class GappySource:
    """Ships a batch with an LSN gap; serves a resync on ``fetch(-1)``.

    Models the race the durability lock now prevents on the primary: a
    checkpoint truncating records between the follower's position and
    the shipped batch.  The replica must notice the gap and force a
    resync rather than silently skip the truncated records.
    """

    def __init__(self):
        self.resync_requests = 0

    def bootstrap(self):
        return ShipBatch([_rel(1, "r1")], 1)

    def fetch(self, after_lsn):
        if after_lsn == -1:
            self.resync_requests += 1
            db = VideoDatabase("snap")
            db.declare_relation("r1")
            db.declare_relation("r2")  # the record the gap would skip
            return ShipBatch([_rel(4, "r3")], 4, resync_db=db, resync_lsn=3)
        return ShipBatch([_rel(4, "r3")], 4)  # gap: follower holds LSN 1


class StubbornGapSource(GappySource):
    def fetch(self, after_lsn):  # never closes the gap, even on resync
        return ShipBatch([_rel(4, "r3")], 4)


class TestGapDetection:
    def test_lsn_gap_forces_resync(self):
        source = GappySource()
        replica = Replica(source)
        assert replica.applied_lsn == 1
        replica.poll()
        assert source.resync_requests == 1
        assert replica.resyncs == 1
        assert replica.applied_lsn == 4
        assert replica.lag() == 0
        # the truncated record arrived via the snapshot, not skipped
        assert replica.db.relation_names() >= {"r1", "r2", "r3"}

    def test_unclosable_gap_raises(self):
        replica = Replica(StubbornGapSource())
        with pytest.raises(ReplicationError):
            replica.poll()


class TestServerReplica:
    @pytest.fixture
    def served(self, tmp_path):
        from vidb.service.executor import ServiceExecutor
        from vidb.service.server import ServiceClient, VideoServer

        durable = DurableDatabase(tmp_path / "data", seed=seed_db(),
                                  fsync="never")
        service = ServiceExecutor(durable, max_workers=2)
        server = VideoServer(service).start_background()
        client = ServiceClient(*server.address)
        try:
            yield durable, client
        finally:
            client.close()
            server.shutdown()
            service.close()

    def test_bootstrap_and_tail_over_the_wire(self, served):
        durable, client = served
        client.insert_entity("b", name="Ben")
        replica = Replica.from_client(client)
        assert replica.resyncs == 1        # bootstrap is a forced resync
        client.insert_entity("c", name="Cy")
        replica.poll()
        assert replica.lag() == 0
        assert replica.db.entity("c")["name"] == "Cy"
        assert replica.db.stats() == durable.db.stats()
        assert replica.db.epoch == durable.db.epoch

    def test_follower_behind_checkpoint_gets_snapshot(self, served):
        durable, client = served
        replica = Replica.from_client(client)
        client.insert_entity("b")
        durable.checkpoint()
        client.insert_entity("c")
        replica.poll()
        assert replica.lag() == 0
        assert replica.db.get(Oid.entity("b")) is not None
        assert replica.db.get(Oid.entity("c")) is not None

    def test_wal_op_requires_durable_service(self, tmp_path):
        from vidb.errors import ServiceError
        from vidb.service.executor import ServiceExecutor
        from vidb.service.server import ServiceClient, VideoServer

        service = ServiceExecutor(seed_db(), max_workers=2)
        server = VideoServer(service).start_background()
        client = ServiceClient(*server.address)
        try:
            with pytest.raises(ServiceError):
                client.wal(after=0)
        finally:
            client.close()
            server.shutdown()
            service.close()
