"""Unit tests for atomic snapshot install, listing, and pruning."""

import pytest

from vidb.durability.snapshot import (
    list_snapshots,
    load_snapshot,
    prune_snapshots,
    snapshot_path,
    wal_path,
    write_snapshot,
)
from vidb.errors import SnapshotError
from vidb.storage.database import VideoDatabase


@pytest.fixture
def db():
    database = VideoDatabase("snap")
    database.new_entity("a", name="Ana")
    database.new_interval("g1", entities=["a"], duration=[(0, 10)])
    database.relate("in", database.entity("a"), database.interval("g1"))
    return database


class TestPaths:
    def test_snapshot_name_is_sortable(self, tmp_path):
        assert snapshot_path(tmp_path, 42).name == f"snapshot-{42:016d}.json"
        assert wal_path(tmp_path).name == "wal.log"


class TestWriteLoad:
    def test_roundtrip_state_epoch_and_lsn(self, tmp_path, db):
        path = write_snapshot(db, tmp_path, 17)
        restored, lsn = load_snapshot(path)
        assert lsn == 17
        assert restored.stats() == db.stats()
        assert restored.epoch == db.epoch
        assert restored.entity("a") == db.entity("a")

    def test_install_leaves_no_temp_files(self, tmp_path, db):
        write_snapshot(db, tmp_path, 1)
        leftovers = [p.name for p in tmp_path.iterdir()
                     if p.name.endswith(".tmp")]
        assert leftovers == []

    def test_creates_data_directory(self, tmp_path, db):
        target = tmp_path / "deep" / "dir"
        write_snapshot(db, target, 1)
        assert list_snapshots(target)

    def test_unreadable_snapshot_raises(self, tmp_path):
        path = snapshot_path(tmp_path, 3)
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(SnapshotError):
            load_snapshot(path)
        with pytest.raises(SnapshotError):
            load_snapshot(tmp_path / "absent.json")

    def test_invalid_wal_lsn_raises(self, tmp_path, db):
        path = write_snapshot(db, tmp_path, 1)
        import json
        data = json.loads(path.read_text(encoding="utf-8"))
        data["wal_lsn"] = "seven"
        path.write_text(json.dumps(data), encoding="utf-8")
        with pytest.raises(SnapshotError):
            load_snapshot(path)


class TestListingAndPruning:
    def test_newest_first_and_strays_ignored(self, tmp_path, db):
        for lsn in (3, 11, 7):
            write_snapshot(db, tmp_path, lsn)
        (tmp_path / "snapshot-oops.json").write_text("{}", encoding="utf-8")
        assert [lsn for lsn, _ in list_snapshots(tmp_path)] == [11, 7, 3]

    def test_missing_directory_lists_empty(self, tmp_path):
        assert list_snapshots(tmp_path / "nope") == []

    def test_prune_keeps_newest(self, tmp_path, db):
        for lsn in range(5):
            write_snapshot(db, tmp_path, lsn)
        removed = prune_snapshots(tmp_path, keep=2)
        assert removed == 3
        assert [lsn for lsn, _ in list_snapshots(tmp_path)] == [4, 3]

    def test_prune_always_keeps_at_least_one(self, tmp_path, db):
        write_snapshot(db, tmp_path, 1)
        assert prune_snapshots(tmp_path, keep=0) == 0
        assert list_snapshots(tmp_path)
