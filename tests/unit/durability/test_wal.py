"""Unit tests for the WAL frame format, writer, and fault tolerance."""

import struct

import pytest

from vidb.durability.wal import (
    FSYNC_POLICIES,
    WalRecord,
    WalWriter,
    encode_frame,
    last_lsn,
    read_wal,
)
from vidb.errors import DurabilityError, WalCorruptionError


@pytest.fixture
def wal(tmp_path):
    return tmp_path / "wal.log"


def write_records(path, n, fsync="never"):
    with WalWriter(path, fsync=fsync) as writer:
        for i in range(n):
            writer.append("add", {"i": i})
    return path


class TestFrameCodec:
    def test_roundtrip(self, wal):
        record = WalRecord(7, "add", {"oid": "o1", "x": [1, 2]})
        wal.write_bytes(encode_frame(record))
        result = read_wal(wal)
        assert result.records == [record]
        assert not result.torn
        assert result.offset == wal.stat().st_size

    def test_record_equality_and_repr(self):
        a = WalRecord(1, "add", {"x": 1})
        assert a == WalRecord(1, "add", {"x": 1})
        assert a != WalRecord(2, "add", {"x": 1})
        assert "lsn=1" in repr(a)

    @pytest.mark.parametrize("payload", [
        [],                       # not a dict
        {},                       # missing lsn/type
        {"lsn": "x", "type": "add"},
        {"lsn": 1, "type": 2},
        {"lsn": 1, "type": "add", "data": "nope"},
    ])
    def test_from_dict_rejects_malformed(self, payload):
        with pytest.raises(WalCorruptionError):
            WalRecord.from_dict(payload)

    def test_missing_file_reads_empty(self, wal):
        result = read_wal(wal)
        assert result.records == [] and result.offset == 0 and not result.torn


class TestWriter:
    def test_lsns_are_monotonic(self, wal):
        with WalWriter(wal, fsync="never") as writer:
            assert [writer.append("add", {}) for _ in range(3)] == [1, 2, 3]
            assert writer.next_lsn == 4
            assert writer.last_lsn == 3
        assert [r.lsn for r in read_wal(wal).records] == [1, 2, 3]

    def test_next_lsn_seed_continues_sequence(self, wal):
        with WalWriter(wal, fsync="never", next_lsn=41) as writer:
            assert writer.append("add", {}) == 41

    def test_unknown_fsync_policy_rejected(self, wal):
        assert FSYNC_POLICIES == ("always", "interval", "never")
        with pytest.raises(DurabilityError):
            WalWriter(wal, fsync="sometimes")

    def test_always_syncs_every_append(self, wal):
        with WalWriter(wal, fsync="always") as writer:
            writer.append("add", {})
            writer.append("add", {})
            assert writer.sync_count == 2

    def test_interval_policy_skips_fresh_syncs(self, wal):
        with WalWriter(wal, fsync="interval", fsync_interval_s=3600) as writer:
            writer.append("add", {})
            writer.append("add", {})
            assert writer.sync_count == 0  # interval not yet elapsed

    def test_truncate_drops_frames_but_keeps_lsns(self, wal):
        with WalWriter(wal, fsync="never") as writer:
            writer.append("add", {})
            writer.append("add", {})
            writer.truncate()
            assert read_wal(wal).records == []
            assert writer.append("add", {}) == 3

    def test_append_after_close_raises(self, wal):
        writer = WalWriter(wal, fsync="never")
        writer.close()
        with pytest.raises(DurabilityError):
            writer.append("add", {})
        writer.close()  # idempotent

    def test_counters_and_tail_size(self, wal):
        with WalWriter(wal, fsync="never") as writer:
            writer.append("add", {"k": "v"})
            assert writer.records_written == 1
            assert writer.bytes_written == writer.tail_size()


class TestFaultTolerance:
    def test_torn_header_is_tolerated(self, wal):
        write_records(wal, 3)
        with wal.open("ab") as f:
            f.write(b"\x00\x00")  # half a header
        result = read_wal(wal)
        assert [r.data["i"] for r in result.records] == [0, 1, 2]
        assert result.torn

    def test_torn_payload_is_tolerated(self, wal):
        write_records(wal, 2)
        good = wal.stat().st_size
        with wal.open("ab") as f:
            f.write(struct.pack(">II", 500, 0) + b"short")
        result = read_wal(wal)
        assert len(result.records) == 2
        assert result.torn
        assert result.offset == good

    def test_corrupt_final_frame_is_torn_not_fatal(self, wal):
        write_records(wal, 2)
        blob = bytearray(wal.read_bytes())
        blob[-1] ^= 0xFF  # flip a byte inside the last payload
        wal.write_bytes(bytes(blob))
        result = read_wal(wal)
        assert len(result.records) == 1
        assert result.torn

    def test_corruption_mid_log_raises(self, wal):
        write_records(wal, 3)
        first = len(encode_frame(WalRecord(1, "add", {"i": 0})))
        blob = bytearray(wal.read_bytes())
        blob[first - 1] ^= 0xFF  # damage frame 1; frames 2-3 intact after
        wal.write_bytes(bytes(blob))
        with pytest.raises(WalCorruptionError):
            read_wal(wal)

    def test_truncate_to_cuts_torn_tail_before_appending(self, wal):
        write_records(wal, 2)
        good = wal.stat().st_size
        with wal.open("ab") as f:
            f.write(struct.pack(">II", 500, 0) + b"short")  # torn frame
        with WalWriter(wal, fsync="never", next_lsn=3,
                       truncate_to=good) as writer:
            writer.append("add", {"i": 2})
        result = read_wal(wal)  # would raise mid-log corruption untruncated
        assert [r.lsn for r in result.records] == [1, 2, 3]
        assert not result.torn

    def test_truncate_to_full_size_is_a_noop(self, wal):
        write_records(wal, 2)
        size = wal.stat().st_size
        with WalWriter(wal, fsync="never", next_lsn=3, truncate_to=size):
            pass
        assert wal.stat().st_size == size
        assert len(read_wal(wal).records) == 2

    def test_resume_from_offset(self, wal):
        write_records(wal, 2)
        first_scan = read_wal(wal)
        with WalWriter(wal, fsync="never", next_lsn=3) as writer:
            writer.append("add", {"i": 2})
        resumed = read_wal(wal, offset=first_scan.offset)
        assert [r.lsn for r in resumed.records] == [3]

    def test_last_lsn_helper(self, wal):
        assert last_lsn(wal) == (0, False)
        write_records(wal, 2)
        with wal.open("ab") as f:
            f.write(b"\x01")
        assert last_lsn(wal) == (2, True)
