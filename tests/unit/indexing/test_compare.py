"""Unit tests for the scheme-comparison harness (E1-E3)."""

from vidb.indexing.base import retrieval_quality
from vidb.indexing.compare import (
    build_all,
    compare,
    point_query_accuracy,
    schedule_span,
)
from vidb.indexing.generalized import GeneralizedIntervalIndex
from vidb.intervals.generalized import GeneralizedInterval
from vidb.workloads.paper import news_schedule


def gi(*pairs):
    return GeneralizedInterval.from_pairs(pairs)


class TestScheduleSpan:
    def test_hull(self):
        schedule = {"a": gi((5, 10)), "b": gi((0, 3), (20, 30))}
        assert schedule_span(schedule) == (0, 30)

    def test_empty_schedule(self):
        assert schedule_span({}) == (0, 1)


class TestRetrievalQuality:
    def test_perfect_store(self):
        schedule = {"a": gi((0, 10))}
        store = GeneralizedIntervalIndex()
        store.annotate("a", 0, 10)
        quality = retrieval_quality(store, schedule)
        assert quality == {"precision": 1.0, "recall": 1.0, "f1": 1.0}

    def test_over_reporting_costs_precision(self):
        schedule = {"a": gi((0, 10))}
        store = GeneralizedIntervalIndex()
        store.annotate("a", 0, 20)
        quality = retrieval_quality(store, schedule)
        assert quality["precision"] == 0.5 and quality["recall"] == 1.0

    def test_under_reporting_costs_recall(self):
        schedule = {"a": gi((0, 10))}
        store = GeneralizedIntervalIndex()
        store.annotate("a", 0, 5)
        quality = retrieval_quality(store, schedule)
        assert quality["precision"] == 1.0 and quality["recall"] == 0.5

    def test_missing_descriptor_counts_against_recall(self):
        schedule = {"a": gi((0, 10)), "b": gi((0, 10))}
        store = GeneralizedIntervalIndex()
        store.annotate("a", 0, 10)
        quality = retrieval_quality(store, schedule)
        assert quality["recall"] == 0.5


class TestBuildAllAndCompare:
    def test_stores_share_occurrences(self):
        stores = build_all(news_schedule(), segment_count=10)
        assert [s.scheme for s in stores] == [
            "segmentation", "stratification", "generalized"]
        for store in stores:
            assert store.descriptors() == frozenset(news_schedule())

    def test_comparison_reproduces_paper_ordering(self):
        rows = compare(news_schedule(), segment_count=18)
        by_scheme = {row["scheme"]: row for row in rows}
        # Generalized: one record per descriptor — the fewest.
        assert by_scheme["generalized"]["records"] == 3
        assert (by_scheme["generalized"]["records"]
                < by_scheme["stratification"]["records"]
                <= by_scheme["segmentation"]["records"])
        # Stratification and generalized are exact; segmentation is not.
        assert by_scheme["generalized"]["precision"] == 1.0
        assert by_scheme["stratification"]["precision"] == 1.0
        assert by_scheme["segmentation"]["precision"] < 1.0
        # All schemes achieve full recall (they never drop an occurrence).
        assert all(row["recall"] == 1.0 for row in rows)

    def test_segmentation_point_accuracy_improves_with_finer_grid(self):
        coarse = compare(news_schedule(), segment_count=4)[0]
        fine = compare(news_schedule(), segment_count=90)[0]
        assert fine["point_accuracy"] >= coarse["point_accuracy"]

    def test_point_query_accuracy_bounds(self):
        store = build_all(news_schedule(), segment_count=10)[2]
        accuracy = point_query_accuracy(store, news_schedule(), 50)
        assert accuracy == 1.0
