"""Unit tests for indexing-scheme conversions."""

import pytest

from vidb.indexing.conversion import (
    generalized_to_stratification,
    segmentation_to_stratification,
    stratification_to_generalized,
    upgrade,
)
from vidb.indexing.generalized import GeneralizedIntervalIndex
from vidb.indexing.segmentation import SegmentationIndex
from vidb.indexing.stratification import StratificationIndex
from vidb.workloads.paper import news_schedule


@pytest.fixture
def stratified():
    index = StratificationIndex()
    for label, footprint in news_schedule().items():
        for fragment in footprint:
            index.annotate(label, fragment.lo, fragment.hi)
    return index


class TestStratificationToGeneralized:
    def test_footprints_preserved(self, stratified):
        generalized = stratification_to_generalized(stratified)
        for descriptor in stratified.descriptors():
            assert generalized.footprint(descriptor) == \
                stratified.footprint(descriptor)

    def test_record_count_collapses(self, stratified):
        generalized = stratification_to_generalized(stratified)
        assert generalized.descriptor_count() == 3       # one per object
        assert stratified.descriptor_count() == 6        # one per stratum

    def test_roundtrip_footprints_stable(self, stratified):
        generalized = stratification_to_generalized(stratified)
        back = generalized_to_stratification(generalized)
        for descriptor in stratified.descriptors():
            assert back.footprint(descriptor) == \
                stratified.footprint(descriptor)


class TestSegmentationToStratification:
    def test_coarsened_but_faithful_to_segmentation(self):
        seg = SegmentationIndex(0, 90, [30, 60])
        seg.annotate("a", 10, 40)   # snaps to [0,30) + [30,60)
        strat = segmentation_to_stratification(seg)
        assert strat.footprint("a") == seg.footprint("a")

    def test_multiple_descriptors(self):
        seg = SegmentationIndex(0, 60, [30])
        seg.annotate("a", 0, 10)
        seg.annotate("b", 35, 50)
        strat = segmentation_to_stratification(seg)
        assert strat.descriptors() == frozenset({"a", "b"})


class TestUpgrade:
    def test_from_each_scheme(self, stratified):
        seg = SegmentationIndex(0, 180, [60, 120])
        seg.annotate("x", 10, 50)
        for index in (seg, stratified, GeneralizedIntervalIndex()):
            upgraded = upgrade(index)
            assert isinstance(upgraded, GeneralizedIntervalIndex)

    def test_upgrade_is_identity_on_generalized(self):
        index = GeneralizedIntervalIndex()
        index.annotate("x", 0, 5)
        assert upgrade(index) is index

    def test_upgrade_preserves_footprints(self, stratified):
        upgraded = upgrade(stratified)
        for descriptor in stratified.descriptors():
            assert upgraded.footprint(descriptor) == \
                stratified.footprint(descriptor)

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            upgrade("not a store")
