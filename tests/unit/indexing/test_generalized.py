"""Unit tests for generalized-interval indexing (Figure 3)."""

from vidb.indexing.generalized import GeneralizedIntervalIndex, to_database
from vidb.intervals.generalized import GeneralizedInterval
from vidb.query.engine import QueryEngine


class TestIndex:
    def test_single_identifier_per_descriptor(self):
        index = GeneralizedIntervalIndex()
        index.annotate("reporter", 0, 25)
        index.annotate("reporter", 60, 80)
        index.annotate("reporter", 130, 150)
        assert index.descriptor_count() == 1          # the Figure 3 property
        assert index.fragment_count() == 3
        assert index.footprint("reporter") == GeneralizedInterval.from_pairs(
            [(0, 25), (60, 80), (130, 150)])

    def test_overlapping_annotations_merge(self):
        index = GeneralizedIntervalIndex()
        index.annotate("x", 0, 10)
        index.annotate("x", 5, 15)
        assert index.fragment_count() == 1
        assert index.footprint("x").measure == 15

    def test_at(self):
        index = GeneralizedIntervalIndex()
        index.annotate("a", 0, 10)
        index.annotate("b", 5, 15)
        assert index.at(7) == frozenset({"a", "b"})
        assert index.at(12) == frozenset({"b"})

    def test_unknown_descriptor(self):
        assert GeneralizedIntervalIndex().footprint("ghost").is_empty()

    def test_co_occurring(self):
        index = GeneralizedIntervalIndex()
        index.annotate("a", 0, 10)
        index.annotate("b", 5, 15)
        index.annotate("c", 20, 30)
        assert index.co_occurring("a") == frozenset({"b"})


class TestToDatabase:
    def _index(self):
        index = GeneralizedIntervalIndex()
        index.annotate("reporter", 0, 25)
        index.annotate("reporter", 60, 80)
        index.annotate("minister", 20, 70)
        return index

    def test_entities_and_intervals_created(self):
        db = to_database(self._index(), name="news")
        assert db.stats() == {"entities": 2, "intervals": 2, "facts": 0}
        assert db.name == "news"

    def test_footprints_preserved(self):
        db = to_database(self._index())
        assert db.interval("gi_reporter").footprint() == \
            GeneralizedInterval.from_pairs([(0, 25), (60, 80)])

    def test_database_is_queryable(self):
        db = to_database(self._index())
        engine = QueryEngine(db)
        answers = engine.query(
            "?- interval(G), object(o_reporter), o_reporter in G.entities.")
        assert [str(r[0]) for r in answers.rows()] == ["gi_reporter"]

    def test_validates_cleanly(self):
        db = to_database(self._index())
        assert db.sequence.validate() == []
