"""Unit tests for segmentation indexing (Figure 1)."""

import pytest

from vidb.errors import IntervalError
from vidb.indexing.segmentation import SegmentationIndex
from vidb.intervals.generalized import GeneralizedInterval


class TestConstruction:
    def test_boundaries_define_segments(self):
        index = SegmentationIndex(0, 180, [45, 110])
        assert [s.lo for s in index.segments] == [0, 45, 110]
        assert [s.hi for s in index.segments] == [45, 110, 180]

    def test_uniform_grid(self):
        index = SegmentationIndex.uniform(0, 100, 4)
        assert len(index.segments) == 4
        assert index.segments[1].lo == 25

    def test_empty_timeline_rejected(self):
        with pytest.raises(IntervalError):
            SegmentationIndex(10, 10, [])

    def test_boundary_outside_timeline_rejected(self):
        with pytest.raises(IntervalError):
            SegmentationIndex(0, 10, [15])

    def test_zero_segments_rejected(self):
        with pytest.raises(IntervalError):
            SegmentationIndex.uniform(0, 10, 0)

    def test_duplicate_boundaries_collapsed(self):
        index = SegmentationIndex(0, 10, [5, 5])
        assert len(index.segments) == 2


class TestAnnotation:
    def test_annotation_snaps_to_touching_segments(self):
        index = SegmentationIndex(0, 90, [30, 60])
        index.annotate("minister", 25, 40)   # straddles first boundary
        footprint = index.footprint("minister")
        # snapped to the union of the two whole segments [0,30) and [30,60)
        assert footprint.measure == 60
        assert footprint.contains_point(0) and footprint.contains_point(59)
        assert not footprint.contains_point(60)
        assert len(footprint) == 1  # half-open segments merge seamlessly

    def test_precision_loss_is_visible(self):
        index = SegmentationIndex.uniform(0, 100, 2)
        index.annotate("blip", 10, 12)
        assert index.footprint("blip").measure == 50  # whole half reported

    def test_at_returns_segment_labels(self):
        index = SegmentationIndex(0, 90, [30])
        index.annotate("a", 0, 10)
        index.annotate("b", 50, 60)
        assert index.at(5) == frozenset({"a"})
        assert index.at(40) == frozenset({"b"})

    def test_at_outside_timeline(self):
        index = SegmentationIndex(0, 10, [])
        assert index.at(-1) == frozenset()
        assert index.at(11) == frozenset()

    def test_descriptor_count_counts_records(self):
        index = SegmentationIndex(0, 90, [30, 60])
        index.annotate("x", 0, 90)   # touches all three segments
        index.annotate("y", 0, 10)   # one segment
        assert index.descriptor_count() == 4

    def test_descriptors(self):
        index = SegmentationIndex(0, 10, [])
        index.annotate("x", 0, 1)
        assert index.descriptors() == frozenset({"x"})

    def test_during(self):
        index = SegmentationIndex(0, 90, [30, 60])
        index.annotate("a", 0, 10)
        assert "a" in index.during(5, 8)
        assert "a" not in index.during(61, 70)

    def test_co_occurring(self):
        index = SegmentationIndex(0, 90, [30])
        index.annotate("a", 0, 10)
        index.annotate("b", 20, 28)
        index.annotate("c", 40, 50)
        assert index.co_occurring("a") == frozenset({"b"})
