"""Unit tests for stratification indexing (Figure 2)."""

from vidb.indexing.stratification import StratificationIndex
from vidb.intervals.generalized import GeneralizedInterval


class TestStrata:
    def test_overlapping_strata_allowed(self):
        index = StratificationIndex()
        index.annotate("broadcast news", 0, 180)
        index.annotate("politics", 0, 110)
        index.annotate("taxes", 40, 60)
        assert index.levels_at(50) == 3
        assert index.at(50) == frozenset({"broadcast news", "politics",
                                          "taxes"})

    def test_footprint_unions_strata(self):
        index = StratificationIndex()
        index.annotate("reporter", 0, 25)
        index.annotate("reporter", 60, 80)
        assert index.footprint("reporter") == GeneralizedInterval.from_pairs(
            [(0, 25), (60, 80)])

    def test_exact_footprints(self):
        index = StratificationIndex()
        index.annotate("blip", 10, 12)
        assert index.footprint("blip").measure == 2

    def test_descriptor_count_is_per_stratum(self):
        index = StratificationIndex()
        index.annotate("reporter", 0, 25)
        index.annotate("reporter", 60, 80)
        index.annotate("minister", 20, 70)
        assert index.descriptor_count() == 3      # 3 strata
        assert len(index.descriptors()) == 2      # 2 descriptors

    def test_strata_of(self):
        index = StratificationIndex()
        index.annotate("x", 0, 1)
        index.annotate("x", 5, 6)
        assert len(index.strata_of("x")) == 2
        assert index.strata_of("missing") == []

    def test_unknown_descriptor_empty_footprint(self):
        index = StratificationIndex()
        assert index.footprint("ghost").is_empty()

    def test_at_empty_index(self):
        assert StratificationIndex().at(5) == frozenset()

    def test_during(self):
        index = StratificationIndex()
        index.annotate("a", 0, 10)
        index.annotate("b", 50, 60)
        assert index.during(5, 55) == frozenset({"a", "b"})
        assert index.during(20, 30) == frozenset()
