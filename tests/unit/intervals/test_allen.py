"""Unit tests for Allen's interval relations."""

import pytest

from vidb.errors import IntervalError
from vidb.intervals import allen
from vidb.intervals.generalized import GeneralizedInterval
from vidb.intervals.interval import Interval


def gi(*pairs):
    return GeneralizedInterval.from_pairs(pairs)


#: (a, b, expected relation) — one canonical witness per relation.
CASES = [
    (Interval(0, 2), Interval(5, 9), "before"),
    (Interval(5, 9), Interval(0, 2), "after"),
    (Interval(0, 5), Interval(5, 9), "meets"),
    (Interval(5, 9), Interval(0, 5), "met_by"),
    (Interval(0, 5), Interval(3, 9), "overlaps"),
    (Interval(3, 9), Interval(0, 5), "overlapped_by"),
    (Interval(0, 3), Interval(0, 9), "starts"),
    (Interval(0, 9), Interval(0, 3), "started_by"),
    (Interval(2, 5), Interval(0, 9), "during"),
    (Interval(0, 9), Interval(2, 5), "contains"),
    (Interval(5, 9), Interval(0, 9), "finishes"),
    (Interval(0, 9), Interval(5, 9), "finished_by"),
    (Interval(2, 7), Interval(2, 7), "equals"),
]


class TestRelationClassification:
    @pytest.mark.parametrize("a, b, expected", CASES)
    def test_unique_relation(self, a, b, expected):
        assert allen.relation(a, b) == expected
        # Exactly one relation holds.
        holding = [name for name in allen.INVERSES
                   if allen.holds(name, a, b)]
        assert holding == [expected]

    @pytest.mark.parametrize("a, b, expected", CASES)
    def test_inverse_symmetry(self, a, b, expected):
        assert allen.relation(b, a) == allen.INVERSES[expected]

    def test_thirteen_relations(self):
        assert len(allen.INVERSES) == 13

    def test_unknown_relation_name(self):
        with pytest.raises(IntervalError):
            allen.holds("nearby", Interval(0, 1), Interval(2, 3))

    def test_degenerate_points_classify(self):
        # Point intervals still classify under the endpoint definitions.
        assert allen.relation(Interval(3, 3), Interval(3, 3)) == "equals"
        assert allen.relation(Interval(3, 3), Interval(3, 9)) == "starts"
        assert allen.relation(Interval(3, 3), Interval(0, 3)) == "finishes"
        assert allen.relation(Interval(3, 3), Interval(0, 9)) == "during"
        # But "meets" genuinely needs non-degenerate operands.
        assert not allen.meets(Interval(0, 5), Interval(5, 5))


class TestGeneralizedLiftings:
    def test_gi_before(self):
        assert allen.gi_before(gi((0, 2), (4, 5)), gi((6, 9)))
        assert not allen.gi_before(gi((0, 7)), gi((6, 9)))

    def test_gi_overlaps(self):
        assert allen.gi_overlaps(gi((0, 5)), gi((4, 9)))
        # Fragments interleave without sharing points:
        assert not allen.gi_overlaps(gi((0, 2), (6, 8)), gi((3, 5), (9, 10)))

    def test_gi_contains(self):
        assert allen.gi_contains(gi((0, 10), (20, 30)), gi((1, 2)))
        assert not allen.gi_contains(gi((1, 2)), gi((0, 10)))

    def test_gi_equals(self):
        assert allen.gi_equals(gi((0, 5), (5, 9)), gi((0, 9)))

    def test_gi_meets(self):
        assert allen.gi_meets(gi((0, 2), (4, 6)), gi((6, 9)))
        assert not allen.gi_meets(gi((0, 2)), gi((5, 9)))
        assert not allen.gi_meets(GeneralizedInterval.empty(), gi((0, 1)))
