"""Unit tests for the derived Allen composition table."""

import pytest

from vidb.errors import IntervalError
from vidb.intervals import allen
from vidb.intervals.composition import (
    compose,
    composition_table,
    feasible_relations,
    is_consistent_triple,
)


class TestTableStructure:
    def test_all_169_entries_present(self):
        table = composition_table()
        assert len(table) == 13 * 13
        for key, values in table.items():
            assert values  # never empty

    def test_known_entries(self):
        # classic textbook entries
        assert compose("before", "before") == frozenset({"before"})
        assert compose("meets", "meets") == frozenset({"before"})
        assert compose("during", "during") == frozenset({"during"})
        assert compose("equals", "overlaps") == frozenset({"overlaps"})
        assert compose("starts", "finishes") == frozenset({"during"})

    def test_full_uncertainty_entry(self):
        # before ; after is completely uninformative: all 13 relations
        assert compose("before", "after") == frozenset(allen.INVERSES)

    def test_equals_is_identity(self):
        for relation in allen.INVERSES:
            assert compose("equals", relation) == frozenset({relation})
            assert compose(relation, "equals") == frozenset({relation})

    def test_inverse_symmetry(self):
        # (r1 ; r2)^-1 == r2^-1 ; r1^-1
        table = composition_table()
        for (r1, r2), values in table.items():
            mirrored = compose(allen.INVERSES[r2], allen.INVERSES[r1])
            assert mirrored == frozenset(allen.INVERSES[v] for v in values)

    def test_unknown_relation_rejected(self):
        with pytest.raises(IntervalError):
            compose("near", "before")


class TestPropagation:
    def test_chain_of_befores(self):
        assert feasible_relations(["before", "meets", "before"]) == \
            frozenset({"before"})

    def test_single_step(self):
        assert feasible_relations(["during"]) == frozenset({"during"})

    def test_uncertainty_grows_then_filters(self):
        possibilities = feasible_relations(["overlaps", "overlaps"])
        assert "before" in possibilities
        assert "after" not in possibilities

    def test_empty_chain_rejected(self):
        with pytest.raises(IntervalError):
            feasible_relations([])


class TestConsistency:
    def test_consistent_triple(self):
        assert is_consistent_triple("before", "before", "before")

    def test_inconsistent_triple(self):
        assert not is_consistent_triple("before", "before", "after")

    def test_matches_concrete_witness(self):
        from vidb.intervals.interval import Interval

        a, b, c = Interval(0, 2), Interval(3, 5), Interval(6, 9)
        assert is_consistent_triple(
            allen.relation(a, b), allen.relation(b, c), allen.relation(a, c))
