"""Unit tests for generalized-interval editing utilities."""

import pytest

from vidb.errors import IntervalError
from vidb.intervals.generalized import GeneralizedInterval
from vidb.intervals.interval import Interval


def gi(*pairs):
    return GeneralizedInterval.from_pairs(pairs)


class TestTranslate:
    def test_shift_forward(self):
        assert gi((0, 5), (10, 12)).translate(100).to_pairs() == \
            [(100, 105), (110, 112)]

    def test_shift_backward(self):
        assert gi((10, 12)).translate(-10).to_pairs() == [(0, 2)]

    def test_zero_shift_identity(self):
        g = gi((0, 5), (8, 9))
        assert g.translate(0) == g

    def test_measure_preserved(self):
        g = gi((0, 5), (8, 9))
        assert g.translate(7).measure == g.measure

    def test_openness_preserved(self):
        g = GeneralizedInterval([Interval(0, 5, closed_hi=False)])
        shifted = g.translate(1)
        assert not shifted.contains_point(6)
        assert shifted.contains_point(1)

    def test_empty_translates_to_empty(self):
        assert GeneralizedInterval.empty().translate(5).is_empty()


class TestClip:
    def test_interior_window(self):
        assert gi((0, 10), (20, 30)).clip(5, 25).to_pairs() == \
            [(5, 10), (20, 25)]

    def test_window_covering_everything(self):
        g = gi((0, 10))
        assert g.clip(-5, 100) == g

    def test_disjoint_window_empty(self):
        assert gi((0, 10)).clip(50, 60).is_empty()

    def test_point_window(self):
        clipped = gi((0, 10)).clip(5, 5)
        assert clipped.measure == 0 and clipped.contains_point(5)


class TestDilate:
    def test_pads_both_sides(self):
        assert gi((5, 10)).dilate(2).to_pairs() == [(3, 12)]

    def test_merges_when_padding_bridges_gap(self):
        assert gi((0, 4), (6, 10)).dilate(1).to_pairs() == [(-1, 11)]

    def test_zero_margin_identity(self):
        g = gi((0, 4), (6, 10))
        assert g.dilate(0) == g

    def test_negative_margin_rejected(self):
        with pytest.raises(IntervalError):
            gi((0, 4)).dilate(-1)

    def test_presentation_use_case(self):
        # pad each occurrence with 1.5s of context, stay inside the reel
        footprint = gi((10, 12), (40, 44))
        padded = footprint.dilate(1.5).clip(0, 60)
        assert padded.contains_point(8.5) and padded.contains_point(45.5)
        assert not padded.contains_point(5)
