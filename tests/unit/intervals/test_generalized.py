"""Unit tests for generalized intervals (Definition 5)."""

import pytest

from vidb.constraints.dense import FALSE
from vidb.constraints.terms import Var
from vidb.errors import ConstraintError
from vidb.intervals.generalized import GeneralizedInterval, T
from vidb.intervals.interval import Interval

t = Var("t")


def gi(*pairs):
    return GeneralizedInterval.from_pairs(pairs)


class TestNormalization:
    def test_sorts_fragments(self):
        g = gi((10, 15), (0, 5))
        assert g.to_pairs() == [(0, 5), (10, 15)]

    def test_merges_overlapping(self):
        assert gi((0, 5), (4, 9)).to_pairs() == [(0, 9)]

    def test_merges_touching_closed(self):
        assert gi((0, 5), (5, 9)).to_pairs() == [(0, 9)]

    def test_keeps_separated(self):
        assert len(gi((0, 5), (6, 9))) == 2

    def test_open_open_touch_not_merged(self):
        g = GeneralizedInterval([
            Interval(0, 5, closed_hi=False),
            Interval(5, 9, closed_lo=False),
        ])
        assert len(g) == 2

    def test_half_open_touch_merged(self):
        g = GeneralizedInterval([
            Interval(0, 5, closed_hi=False),
            Interval(5, 9),
        ])
        assert len(g) == 1

    def test_structural_equality_after_normalization(self):
        assert gi((0, 5), (5, 10)) == gi((0, 10))
        assert hash(gi((0, 5), (5, 10))) == hash(gi((0, 10)))


class TestBasics:
    def test_empty(self):
        g = GeneralizedInterval.empty()
        assert g.is_empty() and not g and len(g) == 0
        assert g.measure == 0 and g.span() is None
        assert g.start is None and g.end is None

    def test_point(self):
        g = GeneralizedInterval.point(4)
        assert g.contains_point(4) and not g.contains_point(5)
        assert g.measure == 0

    def test_measure_sums_fragments(self):
        assert gi((0, 5), (10, 12)).measure == 7

    def test_span_and_endpoints(self):
        g = gi((3, 5), (10, 12))
        assert g.span() == Interval(3, 12)
        assert g.start == 3 and g.end == 12

    def test_contains_point(self):
        g = gi((0, 5), (10, 15))
        assert g.contains_point(3) and g.contains_point(12)
        assert not g.contains_point(7)

    def test_iteration(self):
        assert [f.lo for f in gi((0, 1), (5, 6))] == [0, 5]


class TestSetAlgebra:
    def test_union(self):
        assert (gi((0, 5)) | gi((3, 9))).to_pairs() == [(0, 9)]

    def test_intersection(self):
        assert (gi((0, 5), (10, 15)) & gi((4, 12))).to_pairs() == [(4, 5), (10, 12)]

    def test_intersection_empty(self):
        assert (gi((0, 2)) & gi((5, 9))).is_empty()

    def test_difference_interior(self):
        d = gi((0, 10)) - gi((3, 5))
        assert len(d) == 2
        assert d.contains_point(2) and d.contains_point(6)
        assert not d.contains_point(4)
        assert not d.contains_point(3) and not d.contains_point(5)

    def test_difference_full_cover(self):
        assert (gi((3, 5)) - gi((0, 10))).is_empty()

    def test_difference_disjoint_noop(self):
        g = gi((0, 2))
        assert (g - gi((5, 9))) == g

    def test_difference_edge_trim(self):
        d = gi((0, 10)) - gi((0, 4))
        assert d.to_pairs() == [(4, 10)]
        assert not d.contains_point(4)  # boundary excluded

    def test_complement_within(self):
        c = gi((2, 4), (6, 8)).complement_within(Interval(0, 10))
        assert c.contains_point(1) and c.contains_point(5) and c.contains_point(9)
        assert not c.contains_point(3) and not c.contains_point(7)

    def test_union_with_empty_identity(self):
        g = gi((0, 5))
        assert (g | GeneralizedInterval.empty()) == g


class TestRelations:
    def test_contains(self):
        assert gi((0, 10), (20, 30)).contains(gi((1, 2), (25, 28)))
        assert not gi((0, 10)).contains(gi((5, 15)))

    def test_contains_self(self):
        g = gi((0, 10), (20, 30))
        assert g.contains(g)

    def test_empty_contained_in_everything(self):
        assert gi((0, 1)).contains(GeneralizedInterval.empty())

    def test_overlaps(self):
        assert gi((0, 5)).overlaps(gi((4, 9)))
        assert not gi((0, 2)).overlaps(gi((5, 9)))

    def test_before(self):
        assert gi((0, 2), (4, 5)).before(gi((6, 9)))
        assert not gi((0, 7)).before(gi((6, 9)))
        assert not GeneralizedInterval.empty().before(gi((0, 1)))


class TestConstraintConversion:
    def test_roundtrip(self):
        g = gi((0, 5), (10, 15))
        assert GeneralizedInterval.from_constraint(g.to_constraint()) == g

    def test_empty_encodes_false(self):
        assert GeneralizedInterval.empty().to_constraint() is FALSE
        assert GeneralizedInterval.from_constraint(FALSE).is_empty()

    def test_open_bounds_roundtrip(self):
        g = GeneralizedInterval([Interval(0, 5, closed_lo=False,
                                          closed_hi=False)])
        assert GeneralizedInterval.from_constraint(g.to_constraint()) == g

    def test_custom_variable(self):
        u = Var("u")
        g = gi((1, 2))
        c = g.to_constraint(u)
        assert c.variables() == frozenset({u})
        assert GeneralizedInterval.from_constraint(c, u) == g

    def test_paper_strict_duration(self):
        # The paper's duration (t > a1 and t < b1) decodes to an open
        # interval.
        c = (t > 2) & (t < 10)
        g = GeneralizedInterval.from_constraint(c)
        assert not g.contains_point(2) and not g.contains_point(10)
        assert g.contains_point(5)

    def test_multi_variable_rejected(self):
        u = Var("u")
        with pytest.raises(ConstraintError):
            GeneralizedInterval.from_constraint((t < u), t)

    def test_default_variable_is_t(self):
        assert T == Var("t")
