"""Unit tests for concrete time intervals (Definition 4)."""

from fractions import Fraction

import pytest

from vidb.constraints.solver import Span
from vidb.constraints.terms import Var
from vidb.errors import IntervalError
from vidb.intervals.interval import Interval

t = Var("t")


class TestConstruction:
    def test_basic(self):
        i = Interval(1, 5)
        assert i.lo == 1 and i.hi == 5
        assert i.closed_lo and i.closed_hi

    def test_reversed_bounds_rejected(self):
        with pytest.raises(IntervalError):
            Interval(5, 1)

    def test_non_numeric_rejected(self):
        with pytest.raises(IntervalError):
            Interval("a", "b")

    def test_degenerate_point_must_be_closed(self):
        assert Interval(3, 3).is_point()
        with pytest.raises(IntervalError):
            Interval(3, 3, closed_lo=False)

    def test_fraction_bounds(self):
        i = Interval(Fraction(1, 3), Fraction(2, 3))
        assert i.length == Fraction(1, 3)

    def test_value_semantics(self):
        assert Interval(1, 5) == Interval(1, 5)
        assert Interval(1, 5) != Interval(1, 5, closed_hi=False)
        assert hash(Interval(1, 5)) == hash(Interval(1, 5))

    def test_repr_notation(self):
        assert repr(Interval(1, 5)) == "[1, 5]"
        assert repr(Interval(1, 5, closed_lo=False, closed_hi=False)) == "(1, 5)"


class TestPredicates:
    def test_contains_point(self):
        i = Interval(1, 5)
        assert i.contains_point(1) and i.contains_point(5) and i.contains_point(3)
        assert not i.contains_point(0) and not i.contains_point(6)

    def test_contains_point_open_bounds(self):
        i = Interval(1, 5, closed_lo=False, closed_hi=False)
        assert not i.contains_point(1) and not i.contains_point(5)
        assert i.contains_point(3)

    def test_contains_interval(self):
        assert Interval(0, 10).contains(Interval(2, 5))
        assert not Interval(2, 5).contains(Interval(0, 10))
        assert Interval(0, 10).contains(Interval(0, 10))

    def test_contains_respects_openness(self):
        outer = Interval(0, 10, closed_hi=False)
        assert not outer.contains(Interval(0, 10))
        assert outer.contains(Interval(0, 10, closed_hi=False))

    def test_overlaps(self):
        assert Interval(0, 5).overlaps(Interval(3, 9))
        assert not Interval(0, 2).overlaps(Interval(3, 9))

    def test_overlaps_shared_endpoint(self):
        assert Interval(0, 5).overlaps(Interval(5, 9))          # both closed
        assert not Interval(0, 5, closed_hi=False).overlaps(Interval(5, 9))

    def test_before(self):
        assert Interval(0, 2).before(Interval(3, 5))
        assert not Interval(0, 3).before(Interval(3, 5))          # share point 3
        assert Interval(0, 3, closed_hi=False).before(Interval(3, 5))

    def test_meets(self):
        assert Interval(0, 5).meets(Interval(5, 9))
        assert Interval(0, 5, closed_hi=False).meets(Interval(5, 9))
        assert not Interval(0, 4).meets(Interval(5, 9))

    def test_adjacent(self):
        assert Interval(0, 5).adjacent(Interval(5, 9))
        assert Interval(0, 5).adjacent(Interval(3, 9))
        assert not Interval(0, 2).adjacent(Interval(5, 9))


class TestOperations:
    def test_intersect(self):
        assert Interval(0, 5).intersect(Interval(3, 9)) == Interval(3, 5)

    def test_intersect_respects_openness(self):
        a = Interval(0, 5, closed_hi=False)
        b = Interval(0, 9)
        assert a.intersect(b) == Interval(0, 5, closed_hi=False)

    def test_intersect_disjoint_raises(self):
        with pytest.raises(IntervalError):
            Interval(0, 1).intersect(Interval(2, 3))

    def test_hull(self):
        assert Interval(0, 2).hull(Interval(5, 9)) == Interval(0, 9)

    def test_length(self):
        assert Interval(2, 7).length == 5
        assert Interval(3, 3).length == 0


class TestConversions:
    def test_to_constraint_closed(self):
        c = Interval(1, 5).to_constraint(t)
        assert c.evaluate({t: 1}) and c.evaluate({t: 5})
        assert not c.evaluate({t: 0})

    def test_to_constraint_open(self):
        c = Interval(1, 5, closed_lo=False).to_constraint(t)
        assert not c.evaluate({t: 1})
        assert c.evaluate({t: 2})

    def test_span_roundtrip(self):
        i = Interval(1, 5, closed_lo=False, closed_hi=True)
        assert Interval.from_span(i.to_span()) == i

    def test_from_unbounded_span_rejected(self):
        with pytest.raises(IntervalError):
            Interval.from_span(Span(None, 5, True, False))
