"""Unit tests for qualitative interval networks."""

import pytest

from vidb.errors import IntervalError
from vidb.intervals.interval import Interval
from vidb.intervals.network import (
    ALL_RELATIONS,
    IntervalNetwork,
    invert,
    network_from_facts,
    network_from_intervals,
)
from vidb.storage.database import VideoDatabase


class TestConstruction:
    def test_unconstrained_pair_is_universal(self):
        network = IntervalNetwork(["a", "b"])
        assert network.relations("a", "b") == ALL_RELATIONS

    def test_self_relation_is_equals(self):
        network = IntervalNetwork(["a"])
        assert network.relations("a", "a") == frozenset({"equals"})

    def test_constrain_intersects(self):
        network = IntervalNetwork()
        network.constrain("a", "b", {"before", "meets", "overlaps"})
        network.constrain("a", "b", {"meets", "overlaps", "during"})
        assert network.relations("a", "b") == frozenset({"meets", "overlaps"})

    def test_converse_maintained(self):
        network = IntervalNetwork()
        network.constrain("a", "b", {"before"})
        assert network.relations("b", "a") == frozenset({"after"})

    def test_unknown_relation_rejected(self):
        network = IntervalNetwork()
        with pytest.raises(IntervalError):
            network.constrain("a", "b", {"nearby"})

    def test_self_constraint_must_allow_equals(self):
        network = IntervalNetwork(["a"])
        with pytest.raises(IntervalError):
            network.constrain("a", "a", {"before"})
        network.constrain("a", "a", {"equals"})  # fine

    def test_invert(self):
        assert invert({"before", "during"}) == frozenset({"after", "contains"})


class TestPropagation:
    def test_transitive_chain(self):
        network = IntervalNetwork()
        network.constrain("a", "b", {"before"})
        network.constrain("b", "c", {"before"})
        assert network.propagate()
        assert network.relations("a", "c") == frozenset({"before"})

    def test_inconsistency_detected(self):
        network = IntervalNetwork()
        network.constrain("a", "b", {"before"})
        network.constrain("b", "c", {"before"})
        network.constrain("a", "c", {"after"})
        assert not network.propagate()
        assert not network.is_consistent()

    def test_pruning_narrows_but_keeps_consistency(self):
        network = IntervalNetwork()
        network.constrain("a", "b", {"during"})
        network.constrain("b", "c", {"during"})
        assert network.propagate()
        assert network.relations("a", "c") == frozenset({"during"})
        assert network.is_consistent()

    def test_consistent_triangle(self):
        network = IntervalNetwork()
        network.constrain("a", "b", {"overlaps"})
        network.constrain("b", "c", {"overlaps"})
        network.constrain("a", "c", {"before", "meets", "overlaps"})
        assert network.is_consistent()


class TestScenario:
    def test_scenario_of_consistent_network(self):
        network = IntervalNetwork()
        network.constrain("a", "b", {"before", "meets"})
        network.constrain("b", "c", {"before"})
        scenario = network.scenario()
        assert scenario is not None
        assert scenario[("a", "b")] in {"before", "meets"}
        assert scenario[("a", "c")] == "before"

    def test_scenario_none_when_inconsistent(self):
        network = IntervalNetwork()
        network.constrain("a", "b", {"before"})
        network.constrain("b", "a", {"before"})
        assert network.scenario() is None

    def test_scenario_respects_all_constraints(self):
        network = IntervalNetwork()
        network.constrain("a", "b", {"during", "starts"})
        network.constrain("b", "c", {"meets"})
        scenario = network.scenario()
        assert scenario is not None
        for (first, second), relation in scenario.items():
            assert relation in network.relations(first, second)

    def test_copy_is_independent(self):
        network = IntervalNetwork()
        network.constrain("a", "b", {"before"})
        clone = network.copy()
        clone.constrain("a", "b", {"meets"})
        assert network.relations("a", "b") == frozenset({"before"})


class TestFromConcrete:
    def test_grounded_network_is_consistent(self):
        named = {"x": Interval(0, 5), "y": Interval(3, 9),
                 "z": Interval(10, 12)}
        network = network_from_intervals(named)
        assert network.is_consistent()
        assert network.relations("x", "y") == frozenset({"overlaps"})
        assert network.relations("x", "z") == frozenset({"before"})

    def test_hypothetical_constraint_rejected_when_contradicting(self):
        named = {"x": Interval(0, 5), "y": Interval(6, 9)}
        network = network_from_intervals(named)
        network.constrain("x", "y", {"after"})   # contradicts observation
        assert not network.is_consistent()

    def test_from_database(self):
        db = VideoDatabase("net")
        db.new_interval("g1", duration=[(0, 10)])
        db.new_interval("g2", duration=[(5, 20)])
        db.new_interval("g3", duration=[(30, 40)])
        network = network_from_facts(db)
        assert set(network.nodes()) == {"g1", "g2", "g3"}
        assert network.relations("g1", "g2") == frozenset({"overlaps"})
        assert network.is_consistent()

    def test_intervals_without_duration_skipped(self):
        db = VideoDatabase("net")
        db.new_interval("g1", duration=[(0, 10)])
        db.new_interval("bare")
        network = network_from_facts(db)
        assert network.nodes() == ("g1",)
