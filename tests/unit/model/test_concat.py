"""Unit tests for the concatenation operator ⊕ (Section 6.1)."""

import pytest

from vidb.errors import ModelError
from vidb.intervals.generalized import GeneralizedInterval
from vidb.model.concat import concat_closure, concatenate, pairwise_extension
from vidb.model.objects import EntityObject, GeneralizedIntervalObject
from vidb.model.oid import Oid


def gi(*pairs):
    return GeneralizedInterval.from_pairs(pairs)


def make_interval(name, pairs, entities=(), **attrs):
    return GeneralizedIntervalObject(
        Oid.interval(name),
        {"duration": gi(*pairs),
         "entities": frozenset(Oid.entity(e) for e in entities),
         **attrs},
    )


@pytest.fixture
def g1():
    return make_interval("g1", [(0, 10)], entities=("a", "b"),
                         subject="murder", rating=5)


@pytest.fixture
def g2():
    return make_interval("g2", [(20, 30)], entities=("b", "c"),
                         subject="party")


class TestConcatenate:
    def test_oid_is_functional(self, g1, g2):
        combined = concatenate(g1, g2)
        assert combined.oid == Oid.concat(g1.oid, g2.oid)

    def test_attributes_union(self, g1, g2):
        combined = concatenate(g1, g2)
        assert combined.attribute_names() == (
            g1.attribute_names() | g2.attribute_names())
        # attribute present on only one side is carried over unchanged
        assert combined["rating"] == 5

    def test_entities_union(self, g1, g2):
        combined = concatenate(g1, g2)
        assert combined.entities == frozenset(
            Oid.entity(n) for n in ("a", "b", "c"))

    def test_duration_union(self, g1, g2):
        assert concatenate(g1, g2).footprint() == gi((0, 10), (20, 30))

    def test_scalar_values_join_into_sets(self, g1, g2):
        assert concatenate(g1, g2)["subject"] == frozenset({"murder", "party"})

    def test_absorption_structural(self, g1):
        # The paper's I1 ⊕ I1 ≡ I1, at full object equality.
        assert concatenate(g1, g1) == g1

    def test_commutativity(self, g1, g2):
        assert concatenate(g1, g2) == concatenate(g2, g1)

    def test_associativity(self, g1, g2):
        g3 = make_interval("g3", [(50, 60)])
        left = concatenate(concatenate(g1, g2), g3)
        right = concatenate(g1, concatenate(g2, g3))
        assert left == right

    def test_absorption_after_composition(self, g1, g2):
        combined = concatenate(g1, g2)
        # (g1 ⊕ g2) ⊕ g1 = g1 ⊕ g2 — the paper's termination remark.
        assert concatenate(combined, g1) == combined
        assert concatenate(combined, g2) == combined

    def test_overlapping_durations_merge(self):
        a = make_interval("a", [(0, 10)])
        b = make_interval("b", [(5, 15)])
        assert concatenate(a, b).footprint() == gi((0, 15))

    def test_rejects_entities(self, g1):
        entity = EntityObject(Oid.entity("x"))
        with pytest.raises(ModelError):
            concatenate(g1, entity)  # type: ignore[arg-type]


class TestClosure:
    def test_closure_size_is_powerset(self):
        base = [make_interval(f"g{i}", [(i * 10, i * 10 + 5)])
                for i in range(4)]
        closure = concat_closure(base)
        assert len(closure) == 2 ** 4 - 1

    def test_closure_contains_base(self, g1, g2):
        closure = concat_closure([g1, g2])
        oids = {obj.oid for obj in closure}
        assert g1.oid in oids and g2.oid in oids

    def test_closure_budget_guard(self):
        base = [make_interval(f"g{i}", [(i, i)]) for i in range(8)]
        with pytest.raises(ModelError):
            concat_closure(base, max_size=10)

    def test_singleton_closure(self, g1):
        assert concat_closure([g1]) == [g1]


class TestPairwiseExtension:
    def test_definition_19_exactly(self, g1, g2):
        g3 = make_interval("g3", [(50, 60)])
        extension = pairwise_extension([g1, g2, g3])
        # base 3 + C(3,2) pairwise = 6 (self-concats absorb).
        assert len(extension) == 6
        names = {obj.oid.name for obj in extension}
        assert "g1++g2" in names and "g1++g2++g3" not in names

    def test_empty_input(self):
        assert pairwise_extension([]) == []
