"""Unit tests for video objects (Definition 7)."""

import pytest

from vidb.constraints.terms import Var
from vidb.errors import ModelError
from vidb.intervals.generalized import GeneralizedInterval
from vidb.model.objects import (
    DURATION_ATTR,
    ENTITIES_ATTR,
    EntityObject,
    GeneralizedIntervalObject,
    VideoObject,
)
from vidb.model.oid import Oid

t = Var("t")


def gi(*pairs):
    return GeneralizedInterval.from_pairs(pairs)


class TestVideoObject:
    def test_attribute_access(self):
        obj = VideoObject(Oid.entity("o1"), {"name": "David"})
        assert obj["name"] == "David"
        assert obj.get("name") == "David"
        assert obj.get("missing") is None
        assert "name" in obj and "missing" not in obj

    def test_missing_attribute_raises(self):
        obj = VideoObject(Oid.entity("o1"))
        with pytest.raises(ModelError):
            obj["name"]

    def test_attribute_names_and_value(self):
        obj = VideoObject(Oid.entity("o1"), {"a": 1, "b": 2})
        assert obj.attribute_names() == frozenset({"a", "b"})
        assert obj.value() == {"a": 1, "b": 2}

    def test_value_returns_copy(self):
        obj = VideoObject(Oid.entity("o1"), {"a": 1})
        obj.value()["a"] = 99
        assert obj["a"] == 1

    def test_with_attribute_is_functional(self):
        original = VideoObject(Oid.entity("o1"), {"a": 1})
        updated = original.with_attribute("b", 2)
        assert "b" not in original
        assert updated["b"] == 2 and updated["a"] == 1

    def test_without_attribute(self):
        obj = VideoObject(Oid.entity("o1"), {"a": 1, "b": 2})
        assert obj.without_attribute("a").attribute_names() == frozenset({"b"})
        # removing a missing attribute is a no-op
        assert obj.without_attribute("zz") == obj

    def test_values_normalized(self):
        obj = VideoObject(Oid.entity("o1"), {"tags": ["x", "y"]})
        assert obj["tags"] == frozenset({"x", "y"})

    def test_requires_oid(self):
        with pytest.raises(ModelError):
            VideoObject("o1")  # type: ignore[arg-type]

    def test_bad_attribute_name(self):
        with pytest.raises(ModelError):
            VideoObject(Oid.entity("o1"), {"": 1})

    def test_equality_and_hash(self):
        a = VideoObject(Oid.entity("o1"), {"x": 1})
        b = VideoObject(Oid.entity("o1"), {"x": 1})
        assert a == b and hash(a) == hash(b)
        assert a != b.with_attribute("x", 2)


class TestEntityObject:
    def test_requires_entity_oid(self):
        with pytest.raises(ModelError):
            EntityObject(Oid.interval("gi1"))

    def test_subclass_not_equal_to_base(self):
        entity = EntityObject(Oid.entity("o1"), {"x": 1})
        plain = VideoObject(Oid.entity("o1"), {"x": 1})
        assert entity != plain


class TestGeneralizedIntervalObject:
    def test_requires_interval_oid(self):
        with pytest.raises(ModelError):
            GeneralizedIntervalObject(Oid.entity("o1"))

    def test_entities_validated(self):
        oid = Oid.interval("gi1")
        with pytest.raises(ModelError):
            GeneralizedIntervalObject(oid, {ENTITIES_ATTR: {"not-an-oid"}})

    def test_entities_property(self):
        members = {Oid.entity("a"), Oid.entity("b")}
        obj = GeneralizedIntervalObject(Oid.interval("gi1"),
                                        {ENTITIES_ATTR: members})
        assert obj.entities == frozenset(members)

    def test_entities_default_empty(self):
        obj = GeneralizedIntervalObject(Oid.interval("gi1"))
        assert obj.entities == frozenset()

    def test_duration_accepts_generalized_interval(self):
        obj = GeneralizedIntervalObject(
            Oid.interval("gi1"), {DURATION_ATTR: gi((0, 5), (8, 9))})
        assert obj.footprint() == gi((0, 5), (8, 9))

    def test_duration_accepts_constraint(self):
        obj = GeneralizedIntervalObject(
            Oid.interval("gi1"), {DURATION_ATTR: (t > 0) & (t < 5)})
        assert obj.footprint().contains_point(3)

    def test_duration_canonicalised(self):
        split = ((t >= 0) & (t <= 5)) | ((t >= 5) & (t <= 9))
        whole = (t >= 0) & (t <= 9)
        a = GeneralizedIntervalObject(Oid.interval("g"), {DURATION_ATTR: split})
        b = GeneralizedIntervalObject(Oid.interval("g"), {DURATION_ATTR: whole})
        assert a == b

    def test_duration_type_checked(self):
        with pytest.raises(ModelError):
            GeneralizedIntervalObject(Oid.interval("gi1"),
                                      {DURATION_ATTR: "noon"})

    def test_missing_duration_raises(self):
        obj = GeneralizedIntervalObject(Oid.interval("gi1"))
        assert not obj.has_duration
        with pytest.raises(ModelError):
            obj.duration

    def test_covers_time(self):
        obj = GeneralizedIntervalObject(
            Oid.interval("gi1"), {DURATION_ATTR: gi((0, 5), (10, 15))})
        assert obj.covers_time(12)
        assert not obj.covers_time(7)

    def test_extra_attributes_allowed(self):
        obj = GeneralizedIntervalObject(
            Oid.interval("gi1"),
            {DURATION_ATTR: gi((0, 5)), "subject": "murder"})
        assert obj["subject"] == "murder"
