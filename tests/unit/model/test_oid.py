"""Unit tests for logical object identities."""

import pytest

from vidb.errors import ModelError
from vidb.model.oid import ENTITY, INTERVAL, Oid


class TestConstruction:
    def test_entity_and_interval(self):
        e = Oid.entity("o1")
        g = Oid.interval("gi1")
        assert e.is_entity and not e.is_interval
        assert g.is_interval and not g.is_entity

    def test_same_name_different_kind_distinct(self):
        assert Oid.entity("x") != Oid.interval("x")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ModelError):
            Oid("thing", ("a",))

    def test_empty_parts_rejected(self):
        with pytest.raises(ModelError):
            Oid(INTERVAL, ())

    def test_composite_entity_rejected(self):
        with pytest.raises(ModelError):
            Oid(ENTITY, ("a", "b"))

    def test_bad_part_rejected(self):
        with pytest.raises(ModelError):
            Oid(INTERVAL, ("",))
        with pytest.raises(ModelError):
            Oid(INTERVAL, (3,))  # type: ignore[arg-type]


class TestConcatAlgebra:
    def test_concat_unions_parts(self):
        a, b = Oid.interval("g1"), Oid.interval("g2")
        assert Oid.concat(a, b).parts == frozenset({"g1", "g2"})

    def test_absorption(self):
        a = Oid.interval("g1")
        assert Oid.concat(a, a) == a

    def test_commutativity(self):
        a, b = Oid.interval("g1"), Oid.interval("g2")
        assert Oid.concat(a, b) == Oid.concat(b, a)

    def test_associativity(self):
        a, b, c = (Oid.interval(n) for n in ("g1", "g2", "g3"))
        assert (Oid.concat(Oid.concat(a, b), c)
                == Oid.concat(a, Oid.concat(b, c)))

    def test_concat_of_entities_rejected(self):
        with pytest.raises(ModelError):
            Oid.concat(Oid.entity("o1"), Oid.entity("o2"))

    def test_is_composite(self):
        a, b = Oid.interval("g1"), Oid.interval("g2")
        assert not a.is_composite
        assert Oid.concat(a, b).is_composite

    def test_base_oids_sorted(self):
        combined = Oid.concat(Oid.interval("g2"), Oid.interval("g1"))
        assert [o.name for o in combined.base_oids()] == ["g1", "g2"]


class TestRendering:
    def test_atomic_name(self):
        assert Oid.entity("o1").name == "o1"
        assert str(Oid.interval("gi1")) == "gi1"

    def test_composite_name_sorted(self):
        combined = Oid.concat(Oid.interval("gz"), Oid.interval("ga"))
        assert combined.name == "ga++gz"

    def test_ordering_deterministic(self):
        oids = [Oid.interval("b"), Oid.entity("a"), Oid.interval("a")]
        ordered = sorted(oids)
        assert [str(o) for o in ordered] == ["a", "a", "b"]
        assert ordered[0].is_entity  # entity kind sorts first

    def test_hashable(self):
        assert len({Oid.entity("x"), Oid.entity("x"), Oid.interval("x")}) == 2
