"""Unit tests for relation facts."""

import pytest

from vidb.errors import ModelError
from vidb.model.oid import Oid
from vidb.model.relations import RelationFact


class TestConstruction:
    def test_basic_fact(self):
        fact = RelationFact("in", (Oid.entity("o1"), Oid.entity("o4"),
                                   Oid.interval("gi1")))
        assert fact.name == "in" and fact.arity == 3

    def test_accepts_constants(self):
        fact = RelationFact("rated", (Oid.interval("gi1"), 5, "stars"))
        assert fact.args[1] == 5

    def test_name_must_be_lowercase_identifier(self):
        with pytest.raises(ModelError):
            RelationFact("In", (Oid.entity("o1"),))
        with pytest.raises(ModelError):
            RelationFact("9lives", (Oid.entity("o1"),))
        with pytest.raises(ModelError):
            RelationFact("", (Oid.entity("o1"),))

    def test_empty_args_rejected(self):
        with pytest.raises(ModelError):
            RelationFact("in", ())

    def test_bad_argument_rejected(self):
        with pytest.raises(ModelError):
            RelationFact("in", (object(),))  # type: ignore[arg-type]

    def test_args_coerced_to_tuple(self):
        fact = RelationFact("in", [Oid.entity("o1")])
        assert isinstance(fact.args, tuple)


class TestAccessors:
    def test_oids_filters_constants(self):
        fact = RelationFact("rated", (Oid.interval("gi1"), 5))
        assert fact.oids() == (Oid.interval("gi1"),)

    def test_interval_oids(self):
        fact = RelationFact("in", (Oid.entity("o1"), Oid.interval("gi1")))
        assert fact.interval_oids() == (Oid.interval("gi1"),)


class TestValueSemantics:
    def test_equality_and_hash(self):
        a = RelationFact("in", (Oid.entity("o1"), Oid.interval("g")))
        b = RelationFact("in", (Oid.entity("o1"), Oid.interval("g")))
        assert a == b and hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_order_matters(self):
        a = RelationFact("in", (Oid.entity("o1"), Oid.entity("o2")))
        b = RelationFact("in", (Oid.entity("o2"), Oid.entity("o1")))
        assert a != b

    def test_repr(self):
        fact = RelationFact("in", (Oid.entity("o1"), "x"))
        assert repr(fact) == "in(o1, 'x')"
