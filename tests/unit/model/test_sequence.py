"""Unit tests for the video-sequence 7-tuple (Section 5.1)."""

import pytest

from vidb.errors import DuplicateOidError, ModelError, UnknownOidError
from vidb.intervals.generalized import GeneralizedInterval
from vidb.model.objects import EntityObject, GeneralizedIntervalObject
from vidb.model.oid import Oid
from vidb.model.relations import RelationFact
from vidb.model.sequence import VideoSequence


def gi(*pairs):
    return GeneralizedInterval.from_pairs(pairs)


@pytest.fixture
def sequence():
    seq = VideoSequence("test")
    david = EntityObject(Oid.entity("o1"), {"name": "David"})
    chest = EntityObject(Oid.entity("o4"), {"identification": "Chest"})
    seq.add_object(david)
    seq.add_object(chest)
    seq.add_interval(GeneralizedIntervalObject(
        Oid.interval("gi1"),
        {"entities": {david.oid, chest.oid}, "duration": gi((0, 10)),
         "subject": "murder"},
    ))
    seq.add_fact(RelationFact("in", (david.oid, chest.oid,
                                     Oid.interval("gi1"))))
    return seq


class TestPopulation:
    def test_counts(self, sequence):
        assert len(sequence) == 3
        assert len(sequence.intervals()) == 1
        assert len(sequence.objects()) == 2
        assert len(sequence.facts()) == 1

    def test_duplicate_interval_rejected(self, sequence):
        with pytest.raises(DuplicateOidError):
            sequence.add_interval(GeneralizedIntervalObject(
                Oid.interval("gi1"), {"duration": gi((0, 1))}))

    def test_duplicate_entity_rejected(self, sequence):
        with pytest.raises(DuplicateOidError):
            sequence.add_object(EntityObject(Oid.entity("o1")))

    def test_replace_flag(self, sequence):
        updated = GeneralizedIntervalObject(
            Oid.interval("gi1"), {"duration": gi((5, 6))})
        sequence.add_interval(updated, replace=True)
        assert sequence.interval(Oid.interval("gi1")) == updated

    def test_wrong_types_rejected(self, sequence):
        with pytest.raises(ModelError):
            sequence.add_interval(EntityObject(Oid.entity("zz")))  # type: ignore[arg-type]
        with pytest.raises(ModelError):
            sequence.add_object("not an object")  # type: ignore[arg-type]

    def test_remove(self, sequence):
        sequence.remove_interval(Oid.interval("gi1"))
        assert len(sequence.intervals()) == 0
        with pytest.raises(UnknownOidError):
            sequence.remove_interval(Oid.interval("gi1"))

    def test_remove_fact_idempotent(self, sequence):
        fact = next(iter(sequence.facts()))
        sequence.remove_fact(fact)
        sequence.remove_fact(fact)  # no error
        assert not sequence.facts()


class TestSevenTuple:
    def test_delta1(self, sequence):
        members = sequence.delta1(Oid.interval("gi1"))
        assert members == frozenset({Oid.entity("o1"), Oid.entity("o4")})

    def test_delta2(self, sequence):
        duration = sequence.delta2(Oid.interval("gi1"))
        assert GeneralizedInterval.from_constraint(duration) == gi((0, 10))

    def test_sigma(self, sequence):
        assert len(sequence.sigma()) == 1

    def test_atomic_values(self, sequence):
        values = sequence.atomic_values()
        assert {"David", "Chest", "murder"} <= set(values)
        # oids are not atomic values
        assert Oid.entity("o1") not in values

    def test_lookups(self, sequence):
        assert sequence.object(Oid.entity("o1"))["name"] == "David"
        assert sequence.interval(Oid.interval("gi1"))["subject"] == "murder"
        assert sequence.get(Oid.entity("missing")) is None
        assert Oid.entity("o1") in sequence

    def test_unknown_lookup_raises(self, sequence):
        with pytest.raises(UnknownOidError):
            sequence.object(Oid.entity("nope"))
        with pytest.raises(UnknownOidError):
            sequence.interval(Oid.interval("nope"))


class TestValidation:
    def test_valid_sequence_is_clean(self, sequence):
        assert sequence.validate() == []

    def test_dangling_entity_reference(self):
        seq = VideoSequence()
        seq.add_interval(GeneralizedIntervalObject(
            Oid.interval("g"), {"entities": {Oid.entity("ghost")},
                                "duration": gi((0, 1))}))
        problems = seq.validate()
        assert len(problems) == 1 and "ghost" in problems[0]

    def test_dangling_fact_reference(self, sequence):
        sequence.add_fact(RelationFact("in", (Oid.entity("ghost"),
                                              Oid.interval("gi1"))))
        assert any("ghost" in p for p in sequence.validate())

    def test_dangling_attribute_oid(self, sequence):
        seq = VideoSequence()
        seq.add_object(EntityObject(Oid.entity("o1"),
                                    {"friend": Oid.entity("ghost")}))
        assert any("ghost" in p for p in seq.validate())

    def test_oid_value_inside_set_checked(self):
        seq = VideoSequence()
        seq.add_object(EntityObject(
            Oid.entity("o1"), {"friends": {Oid.entity("ghost")}}))
        assert any("ghost" in p for p in seq.validate())
