"""Unit tests for attribute values (Definition 6) and value union."""

import pytest

from vidb.constraints.dense import Constraint
from vidb.constraints.terms import Var
from vidb.errors import ModelError
from vidb.intervals.generalized import GeneralizedInterval
from vidb.model.oid import Oid
from vidb.model.values import (
    canonical_temporal,
    is_temporal,
    normalize_value,
    value_as_set,
    value_contains,
    value_union,
)

t = Var("t")


def gi(*pairs):
    return GeneralizedInterval.from_pairs(pairs)


class TestNormalizeValue:
    def test_constants_pass_through(self):
        assert normalize_value(5) == 5
        assert normalize_value("x") == "x"

    def test_oid_passes_through(self):
        oid = Oid.entity("o1")
        assert normalize_value(oid) is oid

    def test_collection_becomes_frozenset(self):
        value = normalize_value([1, 2, 2, 3])
        assert value == frozenset({1, 2, 3})
        assert isinstance(value, frozenset)

    def test_nested_collections(self):
        value = normalize_value([(1, 2), (3,)])
        assert frozenset({1, 2}) in value

    def test_generalized_interval_becomes_constraint(self):
        value = normalize_value(gi((0, 5)))
        assert isinstance(value, Constraint)
        assert GeneralizedInterval.from_constraint(value) == gi((0, 5))

    def test_constraint_passes_through(self):
        c = (t > 0) & (t < 5)
        assert normalize_value(c) is c

    def test_boolean_rejected(self):
        with pytest.raises(ModelError):
            normalize_value(True)

    def test_arbitrary_object_rejected(self):
        with pytest.raises(ModelError):
            normalize_value(object())


class TestValueUnion:
    def test_equal_scalars_stay_scalar(self):
        assert value_union("a", "a") == "a"

    def test_different_scalars_become_set(self):
        assert value_union("a", "b") == frozenset({"a", "b"})

    def test_set_union(self):
        assert value_union(frozenset({1, 2}), frozenset({2, 3})) == frozenset({1, 2, 3})

    def test_scalar_joins_set(self):
        assert value_union(frozenset({1}), 2) == frozenset({1, 2})
        assert value_union(2, frozenset({1})) == frozenset({1, 2})

    def test_constraints_disjoin_and_canonicalize(self):
        a = gi((0, 5)).to_constraint()
        b = gi((3, 9)).to_constraint()
        merged = value_union(a, b)
        assert is_temporal(merged)
        assert GeneralizedInterval.from_constraint(merged) == gi((0, 9))

    def test_constraint_union_idempotent(self):
        c = canonical_temporal(gi((0, 5), (8, 9)).to_constraint())
        assert value_union(c, c) == c

    def test_union_is_commutative(self):
        assert value_union("a", "b") == value_union("b", "a")
        a, b = gi((0, 1)).to_constraint(), gi((5, 6)).to_constraint()
        assert value_union(a, b) == value_union(b, a)


class TestCanonicalTemporal:
    def test_equivalent_forms_unify(self):
        split = (((t >= 0) & (t <= 5)) | ((t >= 5) & (t <= 9)))
        whole = (t >= 0) & (t <= 9)
        assert canonical_temporal(split) == canonical_temporal(whole)

    def test_unbounded_passes_through(self):
        c = t > 3
        assert canonical_temporal(c) is c

    def test_multivariable_passes_through(self):
        u = Var("u")
        c = t < u
        assert canonical_temporal(c) is c


class TestContainsAndAsSet:
    def test_set_containment(self):
        assert value_contains(frozenset({1, 2}), 1)
        assert not value_contains(frozenset({1, 2}), 3)

    def test_scalar_is_singleton(self):
        assert value_contains("a", "a")
        assert not value_contains("a", "b")

    def test_value_as_set(self):
        assert value_as_set(frozenset({1})) == frozenset({1})
        assert value_as_set("a") == frozenset({"a"})
