"""Unit tests for the structured event log and its producers: the
executor (slow queries, admission), durability (recovery, checkpoint),
replicas (resync), and the server's ``events`` op."""

import json
import threading

import pytest

from vidb.errors import ProtocolError, ServiceOverloadedError
from vidb.durability import DurableDatabase, Replica
from vidb.obs.events import EventLog, emit, get_event_log
from vidb.service.executor import ServiceExecutor
from vidb.service.server import ServiceClient, VideoServer
from vidb.workloads.paper import rope_database


class TestEventLog:
    def test_emit_stamps_ts_and_type(self):
        log = EventLog()
        event = log.emit("checkpoint", lsn=5)
        assert event["type"] == "checkpoint"
        assert event["lsn"] == 5
        assert isinstance(event["ts"], float)

    def test_capacity_bounds_the_ring(self):
        log = EventLog(capacity=3)
        for i in range(10):
            log.emit("tick", i=i)
        assert len(log) == 3
        assert log.emitted == 10
        assert [e["i"] for e in log.recent()] == [9, 8, 7]

    def test_recent_filters_by_type_and_limit(self):
        log = EventLog()
        log.emit("a", n=1)
        log.emit("b", n=2)
        log.emit("a", n=3)
        assert [e["n"] for e in log.recent(type="a")] == [3, 1]
        assert [e["n"] for e in log.recent(limit=2)] == [3, 2]
        assert log.recent(type="zzz") == []

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            EventLog(capacity=0)

    def test_file_sink_writes_json_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(sink=path) as log:
            log.emit("slow_query", elapsed_ms=12.5)
            log.emit("checkpoint", lsn=3)
        lines = [json.loads(line)
                 for line in path.read_text().splitlines()]
        assert [e["type"] for e in lines] == ["slow_query", "checkpoint"]
        assert lines[0]["elapsed_ms"] == 12.5

    def test_broken_sink_keeps_the_ring(self, tmp_path):
        path = tmp_path / "events.jsonl"
        stream = open(path, "a", encoding="utf-8")
        log = EventLog(sink=stream)
        stream.close()  # the next write raises ValueError
        log.emit("tick")
        log.emit("tock")
        assert [e["type"] for e in log.recent()] == ["tock", "tick"]

    def test_concurrent_emitters(self):
        log = EventLog(capacity=10_000)

        def spin(n):
            for i in range(500):
                log.emit("tick", worker=n, i=i)

        threads = [threading.Thread(target=spin, args=(n,))
                   for n in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert log.emitted == 2000
        assert len(log) == 2000

    def test_global_log_and_module_emit(self):
        log = get_event_log()
        before = log.emitted
        emit("test.global", marker="x")
        assert log.emitted == before + 1
        assert log.recent(limit=1)[0]["type"] == "test.global"


class TestExecutorEvents:
    def test_slow_query_event_with_zero_threshold(self):
        log = EventLog()
        with ServiceExecutor(rope_database(), max_workers=1,
                             slow_query_ms=0, event_log=log) as executor:
            executor.execute("?- object(O).")
            events = executor.recent_events(type="slow_query")
        assert len(events) == 1
        event = events[0]
        assert event["rows"] == 9
        assert event["cached"] is False
        assert event["elapsed_ms"] >= 0
        assert len(event["fingerprint"]) == 64
        assert "object" in event["query"]
        assert set(event["stages"]) >= {"parse", "evaluate", "collect"}

    def test_no_events_when_threshold_unset(self):
        log = EventLog()
        with ServiceExecutor(rope_database(), max_workers=1,
                             event_log=log) as executor:
            executor.execute("?- object(O).")
        assert log.recent(type="slow_query") == []

    def test_admission_rejection_event(self):
        log = EventLog()
        executor = ServiceExecutor(rope_database(), max_workers=1,
                                   max_in_flight=1, event_log=log)
        gate = threading.Event()

        def blocked(ctx, args):
            gate.wait(timeout=10)
            return True

        executor.register_computed("blocked", 1, blocked)
        try:
            future = executor.submit("?- object(O), blocked(O).")
            with pytest.raises(ServiceOverloadedError):
                executor.submit("?- object(O).")
            gate.set()
            future.result(timeout=10)
            events = log.recent(type="admission.reject")
            assert len(events) == 1
            assert events[0]["in_flight"] == 1
            assert events[0]["limit"] == 1
        finally:
            gate.set()
            executor.close()


class TestDurabilityEvents:
    def test_recovery_and_checkpoint_events(self, tmp_path):
        log = EventLog()
        with DurableDatabase(tmp_path / "state", event_log=log) as durable:
            durable.db.new_entity("o1", name="A")
            durable.checkpoint()
        recoveries = log.recent(type="recovery")
        assert len(recoveries) == 1
        assert recoveries[0]["replayed"] == 0
        checkpoints = log.recent(type="checkpoint")
        # one initial (empty-directory) checkpoint plus the explicit one
        assert len(checkpoints) == 2
        assert checkpoints[0]["lsn"] >= 1
        assert checkpoints[0]["snapshot"].endswith(".json")
        rotations = log.recent(type="wal.rotate")
        assert len(rotations) == 2
        assert rotations[0]["bytes_truncated"] > 0

    def test_recovery_event_reports_replay(self, tmp_path):
        with DurableDatabase(tmp_path / "state") as durable:
            durable.db.new_entity("o1", name="A")
        log = EventLog()
        with DurableDatabase(tmp_path / "state", event_log=log):
            pass
        event = log.recent(type="recovery")[0]
        assert event["replayed"] == 1
        assert event["torn_tail"] is False

    def test_replica_resync_event(self, tmp_path):
        with DurableDatabase(tmp_path / "state") as durable:
            durable.db.new_entity("o1", name="A")
            durable.checkpoint()
            log = EventLog()
            replica = Replica.from_data_dir(tmp_path / "state",
                                            event_log=log)
            assert replica.lag() == 0
        resyncs = log.recent(type="replica.resync")
        assert len(resyncs) == 1
        assert resyncs[0]["lsn"] >= 1


class TestServerEventsOp:
    def test_events_op_round_trip(self):
        log = EventLog()
        with ServiceExecutor(rope_database(), max_workers=2,
                             slow_query_ms=0, event_log=log) as executor:
            with VideoServer(executor, port=0) as server:
                server.start_background()
                host, port = server.address
                with ServiceClient(host, port) as client:
                    client.query("?- object(O).")
                    events = client.events(type="slow_query")
                    assert len(events) == 1
                    assert events[0]["rows"] == 9
                    # limit applies after the filter
                    client.query("?- interval(G).")
                    assert len(client.events(limit=1,
                                             type="slow_query")) == 1
                    assert client.events(type="nope") == []

    def test_events_op_validates_arguments(self):
        with ServiceExecutor(rope_database(), max_workers=1) as executor:
            with VideoServer(executor, port=0) as server:
                server.start_background()
                host, port = server.address
                with ServiceClient(host, port) as client:
                    with pytest.raises(ProtocolError):
                        client.request("events", limit="many")
                    with pytest.raises(ProtocolError):
                        client.request("events", type=7)
