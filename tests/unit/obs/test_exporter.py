"""Unit tests for the Prometheus exporter: exposition format, health
probes, readiness flipping, and scrapes under concurrent load."""

import gzip
import threading
import urllib.error
import urllib.request

import pytest

from vidb.obs.exporter import MetricsExporter, prom_name, render_exposition
from vidb.obs.metrics import MetricsRegistry
from vidb.service.executor import ServiceExecutor
from vidb.workloads.paper import rope_database


def _get(url):
    try:
        with urllib.request.urlopen(url, timeout=5) as response:
            return response.status, response.read().decode("utf-8")
    except urllib.error.HTTPError as error:
        return error.code, error.read().decode("utf-8")


@pytest.fixture
def registry():
    reg = MetricsRegistry()
    reg.counter("queries.served").inc(3)
    reg.gauge("in_flight").set(2)
    reg.callback_gauge("cache.size", lambda: 7)
    reg.histogram("queries.latency_seconds",
                  buckets=[0.01, 0.1, 1.0]).observe(0.05)
    reg.counter_family("queries_total",
                       ("outcome",)).labels(outcome="served").inc(3)
    return reg


class TestPromName:
    def test_dots_become_underscores_with_prefix(self):
        assert prom_name("queries.served") == "vidb_queries_served"

    def test_existing_prefix_not_doubled(self):
        assert prom_name("vidb_x") == "vidb_x"

    def test_leading_digit_guarded(self):
        assert prom_name("9lives", prefix="") == "_9lives"


class TestRenderExposition:
    def test_golden_exposition(self, registry):
        text = render_exposition(registry)
        lines = text.splitlines()
        assert "# HELP vidb_queries_served vidb metric queries.served" in lines
        assert "# TYPE vidb_queries_served counter" in lines
        assert "vidb_queries_served 3" in lines
        assert "# TYPE vidb_in_flight gauge" in lines
        assert "vidb_in_flight 2" in lines
        # callback gauges render as gauges, evaluated at render time
        assert "# TYPE vidb_cache_size gauge" in lines
        assert "vidb_cache_size 7" in lines
        # labeled family
        assert "# TYPE vidb_queries_total counter" in lines
        assert 'vidb_queries_total{outcome="served"} 3' in lines
        assert text.endswith("\n")

    def test_every_series_line_is_parseable(self, registry):
        for line in render_exposition(registry).splitlines():
            if line.startswith("#"):
                kind = line.split()
                assert kind[1] in ("HELP", "TYPE")
                continue
            name_and_labels, value = line.rsplit(" ", 1)
            assert name_and_labels.startswith("vidb_")
            float(value)  # every sample value must parse

    def test_histogram_buckets_monotone_and_end_at_inf(self, registry):
        registry.histogram("queries.latency_seconds").observe(5.0)
        lines = render_exposition(registry).splitlines()
        buckets = [line for line in lines
                   if line.startswith("vidb_queries_latency_seconds_bucket")]
        counts = [int(line.rsplit(" ", 1)[1]) for line in buckets]
        assert counts == sorted(counts)
        assert 'le="+Inf"' in buckets[-1]
        count_line = next(
            line for line in lines
            if line.startswith("vidb_queries_latency_seconds_count"))
        assert counts[-1] == int(count_line.rsplit(" ", 1)[1]) == 2
        assert any(line.startswith("vidb_queries_latency_seconds_sum")
                   for line in lines)

    def test_label_values_escaped(self):
        reg = MetricsRegistry()
        reg.counter_family("odd", ("q",)).labels(q='say "hi"\n\\x').inc()
        text = render_exposition(reg)
        assert 'q="say \\"hi\\"\\n\\\\x"' in text


class TestExporterHTTP:
    def test_metrics_healthz_readyz_and_404(self, registry):
        with MetricsExporter(registry, port=0) as exporter:
            status, body = _get(exporter.url + "/metrics")
            assert status == 200
            assert "vidb_queries_served 3" in body
            status, body = _get(exporter.url + "/healthz")
            assert (status, body) == (200, "ok\n")
            status, body = _get(exporter.url + "/readyz")
            assert status == 200  # no ready callable = always ready
            status, _ = _get(exporter.url + "/nope")
            assert status == 404

    def test_readyz_reports_each_check(self, registry):
        checks = {"recovery": False, "executor": True}
        with MetricsExporter(registry, port=0,
                             ready=lambda: checks) as exporter:
            status, body = _get(exporter.url + "/readyz")
            assert status == 503
            assert "fail recovery" in body and "ok executor" in body
            checks["recovery"] = True
            status, body = _get(exporter.url + "/readyz")
            assert status == 200
            assert body == "ok executor\nok recovery\n"

    def test_ready_callable_raising_means_not_ready(self, registry):
        def boom():
            raise RuntimeError("probe exploded")

        with MetricsExporter(registry, port=0, ready=boom) as exporter:
            status, _ = _get(exporter.url + "/readyz")
            assert status == 503

    def test_concurrent_scrapes_under_write_load(self, registry):
        counter = registry.counter("queries.served")
        hist = registry.histogram("queries.latency_seconds")
        stop = threading.Event()

        def load():
            while not stop.is_set():
                counter.inc()
                hist.observe(0.004)

        writers = [threading.Thread(target=load) for __ in range(4)]
        for t in writers:
            t.start()
        try:
            with MetricsExporter(registry, port=0) as exporter:
                def scrape(failures):
                    for __ in range(20):
                        status, body = _get(exporter.url + "/metrics")
                        if status != 200 or "vidb_queries_served" not in body:
                            failures.append((status, body[:100]))

                failures = []
                scrapers = [threading.Thread(target=scrape,
                                             args=(failures,))
                            for __ in range(4)]
                for t in scrapers:
                    t.start()
                for t in scrapers:
                    t.join()
                assert failures == []
        finally:
            stop.set()
            for t in writers:
                t.join()

    def test_close_is_idempotent(self, registry):
        exporter = MetricsExporter(registry, port=0).start_background()
        exporter.close()
        exporter.close()


def _get_raw(url, headers=None):
    request = urllib.request.Request(url, headers=headers or {})
    with urllib.request.urlopen(request, timeout=5) as response:
        return response.status, dict(response.headers), response.read()


class TestContentTypeAndGzip:
    """Golden scrape contract: exact Prometheus content type, and gzip
    only when the scraper advertises it."""

    PROM_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

    def test_metrics_content_type_is_exact_prometheus_string(self, registry):
        with MetricsExporter(registry, port=0) as exporter:
            __, headers, __ = _get_raw(exporter.url + "/metrics")
            assert headers["Content-Type"] == self.PROM_CONTENT_TYPE

    def test_plain_scrape_is_identity_encoded(self, registry):
        with MetricsExporter(registry, port=0) as exporter:
            status, headers, body = _get_raw(exporter.url + "/metrics")
            assert status == 200
            assert "Content-Encoding" not in headers
            assert b"vidb_queries_served 3" in body
            assert int(headers["Content-Length"]) == len(body)

    def test_gzip_negotiated_scrape_round_trips(self, registry):
        with MetricsExporter(registry, port=0) as exporter:
            status, headers, body = _get_raw(
                exporter.url + "/metrics",
                headers={"Accept-Encoding": "gzip"})
            assert status == 200
            assert headers["Content-Encoding"] == "gzip"
            assert headers["Content-Type"] == self.PROM_CONTENT_TYPE
            text = gzip.decompress(body).decode("utf-8")
            assert "vidb_queries_served 3" in text
            assert int(headers["Content-Length"]) == len(body)

    def test_gzip_accepted_among_other_encodings(self, registry):
        with MetricsExporter(registry, port=0) as exporter:
            __, headers, body = _get_raw(
                exporter.url + "/metrics",
                headers={"Accept-Encoding": "deflate, gzip;q=0.8, br"})
            assert headers.get("Content-Encoding") == "gzip"
            assert b"vidb_queries_served" in gzip.decompress(body)

    def test_unsupported_encodings_fall_back_to_identity(self, registry):
        with MetricsExporter(registry, port=0) as exporter:
            __, headers, body = _get_raw(
                exporter.url + "/metrics",
                headers={"Accept-Encoding": "deflate, br"})
            assert "Content-Encoding" not in headers
            assert b"vidb_queries_served 3" in body

    def test_health_probes_never_gzip(self, registry):
        with MetricsExporter(registry, port=0) as exporter:
            __, headers, body = _get_raw(
                exporter.url + "/healthz",
                headers={"Accept-Encoding": "gzip"})
            assert "Content-Encoding" not in headers
            assert body == b"ok\n"

    def test_extra_render_is_appended_to_exposition(self, registry):
        with MetricsExporter(registry, port=0,
                             extra_render=lambda: "fleet_extra 1\n"
                             ) as exporter:
            __, __, body = _get_raw(exporter.url + "/metrics")
            text = body.decode("utf-8")
            assert "vidb_queries_served 3" in text
            assert "fleet_extra 1" in text

    def test_extra_render_failure_does_not_break_scrape(self, registry):
        def boom():
            raise RuntimeError("fleet not ready")

        with MetricsExporter(registry, port=0,
                             extra_render=boom) as exporter:
            status, __, body = _get_raw(exporter.url + "/metrics")
            assert status == 200
            assert b"vidb_queries_served 3" in body


class TestReadinessAgainstExecutor:
    def test_readyz_flips_on_executor_shutdown(self):
        executor = ServiceExecutor(rope_database(), max_workers=1)
        with MetricsExporter(executor.metrics, port=0,
                             ready=executor.readiness) as exporter:
            status, body = _get(exporter.url + "/readyz")
            assert status == 200
            assert "ok executor" in body
            executor.close()
            status, body = _get(exporter.url + "/readyz")
            assert status == 503
            assert "fail executor" in body

    def test_readyz_flips_during_recovery_replay(self):
        # Model what vidb serve does: the exporter is up before
        # recovery, readiness delegates to a state that only becomes
        # the executor's own readiness() once recovery has finished.
        ready_state = {"service": None, "recovering": True}

        def ready():
            service = ready_state["service"]
            if service is None:
                return {"recovery": not ready_state["recovering"],
                        "executor": False}
            return service.readiness()

        with MetricsExporter(MetricsRegistry(), port=0,
                             ready=ready) as exporter:
            status, body = _get(exporter.url + "/readyz")
            assert status == 503
            assert "fail recovery" in body and "fail executor" in body
            with ServiceExecutor(rope_database(),
                                 max_workers=1) as executor:
                ready_state["recovering"] = False
                ready_state["service"] = executor
                status, body = _get(exporter.url + "/readyz")
                assert status == 200
                assert "ok executor" in body
