"""Fleet aggregation: per-node snapshots, rollups, federated exposition."""

from vidb.obs.fleet import FleetAggregator, render_fleet_exposition

PRIMARY_SNAPSHOT = {
    "queries.served": 100,
    "queries.rejected": 2,
    "writes.applied": 40,
    "in_flight": 1,
    "epoch": 44,
    "wal.last_lsn": 40,
    "stream.subscriptions": 3,
    "stream.queue_depth": 5,
    "queries.latency_seconds": {"count": 100, "sum": 0.5, "mean": 0.005,
                                "min": 0.001, "max": 0.02, "p50": 0.004,
                                "p95": 0.01, "p99": 0.02},
    "requests_total{op=query,outcome=ok}": 98,
}

REPLICA_SNAPSHOT = {
    "queries.served": 250,
    "in_flight": 2,
    "epoch": 44,
    "replica.lag": 3,
    "replica.applied_lsn": 37,
    "stream.subscriptions": 1,
    "stream.queue_depth": 2,
}


def fed():
    fleet = FleetAggregator()
    fleet.update("10.0.0.1:7421", "primary", PRIMARY_SNAPSHOT)
    fleet.update("10.0.0.2:7442", "replica", REPLICA_SNAPSHOT)
    return fleet


class TestFleetAggregator:
    def test_rollups_sum_and_max(self):
        rollups = fed().rollups()
        assert rollups["nodes"] == 2
        assert rollups["nodes_up"] == 2
        assert rollups["queries_served"] == 350
        assert rollups["queries_rejected"] == 2
        assert rollups["writes_applied"] == 40
        assert rollups["in_flight"] == 3
        assert rollups["max_replica_lag"] == 3
        assert rollups["subscriptions"] == 4
        assert rollups["subscription_queue_depth"] == 7
        assert rollups["head_lsn"] == 40  # max over wal/replica positions

    def test_failed_scrape_keeps_last_snapshot(self):
        fleet = fed()
        fleet.mark_failed("10.0.0.2:7442", "replica", "connection refused")
        rollups = fleet.rollups()
        assert rollups["nodes_up"] == 1
        # The dead node's lag holds its final value instead of vanishing.
        assert rollups["max_replica_lag"] == 3
        (down,) = [n for n in fleet.nodes() if not n.ok]
        assert down.error == "connection refused"
        assert down.failures == 1

    def test_health_rows(self):
        health = fed().health()
        assert {row["node"] for row in health["nodes"]} == {
            "10.0.0.1:7421", "10.0.0.2:7442"}
        primary = next(row for row in health["nodes"]
                       if row["role"] == "primary")
        assert primary["up"] is True
        assert primary["served"] == 100
        assert primary["lsn"] == 40
        assert primary["p95_ms"] == 10.0
        replica = next(row for row in health["nodes"]
                       if row["role"] == "replica")
        assert replica["lag"] == 3
        assert "p95_ms" not in replica  # no latency histogram scraped

    def test_forget_removes_node(self):
        fleet = fed()
        fleet.forget("10.0.0.2:7442")
        assert fleet.rollups()["nodes"] == 1


class TestFleetExposition:
    def test_every_series_carries_node_and_role_labels(self):
        text = render_fleet_exposition(fed())
        assert ('vidb_queries_served{node="10.0.0.1:7421",role="primary"} '
                "100") in text
        assert ('vidb_queries_served{node="10.0.0.2:7442",role="replica"} '
                "250") in text

    def test_one_type_block_per_metric_name(self):
        text = render_fleet_exposition(fed())
        assert text.count("# TYPE vidb_queries_served gauge") == 1
        for line in text.splitlines():
            if line.startswith("# TYPE"):
                assert line.endswith("gauge")

    def test_member_labels_merge_with_node_labels(self):
        text = render_fleet_exposition(fed())
        assert ('vidb_requests_total{node="10.0.0.1:7421",role="primary",'
                'op="query",outcome="ok"} 98') in text

    def test_histograms_flatten_to_quantile_gauges(self):
        text = render_fleet_exposition(fed())
        for suffix in ("count", "sum", "p50", "p95", "p99"):
            assert f"vidb_queries_latency_seconds_{suffix}" in text

    def test_rollups_and_up_series(self):
        text = render_fleet_exposition(fed())
        assert "vidb_cluster_nodes_up 2" in text
        assert "vidb_cluster_queries_served 350" in text
        assert "vidb_cluster_max_replica_lag 3" in text
        assert ('vidb_cluster_node_up{node="10.0.0.1:7421",'
                'role="primary"} 1') in text

    def test_down_node_reports_zero_up(self):
        fleet = fed()
        fleet.mark_failed("10.0.0.1:7421", "primary", "dead")
        text = render_fleet_exposition(fleet)
        assert ('vidb_cluster_node_up{node="10.0.0.1:7421",'
                'role="primary"} 0') in text

    def test_empty_fleet_renders_rollups_only(self):
        text = render_fleet_exposition(FleetAggregator())
        assert "vidb_cluster_nodes 0" in text
