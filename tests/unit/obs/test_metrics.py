"""Unit tests for vidb.obs.metrics: gauges, callback gauges, labeled
families, one-pass quantiles, and the formatting helpers."""

import threading

import pytest

from vidb.obs.metrics import (
    Gauge,
    Histogram,
    MetricsRegistry,
    format_number,
    format_snapshot,
    get_registry,
    human_count,
    human_duration,
)


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge()
        assert gauge.value == 0
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value == 12

    def test_can_go_negative(self):
        gauge = Gauge()
        gauge.dec()
        assert gauge.value == -1

    def test_concurrent_updates_do_not_lose(self):
        gauge = Gauge()

        def spin():
            for __ in range(1000):
                gauge.inc()

        threads = [threading.Thread(target=spin) for __ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert gauge.value == 8000


class TestCallbackGauge:
    def test_evaluated_at_snapshot_time(self):
        reg = MetricsRegistry()
        state = {"value": 1}
        reg.callback_gauge("lag", lambda: state["value"])
        assert reg.snapshot()["lag"] == 1
        state["value"] = 7
        assert reg.snapshot()["lag"] == 7

    def test_dead_callback_is_skipped_not_fatal(self):
        reg = MetricsRegistry()
        reg.counter("ok").inc()
        reg.callback_gauge("broken", lambda: 1 / 0)
        snap = reg.snapshot()
        assert snap["ok"] == 1
        assert "broken" not in snap

    def test_reregistering_replaces_the_callback(self):
        reg = MetricsRegistry()
        reg.callback_gauge("x", lambda: 1)
        reg.callback_gauge("x", lambda: 2)
        assert reg.snapshot()["x"] == 2

    def test_kind_collision_raises(self):
        reg = MetricsRegistry()
        reg.counter("n")
        with pytest.raises(ValueError):
            reg.callback_gauge("n", lambda: 0)
        with pytest.raises(ValueError):
            reg.gauge("n")


class TestMetricFamily:
    def test_children_created_on_first_touch(self):
        reg = MetricsRegistry()
        family = reg.counter_family("queries_total", ("outcome",))
        family.labels(outcome="served").inc(3)
        family.labels(outcome="error").inc()
        family.labels(outcome="served").inc()
        children = {tuple(labels.items()): child.value
                    for labels, child in family.children()}
        assert children == {(("outcome", "served"),): 4,
                            (("outcome", "error"),): 1}

    def test_wrong_label_set_rejected(self):
        reg = MetricsRegistry()
        family = reg.counter_family("requests_total", ("op", "outcome"))
        with pytest.raises(ValueError):
            family.labels(op="query")
        with pytest.raises(ValueError):
            family.labels(op="query", outcome="ok", extra="no")

    def test_snapshot_keys_are_labeled(self):
        reg = MetricsRegistry()
        reg.counter_family("requests_total",
                           ("op", "outcome")).labels(
                               op="query", outcome="ok").inc(2)
        snap = reg.snapshot()
        assert snap["requests_total{op=query,outcome=ok}"] == 2

    def test_gauge_and_histogram_families(self):
        reg = MetricsRegistry()
        reg.gauge_family("pool", ("name",)).labels(name="a").set(3)
        reg.histogram_family("lat", ("op",),
                             buckets=[1.0]).labels(op="q").observe(0.5)
        snap = reg.snapshot()
        assert snap["pool{name=a}"] == 3
        assert snap["lat{op=q}"]["count"] == 1

    def test_registering_same_name_same_kind_is_idempotent(self):
        reg = MetricsRegistry()
        first = reg.counter_family("f", ("a",))
        assert reg.counter_family("f", ("a",)) is first
        with pytest.raises(ValueError):
            reg.gauge_family("f", ("a",))

    def test_collect_carries_labels(self):
        reg = MetricsRegistry()
        reg.counter_family("t", ("outcome",)).labels(outcome="ok").inc()
        series = {name: (kind, entries)
                  for name, kind, entries in reg.collect()}
        kind, entries = series["t"]
        assert kind == "counter"
        assert entries == [({"outcome": "ok"}, 1)]


class TestHistogramQuantiles:
    def test_quantiles_single_pass_matches_individual(self):
        hist = Histogram(buckets=[0.01, 0.1, 1.0])
        for value in (0.005, 0.05, 0.05, 0.5, 2.0):
            hist.observe(value)
        qs = (0.5, 0.95, 0.99)
        assert hist.quantiles(qs) == tuple(hist.quantile(q) for q in qs)

    def test_snapshot_quantiles_consistent_under_concurrent_observe(self):
        # Regression: quantiles used to be computed by separate locked
        # quantile() calls after the aggregate pass, so concurrent
        # observes could land between them and p50 > p99 was possible.
        hist = Histogram(buckets=[0.001, 0.01, 0.1, 1.0, 10.0])
        stop = threading.Event()

        def feed():
            values = (0.0005, 0.005, 0.05, 0.5, 5.0)
            i = 0
            while not stop.is_set():
                hist.observe(values[i % len(values)])
                i += 1

        threads = [threading.Thread(target=feed) for __ in range(4)]
        for t in threads:
            t.start()
        try:
            for __ in range(300):
                snap = hist.snapshot()
                if snap["count"] == 0:
                    continue
                assert snap["p50"] <= snap["p95"] <= snap["p99"]
                assert snap["min"] <= snap["mean"] <= snap["max"]
        finally:
            stop.set()
            for t in threads:
                t.join()

    def test_quantile_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            Histogram().quantiles([0.5, 1.5])

    def test_export_buckets_are_cumulative_and_end_at_inf(self):
        hist = Histogram(buckets=[0.1, 1.0])
        for value in (0.05, 0.5, 2.0, 3.0):
            hist.observe(value)
        export = hist.export()
        counts = [count for _, count in export["buckets"]]
        assert counts == sorted(counts)
        assert export["buckets"][-1][0] == float("inf")
        assert export["buckets"][-1][1] == export["count"] == 4


class TestFormatting:
    def test_format_number_never_scientific(self):
        assert format_number(1e6) == "1000000"
        assert format_number(0.000123) == "0.000123"
        assert format_number(1.5) == "1.5"
        assert format_number(42) == "42"
        assert format_number(0.0) == "0"

    def test_human_count(self):
        assert human_count(950) == "950"
        assert human_count(1234) == "1.23k"
        assert human_count(2_500_000) == "2.5M"
        assert human_count(3_000_000_000) == "3G"

    def test_human_duration(self):
        assert human_duration(0.000_000_5) == "0.5us"
        assert human_duration(0.000_86) == "860us"
        assert human_duration(0.012) == "12ms"
        assert human_duration(1.5) == "1.5s"
        assert human_duration(90.0) == "1.5m"
        assert human_duration(0) == "0s"

    def test_format_snapshot_uses_fixed_precision(self):
        text = format_snapshot({"big": 1234567.0, "tiny": 0.000012})
        assert "1234567" in text
        assert "0.000012" in text
        assert "e+" not in text and "e-" not in text


class TestGlobalRegistry:
    def test_process_global_singleton(self):
        assert get_registry() is get_registry()

    def test_is_a_registry(self):
        assert isinstance(get_registry(), MetricsRegistry)
