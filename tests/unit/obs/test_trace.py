"""Distributed-tracing primitives: context, recorder, assembly."""

import io
import json
import threading

import pytest

from vidb.obs.trace import (
    FlightRecorder,
    TraceContext,
    assemble_trace,
    current_context,
    node_label,
    parse_traceparent,
    render_trace,
    use_context,
)


class TestTraceContext:
    def test_new_generates_distinct_well_formed_ids(self):
        a, b = TraceContext.new(), TraceContext.new()
        assert a.trace_id != b.trace_id
        assert len(a.trace_id) == 32 and len(a.span_id) == 16
        int(a.trace_id, 16)  # hex or raise
        int(a.span_id, 16)

    def test_header_round_trip(self):
        context = TraceContext.new(sampled=True)
        parsed = parse_traceparent(context.to_header())
        assert parsed == context
        assert parsed.sampled is True

    def test_unsampled_flag_round_trips(self):
        context = TraceContext.new(sampled=False)
        assert context.to_header().endswith("-00")
        assert parse_traceparent(context.to_header()).sampled is False

    def test_child_shares_trace_id_with_fresh_span_id(self):
        parent = TraceContext.new()
        child = parent.child()
        assert child.trace_id == parent.trace_id
        assert child.span_id != parent.span_id
        assert child.sampled == parent.sampled

    @pytest.mark.parametrize("header", [
        None, 42, "", "garbage", "00-abc-def-01",
        "00-" + "0" * 32 + "-" + "1" * 16 + "-01",   # all-zero trace id
        "00-" + "1" * 32 + "-" + "0" * 16 + "-01",   # all-zero span id
        "00-" + "g" * 32 + "-" + "1" * 16 + "-01",   # not hex
        "ff-" + "1" * 32 + "-" + "2" * 16 + "-01",   # unknown version
    ])
    def test_malformed_headers_parse_to_none(self, header):
        assert parse_traceparent(header) is None

    def test_ambient_context_is_scoped_and_thread_local(self):
        context = TraceContext.new()
        assert current_context() is None
        with use_context(context):
            assert current_context() is context
            seen = []
            thread = threading.Thread(
                target=lambda: seen.append(current_context()))
            thread.start()
            thread.join()
            assert seen == [None]
        assert current_context() is None


class TestFlightRecorder:
    def test_rate_zero_never_samples(self):
        recorder = FlightRecorder(sample_rate=0.0)
        assert not any(recorder.should_sample() for __ in range(100))

    def test_rate_one_always_samples(self):
        recorder = FlightRecorder(sample_rate=1.0)
        assert all(recorder.should_sample() for __ in range(10))

    def test_sampled_context_wins_over_rate(self):
        recorder = FlightRecorder(sample_rate=0.0)
        assert recorder.should_sample(TraceContext.new(sampled=True))
        assert not recorder.should_sample(TraceContext.new(sampled=False))

    def test_unsampled_segments_are_dropped_and_counted(self):
        recorder = FlightRecorder(sample_rate=0.0)
        recorder.record(TraceContext.new(sampled=False),
                        node={"role": "standalone"}, op="query")
        assert len(recorder) == 0
        assert recorder.dropped_unsampled == 1

    def test_errors_are_always_retained(self):
        recorder = FlightRecorder(sample_rate=0.0)
        context = TraceContext.new(sampled=False)
        recorder.record(context, node={"role": "standalone"}, op="query",
                        status="error", error="boom")
        (segment,) = recorder.get(context.trace_id)
        assert segment["status"] == "error"
        assert segment["error"] == "boom"

    def test_slow_requests_are_always_retained(self):
        recorder = FlightRecorder(sample_rate=0.0, slow_threshold_s=0.01)
        assert recorder.is_slow(0.02) and not recorder.is_slow(0.001)
        context = TraceContext.new(sampled=False)
        recorder.record(context, node={"role": "standalone"}, op="query",
                        duration_s=0.02, forced=True)
        assert len(recorder.get(context.trace_id)) == 1

    def test_ring_evicts_oldest(self):
        recorder = FlightRecorder(capacity=3, sample_rate=1.0)
        contexts = [TraceContext.new() for __ in range(5)]
        for index, context in enumerate(contexts):
            recorder.record(context, node={"role": "s"}, op=f"op{index}")
        assert len(recorder) == 3
        assert recorder.get(contexts[0].trace_id) == []
        assert len(recorder.get(contexts[-1].trace_id)) == 1

    def test_summaries_most_recent_first(self):
        recorder = FlightRecorder(sample_rate=1.0)
        for index in range(4):
            recorder.record(TraceContext.new(), node={"role": "s"},
                            op=f"op{index}", started_at=float(index))
        rows = recorder.summaries(limit=2)
        assert [row["op"] for row in rows] == ["op3", "op2"]
        assert all("duration_ms" in row for row in rows)

    def test_sink_receives_json_lines(self):
        sink = io.StringIO()
        recorder = FlightRecorder(sample_rate=1.0, sink=sink)
        context = TraceContext.new()
        recorder.record(context, node={"role": "s"}, op="query")
        line = sink.getvalue().strip()
        assert json.loads(line)["trace_id"] == context.trace_id

    def test_stats_shape(self):
        recorder = FlightRecorder(capacity=8, sample_rate=0.5)
        stats = recorder.stats()
        assert stats["capacity"] == 8
        assert stats["sample_rate"] == 0.5
        assert stats["depth"] == 0


class TestAssembly:
    def _segment(self, context, parent, node, op="query", **extra):
        segment = {"trace_id": context.trace_id, "span_id": context.span_id,
                   "parent_span_id": parent, "sampled": True, "node": node,
                   "op": op, "status": "ok", "started_at": 1.0,
                   "duration_s": 0.001}
        segment.update(extra)
        return segment

    def test_cross_process_parenting(self):
        client = TraceContext.new()
        router_ctx = client.child()
        replica_ctx = router_ctx.child()
        segments = [
            self._segment(replica_ctx, router_ctx.span_id,
                          {"role": "replica"}, started_at=3.0),
            self._segment(router_ctx, client.span_id,
                          {"role": "router"}, started_at=2.0),
        ]
        roots = assemble_trace(segments)
        assert len(roots) == 1
        assert roots[0]["node"]["role"] == "router"
        assert [c["node"]["role"] for c in roots[0]["children"]] == [
            "replica"]

    def test_duplicate_segments_prefer_the_copy_with_spans(self):
        context = TraceContext.new()
        bare = self._segment(context, None, {"role": "primary"})
        rich = self._segment(context, None, {"role": "primary"},
                             spans={"name": "server.query", "seconds": 0.1,
                                    "payload": {}, "children": []})
        roots = assemble_trace([bare, rich])
        assert len(roots) == 1
        assert "spans" in roots[0]

    def test_render_groups_orphans_under_client_line(self):
        client = TraceContext.new()
        first, second = client.child(), client.child()
        text = render_trace([
            self._segment(first, client.span_id, {"role": "router",
                                                  "host": "h", "port": 1}),
            self._segment(second, client.span_id, {"role": "router",
                                                   "host": "h", "port": 1},
                          started_at=2.0),
        ])
        assert text.startswith(f"trace {client.trace_id}")
        assert f"client (span {client.span_id})" in text
        assert text.count("query @ router@h:1") == 2

    def test_render_empty(self):
        assert render_trace([]) == "(no segments)"

    def test_render_leaf_callback_appends(self):
        context = TraceContext.new()
        text = render_trace(
            [self._segment(context, None, {"role": "primary"})],
            render_leaf=lambda segment: f"    extra:{segment['op']}")
        assert "extra:query" in text

    def test_node_label(self):
        assert node_label({"role": "replica", "host": "10.0.0.1",
                           "port": 7442, "generation": 2}) == \
            "replica@10.0.0.1:7442 gen=2"
        assert node_label({"role": "router"}) == "router"
