"""Tracer span nesting, aggregates, and the no-op disabled path."""

import threading

import pytest

from vidb.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    activate,
    current_tracer,
)


class TestSpan:
    def test_duration_never_negative(self):
        span = Span("s")
        span.started_s, span.ended_s = 2.0, 1.0
        assert span.duration_s == 0.0

    def test_annotate_overwrites_and_chains(self):
        span = Span("s", {"a": 1})
        assert span.annotate(a=2, b=3) is span
        assert span.payload == {"a": 2, "b": 3}

    def test_count_accumulates_from_zero(self):
        span = Span("s")
        span.count("hits").count("hits", 4)
        assert span.payload["hits"] == 5

    def test_find_walks_descendants_and_self(self):
        root = Span("round")
        inner = Span("round")
        other = Span("rule")
        root.children.append(other)
        other.children.append(inner)
        assert root.find("round") == [root, inner]
        assert root.find("missing") == []

    def test_as_dict_shape(self):
        root = Span("root", {"k": 1})
        root.children.append(Span("child"))
        data = root.as_dict()
        assert data["name"] == "root"
        assert data["payload"] == {"k": 1}
        assert [c["name"] for c in data["children"]] == ["child"]
        # Childless, payload-free spans serialize minimally.
        assert set(data["children"][0]) == {"name", "seconds"}

    def test_render_indents_children(self):
        root = Span("root")
        root.children.append(Span("child"))
        lines = root.render().splitlines()
        assert lines[0].startswith("root")
        assert lines[1].startswith("  child")


class TestTracer:
    def test_spans_nest_into_a_tree(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner-1"):
                pass
            with tracer.span("inner-2"):
                pass
        assert [s.name for s in tracer.roots] == ["outer"]
        root = tracer.root()
        assert [s.name for s in root.children] == ["inner-1", "inner-2"]
        assert root.duration_s >= sum(c.duration_s for c in root.children)

    def test_stack_unwinds_on_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise RuntimeError("boom")
        assert tracer.current() is None
        # Both spans closed despite the exception.
        assert tracer.root().children[0].ended_s > 0

    def test_current_is_innermost_open_span(self):
        tracer = Tracer()
        assert tracer.current() is None
        with tracer.span("a"):
            with tracer.span("b") as b:
                assert tracer.current() is b

    def test_sibling_roots(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [s.name for s in tracer.roots] == ["first", "second"]
        assert tracer.root().name == "first"

    def test_record_aggregates_per_name(self):
        tracer = Tracer()
        tracer.record("solver.entails", 0.25)
        tracer.record("solver.entails", 0.5)
        tracer.record("setorder.closure", 0.125, count=3)
        assert tracer.aggregates["solver.entails"] == {
            "count": 2, "seconds": 0.75}
        assert tracer.aggregates["setorder.closure"]["count"] == 3

    def test_span_payload_kwargs(self):
        tracer = Tracer()
        with tracer.span("iter", index=4) as span:
            span.count("derived", 7)
        assert tracer.root().payload == {"index": 4, "derived": 7}


class TestNullTracer:
    def test_disabled_flag(self):
        assert Tracer.enabled is True
        assert NullTracer.enabled is False
        assert NULL_TRACER.enabled is False

    def test_span_is_reusable_noop(self):
        first = NULL_TRACER.span("a", index=1)
        second = NULL_TRACER.span("b")
        assert first is second  # one preallocated context manager
        with first as span:
            assert span.annotate(x=1) is span
            assert span.count("k", 2) is span
        assert span.payload == {}

    def test_collects_nothing(self):
        with NULL_TRACER.span("stage"):
            NULL_TRACER.record("solver.entails", 1.0)
        assert NULL_TRACER.roots == []
        assert NULL_TRACER.aggregates == {}
        assert NULL_TRACER.root() is None
        assert NULL_TRACER.current() is None


class TestActivation:
    def test_default_is_null_tracer(self):
        assert current_tracer() is NULL_TRACER

    def test_activate_nests_and_restores(self):
        outer, inner = Tracer(), Tracer()
        with activate(outer):
            assert current_tracer() is outer
            with activate(inner):
                assert current_tracer() is inner
            assert current_tracer() is outer
        assert current_tracer() is NULL_TRACER

    def test_activate_restores_on_exception(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with activate(tracer):
                raise ValueError
        assert current_tracer() is NULL_TRACER

    def test_method_form(self):
        tracer = Tracer()
        with tracer.activate() as active:
            assert active is tracer
            assert current_tracer() is tracer

    def test_thread_isolation(self):
        tracer = Tracer()
        seen = {}

        def probe():
            seen["other"] = current_tracer()

        with activate(tracer):
            worker = threading.Thread(target=probe)
            worker.start()
            worker.join()
        assert seen["other"] is NULL_TRACER
