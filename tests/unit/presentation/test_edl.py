"""Unit tests for edit decision lists."""

import pytest

from vidb.errors import VidbError
from vidb.intervals.generalized import GeneralizedInterval
from vidb.model.objects import GeneralizedIntervalObject
from vidb.model.oid import Oid
from vidb.presentation.edl import (
    EDL,
    Cut,
    edl_from_footprint,
    edl_from_interval,
    edl_from_query,
)
from vidb.query.engine import QueryEngine
from vidb.workloads.paper import rope_database


def gi(*pairs):
    return GeneralizedInterval.from_pairs(pairs)


class TestCut:
    def test_duration(self):
        assert Cut("tape", 2.0, 10.0).duration == 8.0

    def test_inverted_cut_rejected(self):
        with pytest.raises(VidbError):
            Cut("tape", 5.0, 5.0)


class TestEDL:
    def test_duration_sums_cuts(self):
        edl = EDL([Cut("a", 0, 5), Cut("b", 10, 12)])
        assert edl.duration == 7

    def test_then_concatenates(self):
        first = EDL([Cut("a", 0, 5)])
        second = EDL([Cut("b", 0, 3)])
        combined = first.then(second)
        assert len(combined) == 2 and combined.duration == 8

    def test_coalesced_merges_seamless_continuations(self):
        edl = EDL([Cut("a", 0, 5), Cut("a", 5, 9), Cut("b", 0, 2)])
        merged = edl.coalesced()
        assert len(merged) == 2
        assert merged.cuts[0] == Cut("a", 0, 9)

    def test_coalesced_keeps_gapped_cuts(self):
        edl = EDL([Cut("a", 0, 5), Cut("a", 6, 9)])
        assert len(edl.coalesced()) == 2

    def test_limited_trims_final_cut(self):
        edl = EDL([Cut("a", 0, 5), Cut("b", 0, 10)])
        limited = edl.limited(8)
        assert limited.duration == 8
        assert limited.cuts[1] == Cut("b", 0, 3)

    def test_limited_zero(self):
        assert len(EDL([Cut("a", 0, 5)]).limited(0)) == 0

    def test_limited_larger_than_total_is_identity(self):
        edl = EDL([Cut("a", 0, 5)])
        assert edl.limited(100) == edl

    def test_timeline_playback_clock(self):
        edl = EDL([Cut("a", 10, 15), Cut("b", 0, 3)])
        rows = edl.timeline()
        assert rows[0][:2] == (0.0, 5.0)
        assert rows[1][:2] == (5.0, 8.0)

    def test_render_contains_timecodes(self):
        text = EDL([Cut("tape", 2, 10)], title="demo").render()
        assert text.splitlines()[0] == "TITLE: demo"
        assert "00:00:02:00" in text and "00:00:10:00" in text

    def test_invalid_cut_rejected(self):
        with pytest.raises(VidbError):
            EDL(["not a cut"])  # type: ignore[list-item]


class TestBuilders:
    def test_from_footprint(self):
        edl = edl_from_footprint(gi((0, 5), (10, 15)), "tape")
        assert [c.t_in for c in edl.cuts] == [0, 10]
        assert edl.duration == 10

    def test_from_footprint_skips_point_fragments(self):
        footprint = GeneralizedInterval.from_pairs([(0, 5), (7, 7)])
        edl = edl_from_footprint(footprint, "tape")
        assert len(edl) == 1

    def test_from_interval(self):
        interval = GeneralizedIntervalObject(
            Oid.interval("g"), {"duration": gi((1, 4))})
        edl = edl_from_interval(interval)
        assert edl.cuts == (Cut("g", 1.0, 4.0),)
        assert edl.title == "g"

    def test_from_query(self):
        engine = QueryEngine(rope_database())
        edl = edl_from_query(
            engine, "?- interval(G), object(o1), o1 in G.entities.", "G")
        assert len(edl) == 2
        assert edl.cuts[0].source == "gi1"

    def test_from_query_deduplicates_intervals(self):
        engine = QueryEngine(rope_database())
        edl = edl_from_query(
            engine,
            "?- interval(G), object(O), O in G.entities.", "G")
        assert len(edl) == 2  # every entity maps to the same two intervals

    def test_from_query_rejects_non_interval_variable(self):
        engine = QueryEngine(rope_database())
        with pytest.raises(VidbError):
            edl_from_query(engine, "?- object(O).", "O")
