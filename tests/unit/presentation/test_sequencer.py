"""Unit tests for the declarative sequencer."""

import pytest

from vidb.errors import VidbError
from vidb.presentation.edl import EDL, Cut
from vidb.presentation.sequencer import ORDERS, Sequencer, interleave
from vidb.query.engine import QueryEngine
from vidb.storage.database import VideoDatabase

QUERY = "?- interval(G), object(star), star in G.entities."


@pytest.fixture
def engine():
    db = VideoDatabase("footage")
    db.new_entity("star")
    # chronological order: clip_b, clip_a, clip_c — durations 5, 30, 10
    db.new_interval("clip_a", entities=["star"], duration=[(50, 80)])
    db.new_interval("clip_b", entities=["star"], duration=[(0, 5)])
    db.new_interval("clip_c", entities=["star"], duration=[(100, 110)])
    return QueryEngine(db)


class TestSequencer:
    def test_chronological_order(self, engine):
        edl = Sequencer(engine).sequence(QUERY, "G", order="chronological")
        assert [c.source for c in edl.cuts] == ["clip_b", "clip_a", "clip_c"]

    def test_duration_order(self, engine):
        edl = Sequencer(engine).sequence(QUERY, "G", order="duration")
        assert [c.source for c in edl.cuts] == ["clip_a", "clip_c", "clip_b"]

    def test_answer_order_is_engine_order(self, engine):
        edl = Sequencer(engine).sequence(QUERY, "G", order="answer")
        assert [c.source for c in edl.cuts] == \
            [str(v) for v in engine.query(QUERY).column("G")]

    def test_per_item_limit(self, engine):
        edl = Sequencer(engine).sequence(QUERY, "G", order="chronological",
                                         per_item_limit=4)
        assert all(cut.duration <= 4 for cut in edl.cuts)
        assert edl.duration == 12

    def test_max_duration_budget(self, engine):
        edl = Sequencer(engine).sequence(QUERY, "G", order="chronological",
                                         max_duration=20)
        assert edl.duration == 20

    def test_unknown_order_rejected(self, engine):
        with pytest.raises(VidbError):
            Sequencer(engine).sequence(QUERY, "G", order="random")

    def test_orders_enumerated(self):
        assert set(ORDERS) == {"chronological", "duration", "answer"}

    def test_title_carried(self, engine):
        edl = Sequencer(engine).sequence(QUERY, "G", title="reel")
        assert edl.title == "reel"

    def test_empty_material(self, engine):
        edl = Sequencer(engine).sequence(
            "?- interval(G), object(star), star in G.entities, "
            "G.duration => (t > 900 and t < 901).", "G")
        assert len(edl) == 0 and edl.duration == 0


class TestInterleave:
    def test_alternates_cuts(self):
        first = EDL([Cut("a", 0, 1), Cut("a", 2, 3)])
        second = EDL([Cut("b", 0, 1), Cut("b", 2, 3)])
        combined = interleave(first, second)
        assert [c.source for c in combined.cuts] == ["a", "b", "a", "b"]

    def test_uneven_lengths_append_remainder(self):
        first = EDL([Cut("a", 0, 1)])
        second = EDL([Cut("b", 0, 1), Cut("b", 2, 3), Cut("b", 4, 5)])
        combined = interleave(first, second)
        assert [c.source for c in combined.cuts] == ["a", "b", "b", "b"]
