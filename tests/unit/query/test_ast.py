"""Unit tests for the query-language AST."""

import pytest

from vidb.errors import QueryError
from vidb.model.oid import Oid
from vidb.query.ast import (
    AttrPath,
    ComparisonAtom,
    ConcatTerm,
    EntailmentAtom,
    Literal,
    MembershipAtom,
    Program,
    Query,
    Rule,
    SubsetAtom,
    Symbol,
    Variable,
    term_variables,
)


class TestTerms:
    def test_variable_identity(self):
        assert Variable("X") == Variable("X")
        assert Variable("X") != Variable("Y")
        assert Variable("X") != Symbol("X")

    def test_invalid_variable_name(self):
        with pytest.raises(QueryError):
            Variable("9bad")

    def test_symbol_identity(self):
        assert Symbol("o1") == Symbol("o1")
        assert len({Symbol("a"), Symbol("a")}) == 1

    def test_term_variables(self):
        assert term_variables(Variable("X")) == frozenset({Variable("X")})
        assert term_variables(Symbol("a")) == frozenset()
        assert term_variables(5) == frozenset()

    def test_concat_term_variables(self):
        term = ConcatTerm(Variable("A"), ConcatTerm(Variable("B"), Symbol("g")))
        assert term.variables() == frozenset({Variable("A"), Variable("B")})

    def test_concat_rejects_constants(self):
        with pytest.raises(QueryError):
            ConcatTerm(5, Variable("G"))

    def test_concat_accepts_oids(self):
        term = ConcatTerm(Oid.interval("g1"), Variable("G"))
        assert term.variables() == frozenset({Variable("G")})


class TestAttrPath:
    def test_construction(self):
        path = AttrPath(Variable("G"), "duration")
        assert path.variables() == frozenset({Variable("G")})

    def test_symbol_subject_has_no_variables(self):
        assert AttrPath(Symbol("g"), "entities").variables() == frozenset()

    def test_invalid_attr_name(self):
        with pytest.raises(QueryError):
            AttrPath(Variable("G"), "")

    def test_invalid_subject(self):
        with pytest.raises(QueryError):
            AttrPath(5, "x")  # type: ignore[arg-type]


class TestLiteral:
    def test_arity_and_variables(self):
        literal = Literal("p", [Variable("X"), Symbol("a"), 3])
        assert literal.arity == 3
        assert literal.variables() == frozenset({Variable("X")})

    def test_uppercase_predicate_rejected(self):
        with pytest.raises(QueryError):
            Literal("P", [Variable("X")])

    def test_zero_arity_rejected(self):
        with pytest.raises(QueryError):
            Literal("p", [])

    def test_has_concat(self):
        plain = Literal("p", [Variable("X")])
        constructive = Literal("p", [ConcatTerm(Variable("A"), Variable("B"))])
        assert not plain.has_concat()
        assert constructive.has_concat()


class TestConstraintAtoms:
    def test_membership_variables(self):
        atom = MembershipAtom(Variable("O"), AttrPath(Variable("G"), "entities"))
        assert atom.variables() == frozenset({Variable("O"), Variable("G")})

    def test_membership_needs_path(self):
        with pytest.raises(QueryError):
            MembershipAtom(Variable("O"), Variable("G"))  # type: ignore[arg-type]

    def test_subset_tuple_variables(self):
        atom = SubsetAtom((Variable("A"), Symbol("b")),
                          AttrPath(Variable("G"), "entities"))
        assert atom.variables() == frozenset({Variable("A"), Variable("G")})

    def test_comparison_rejects_concat(self):
        with pytest.raises(QueryError):
            ComparisonAtom(ConcatTerm(Variable("A"), Variable("B")), "=", 3)

    def test_comparison_unknown_op(self):
        with pytest.raises(QueryError):
            ComparisonAtom(Variable("X"), "~", 3)

    def test_entailment_side_validation(self):
        with pytest.raises(QueryError):
            EntailmentAtom(Variable("X"), Variable("Y"))  # type: ignore[arg-type]

    def test_entailment_uppercase_inline_vars_are_rule_vars(self):
        from vidb.constraints.terms import Var

        atom = EntailmentAtom(AttrPath(Variable("G"), "duration"),
                              (Var("t") > 1) & (Var("t") < Var("B")))
        assert Variable("B") in atom.variables()
        assert Variable("t") not in atom.variables()


class TestRule:
    def test_constructive_flag(self):
        head = Literal("q", [ConcatTerm(Variable("A"), Variable("B"))])
        body = [Literal("p", [Variable("A")]), Literal("p", [Variable("B")])]
        rule = Rule(head, body)
        assert rule.is_constructive and not rule.is_fact

    def test_literals_and_constraints_partition(self):
        body = [
            Literal("p", [Variable("X")]),
            ComparisonAtom(Variable("X"), "=", 3),
        ]
        rule = Rule(Literal("q", [Variable("X")]), body)
        assert len(rule.literals()) == 1
        assert len(rule.constraints()) == 1

    def test_concat_in_body_literal_rejected(self):
        body = [Literal("p", [ConcatTerm(Variable("A"), Variable("B"))])]
        with pytest.raises(QueryError):
            Rule(Literal("q", [Variable("A")]), body)

    def test_head_must_be_literal(self):
        with pytest.raises(QueryError):
            Rule(Variable("X"), [])  # type: ignore[arg-type]

    def test_variables_cover_head_and_body(self):
        rule = Rule(Literal("q", [Variable("X")]),
                    [Literal("p", [Variable("X"), Variable("Y")])])
        assert rule.variables() == frozenset({Variable("X"), Variable("Y")})


class TestProgramAndQuery:
    def test_program_rules_for(self):
        r1 = Rule(Literal("q", [Variable("X")]), [Literal("p", [Variable("X")])])
        r2 = Rule(Literal("r", [Variable("X")]), [Literal("q", [Variable("X")])])
        program = Program([r1, r2])
        assert program.rules_for("q") == (r1,)
        assert program.idb_predicates() == frozenset({"q", "r"})

    def test_program_extend(self):
        r1 = Rule(Literal("q", [Symbol("a")]), [])
        program = Program([r1]).extend([Rule(Literal("r", [Symbol("b")]), [])])
        assert len(program) == 2

    def test_query_answer_variables_default(self):
        query = Query([Literal("p", [Variable("B"), Variable("A")])])
        assert query.answer_variables == (Variable("B"), Variable("A"))

    def test_query_explicit_projection(self):
        query = Query([Literal("p", [Variable("B"), Variable("A")])],
                      answer_variables=[Variable("A")])
        assert query.answer_variables == (Variable("A"),)

    def test_empty_query_rejected(self):
        with pytest.raises(QueryError):
            Query([])
