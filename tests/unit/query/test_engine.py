"""Unit tests for the query engine facade."""

import pytest

from vidb.errors import QueryError, SafetyError
from vidb.model.oid import Oid
from vidb.query.engine import Answer, AnswerSet, QueryEngine
from vidb.query.parser import parse_query
from vidb.storage.database import VideoDatabase


@pytest.fixture
def db():
    database = VideoDatabase("engine")
    database.new_entity("a", name="Ana", role="host")
    database.new_entity("b", name="Ben", role="guest")
    database.new_interval("g1", entities=["a", "b"], duration=[(0, 10)])
    database.new_interval("g2", entities=["b"], duration=[(20, 30)])
    database.relate("in", Oid.entity("a"), Oid.entity("b"),
                    Oid.interval("g1"))
    return database


@pytest.fixture
def engine(db):
    return QueryEngine(db)


class TestQuery:
    def test_text_query(self, engine):
        answers = engine.query("?- interval(G), object(b), b in G.entities.")
        assert len(answers) == 2
        assert answers.column("G") == [Oid.interval("g1"), Oid.interval("g2")]

    def test_ast_query(self, engine):
        answers = engine.query(parse_query("?- object(O)."))
        assert len(answers) == 2

    def test_answer_access(self, engine):
        answer = engine.query("?- object(O).").first()
        assert isinstance(answer, Answer)
        assert answer["O"] == Oid.entity("a")
        assert answer.get("missing") is None
        with pytest.raises(QueryError):
            answer["missing"]

    def test_answers_deterministic_order(self, engine):
        first = engine.query("?- object(O).").rows()
        second = engine.query("?- object(O).").rows()
        assert first == second

    def test_unknown_column_rejected(self, engine):
        answers = engine.query("?- object(O).")
        with pytest.raises(QueryError):
            answers.column("Z")

    def test_boolean_query_via_ask(self, engine):
        assert engine.ask("?- object(a), interval(g1), a in g1.entities.")
        assert not engine.ask("?- object(a), interval(g2), a in g2.entities.")

    def test_empty_answer_set_falsy(self, engine):
        answers = engine.query('?- object(O), O.name = "Nobody".')
        assert not answers and len(answers) == 0
        assert answers.first() is None

    def test_unsafe_query_rejected(self, engine):
        with pytest.raises(SafetyError):
            engine.query("?- interval(G), O in G.entities.")

    def test_indexing_into_answers(self, engine):
        answers = engine.query("?- object(O).")
        assert answers[0]["O"] == Oid.entity("a")


class TestRules:
    def test_add_rules_text(self, engine):
        engine.add_rules("both(G) :- interval(G), {a, b} subset G.entities.")
        assert engine.ask("?- both(G).")
        assert engine.query("?- both(G).").column("G") == [Oid.interval("g1")]

    def test_add_rules_rejects_unsafe(self, engine):
        with pytest.raises(SafetyError):
            engine.add_rules("bad(X, Y) :- object(X).")

    def test_add_rules_rejects_edb_shadowing(self, engine):
        with pytest.raises(SafetyError):
            engine.add_rules("in(X, Y, G) :- object(X), object(Y), interval(G).")

    def test_failed_add_rules_leaves_program_unchanged(self, engine):
        engine.add_rules("good(X) :- object(X).")
        with pytest.raises(SafetyError):
            engine.add_rules("bad(X, Y) :- object(X).")
        assert engine.ask("?- good(X).")
        assert len(engine.program) == 1

    def test_facts_materializes_program(self, engine):
        engine.add_rules("pair(A, B) :- object(A), object(B), A != B.")
        assert len(engine.facts("pair")) == 2

    def test_rules_persist_across_queries(self, engine):
        engine.add_rules("named(O) :- object(O), O.name != \"\".")
        assert len(engine.query("?- named(O).")) == 2
        assert len(engine.query("?- named(O).")) == 2


class TestComputedPredicates:
    def test_builtin_gi_predicates_available(self, engine):
        answers = engine.query(
            "?- interval(G1), interval(G2), gi_before(G1, G2).")
        assert [tuple(map(str, r)) for r in answers.rows()] == [("g1", "g2")]

    def test_register_custom_computed(self, engine):
        def is_long(ctx, args):
            obj = ctx.objects.get(args[0])
            return obj is not None and obj.footprint().measure > 15

    # registered under a fresh name, usable immediately
        engine.register_computed("long_interval", 1, is_long)
        answers = engine.query("?- interval(G), long_interval(G).")
        assert answers.rows() == []
        engine.db.new_interval("g3", duration=[(0, 100)])
        answers = engine.query("?- interval(G), long_interval(G).")
        assert [str(r[0]) for r in answers.rows()] == ["g3"]


class TestExplain:
    def test_derivation_tree(self, engine):
        engine.add_rules("both(G) :- interval(G), {a, b} subset G.entities.")
        derivations = engine.explain("?- both(G).")
        assert len(derivations) == 1
        rendered = derivations[0].render()
        assert "both(g1)" in rendered
        assert "database fact" in rendered

    def test_explain_recursive_chain(self, engine):
        engine.db.relate("next", Oid.interval("g1"), Oid.interval("g2"))
        engine.add_rules("""
            reach(X, Y) :- next(X, Y).
            reach(X, Z) :- reach(X, Y), next(Y, Z).
        """)
        derivations = engine.explain("?- reach(X, Y).")
        assert derivations
        assert "reach(g1, g2)" in derivations[0].render()


class TestAnswerSet:
    def test_deduplication(self):
        answers = AnswerSet(["X"], [(1,), (1,), (2,)], stats=None)
        assert len(answers) == 2

    def test_iteration_yields_answers(self):
        answers = AnswerSet(["X", "Y"], [(1, 2)], stats=None)
        assert [a.as_dict() for a in answers] == [{"X": 1, "Y": 2}]


class TestGrouping:
    def test_group_by(self, engine):
        answers = engine.query(
            "?- interval(G), object(O), O in G.entities.")
        groups = answers.group_by("G")
        assert {str(k) for k in groups} == {"g1", "g2"}
        assert len(groups[Oid.interval("g1")]) == 2
        assert all(isinstance(a, Answer) for a in groups[Oid.interval("g1")])

    def test_counts(self, engine):
        answers = engine.query(
            "?- interval(G), object(O), O in G.entities.")
        counts = {str(k): v for k, v in answers.counts("G").items()}
        assert counts == {"g1": 2, "g2": 1}

    def test_unknown_variable_rejected(self, engine):
        answers = engine.query("?- object(O).")
        with pytest.raises(QueryError):
            answers.group_by("Z")
