"""The unified execution API: options, reports, deadlines, tracing."""

import pytest

import vidb
from vidb import connect
from vidb.errors import EvaluationError, QueryTimeoutError
from vidb.query.engine import AnswerSet, QueryEngine
from vidb.query.execution import ExecutionOptions, ExecutionReport
from vidb.storage.persistence import save
from vidb.workloads.paper import rope_database

QUERY = "?- interval(G), object(O), O in G.entities."
#: Exercises the dense-order solver (hot-path aggregates).
ENTAIL_QUERY = "?- interval(G), G.duration => (t >= 0)."


@pytest.fixture(scope="module")
def engine():
    return QueryEngine(rope_database(), use_stdlib_rules=True)


class TestExecutionOptions:
    def test_defaults(self):
        options = ExecutionOptions()
        assert options.timeout_s is None
        assert options.trace is False
        assert options.mode is None
        assert options.prune_rules is None

    def test_frozen(self):
        with pytest.raises(Exception):
            ExecutionOptions().trace = True

    def test_validates_mode_and_timeout(self):
        with pytest.raises(EvaluationError):
            ExecutionOptions(mode="bottom-up")
        with pytest.raises(EvaluationError):
            ExecutionOptions(timeout_s=-1)

    def test_merged_and_coerce(self):
        base = ExecutionOptions(timeout_s=5)
        merged = base.merged(trace=True)
        assert merged.timeout_s == 5 and merged.trace
        assert base.trace is False
        assert ExecutionOptions.coerce(None) == ExecutionOptions()
        assert ExecutionOptions.coerce(base, trace=True) == merged
        assert ExecutionOptions.coerce(base) is base


class TestExecute:
    def test_matches_legacy_query(self, engine):
        report = engine.execute(QUERY)
        legacy = engine.query(QUERY)
        assert isinstance(report, ExecutionReport)
        assert isinstance(report.answers, AnswerSet)
        assert report.answers.rows() == legacy.rows()
        assert report.answers.variables == legacy.variables
        assert report.cached is False

    def test_keyword_overrides(self, engine):
        report = engine.execute(QUERY, mode="naive")
        assert report.options.mode == "naive"
        assert report.stats.mode == "naive"
        assert report.answers.rows() == engine.query(QUERY).rows()

    def test_prune_toggle(self, engine):
        pruned = engine.execute(QUERY)
        unpruned = engine.execute(QUERY, prune_rules=False)
        assert pruned.answers.rows() == unpruned.answers.rows()

    def test_elapsed_and_stages_always_populated(self, engine):
        report = engine.execute(QUERY)
        assert report.elapsed_s > 0
        assert report.stats.elapsed_s == report.elapsed_s
        for stage in ("parse", "safety", "prune", "evaluate", "collect"):
            assert stage in report.stats.stages
        assert report.stats.iteration_seconds
        assert len(report.stats.iteration_seconds) == report.stats.iterations

    def test_untraced_report_has_no_trace(self, engine):
        report = engine.execute(QUERY)
        assert report.trace is None
        assert report.aggregates == {}

    def test_zero_timeout_expires_immediately(self, engine):
        with pytest.raises(QueryTimeoutError):
            engine.execute(QUERY, timeout_s=0.0)

    def test_ask_delegates(self, engine):
        assert engine.ask(QUERY) is True
        assert engine.ask("?- object(O), O.name = \"nobody\".") is False

    def test_as_dict_round_trips_to_json(self, engine):
        import json

        data = engine.execute(ENTAIL_QUERY, trace=True).as_dict(limit=1)
        assert data["count"] == 2
        assert len(data["rows"]) == 1
        assert "trace" in data and "aggregates" in data
        json.dumps(data)  # must be serializable as-is


class TestTracedExecute:
    def test_trace_populates_tree_and_rules(self, engine):
        report = engine.execute(QUERY, trace=True)
        root = report.trace
        assert root is not None and root.name == "query.execute"
        names = {child.name for child in root.children}
        assert {"parse", "safety", "prune", "evaluate", "collect"} <= names
        assert root.find("fixpoint.iteration")
        assert "query" in report.stats.rules
        profile = report.stats.rules["query"]
        assert profile.firings == report.stats.rule_firings
        assert profile.seconds >= 0

    def test_trace_collects_hot_path_aggregates(self, engine):
        report = engine.execute(ENTAIL_QUERY, trace=True)
        assert "solver.entails" in report.aggregates
        agg = report.aggregates["solver.entails"]
        assert agg["count"] >= 1 and agg["seconds"] >= 0

    def test_untraced_run_records_no_aggregates(self, engine):
        report = engine.execute(ENTAIL_QUERY)
        assert report.aggregates == {}

    def test_profile_renders(self, engine):
        text = engine.execute(QUERY, trace=True).profile()
        assert "== execution profile ==" in text
        assert "-- stages --" in text
        assert "-- rules --" in text
        assert "-- span tree --" in text

    def test_stage_sum_accounts_for_total(self, engine):
        """Acceptance: per-stage times sum to within 10% of wall-clock.

        Warm the engine first — interpreter warm-up on the very first
        query is real time spent outside any stage.
        """
        engine.execute(QUERY)
        best = 0.0
        for __ in range(5):
            report = engine.execute(QUERY)
            share = sum(report.stats.stages.values()) / report.elapsed_s
            best = max(best, share)
        assert best >= 0.90


class TestConnect:
    def test_from_live_database(self):
        db = rope_database()
        engine = connect(db, use_stdlib_rules=True)
        assert engine.db is db
        assert len(engine.execute(QUERY).answers) == 13

    def test_from_snapshot_path(self, tmp_path):
        path = tmp_path / "rope.json"
        save(rope_database(), str(path))
        engine = connect(path, use_stdlib_rules=True, mode="naive")
        assert engine.mode == "naive"
        assert len(engine.execute(QUERY).answers) == 13

    def test_reexported_at_top_level(self):
        assert vidb.connect is connect
        assert vidb.ExecutionOptions is ExecutionOptions
        assert vidb.ExecutionReport is ExecutionReport
