"""Unit tests for bottom-up fixpoint evaluation (Section 6.3.2)."""

import pytest

from vidb.errors import EvaluationError, SafetyError, UnknownPredicateError
from vidb.intervals.generalized import GeneralizedInterval
from vidb.model.oid import Oid
from vidb.query.fixpoint import Relation, RulePlan, evaluate
from vidb.query.parser import parse_program, parse_rule
from vidb.storage.database import VideoDatabase


def gi(*pairs):
    return GeneralizedInterval.from_pairs(pairs)


@pytest.fixture
def db():
    database = VideoDatabase("fixpoint")
    database.new_entity("a", name="Ana", age=30)
    database.new_entity("b", name="Ben", age=40)
    database.new_entity("c", name="Cem", age=40)
    database.new_interval("g1", entities=["a", "b"], duration=[(0, 10)])
    database.new_interval("g2", entities=["b", "c"], duration=[(5, 20)])
    database.new_interval("g3", entities=["c"], duration=[(30, 40)])
    database.relate("next", Oid.interval("g1"), Oid.interval("g2"))
    database.relate("next", Oid.interval("g2"), Oid.interval("g3"))
    return database


class TestRelation:
    def test_add_deduplicates(self):
        rel = Relation()
        assert rel.add((1, 2))
        assert not rel.add((1, 2))
        assert len(rel) == 1

    def test_select_wildcards(self):
        rel = Relation()
        rel.add((1, "a"))
        rel.add((1, "b"))
        rel.add((2, "a"))
        assert len(list(rel.select([1, None]))) == 2
        assert len(list(rel.select([None, "a"]))) == 2
        assert list(rel.select([2, "a"])) == [(2, "a")]
        assert list(rel.select([3, None])) == []

    def test_select_with_restriction(self):
        rel = Relation()
        rel.add((1, "a"))
        rel.add((2, "a"))
        rows = list(rel.select([None, "a"], restrict=[(1, "a")]))
        assert rows == [(1, "a")]

    def test_contains(self):
        rel = Relation()
        rel.add((1,))
        assert (1,) in rel and (2,) not in rel


class TestRulePlan:
    def test_constraints_scheduled_at_earliest_point(self):
        rule = parse_rule(
            "q(X, Y) :- p(X), X < 3, r(X, Y), Y in X.entities.")
        plan = RulePlan.compile(rule)
        assert len(plan.checks_after[0]) == 1   # X < 3 after first literal
        assert len(plan.checks_after[1]) == 1   # membership after second

    def test_ground_constraints_checked_first(self):
        rule = parse_rule("q(X) :- p(X), g.subject = \"murder\".")
        plan = RulePlan.compile(rule)
        assert -1 in plan.checks_after


class TestClassPredicates:
    def test_interval_enumerates_intervals(self, db):
        result = evaluate(db, parse_program("q(G) :- interval(G)."))
        assert len(result.relation("q")) == 3

    def test_object_enumerates_entities(self, db):
        result = evaluate(db, parse_program("q(O) :- object(O)."))
        assert len(result.relation("q")) == 3

    def test_anyobject_enumerates_both(self, db):
        result = evaluate(db, parse_program("q(O) :- anyobject(O)."))
        assert len(result.relation("q")) == 6


class TestConstraintChecking:
    def test_membership(self, db):
        result = evaluate(db, parse_program(
            "q(G) :- interval(G), object(b), b in G.entities."))
        names = {str(row[0]) for row in result.relation("q")}
        assert names == {"g1", "g2"}

    def test_membership_missing_attribute_fails(self, db):
        db.new_interval("bare", duration=[(50, 51)])
        result = evaluate(db, parse_program(
            "q(G) :- interval(G), object(O), O in G.crew."))
        assert result.relation("q") == frozenset()

    def test_subset(self, db):
        result = evaluate(db, parse_program(
            "q(G) :- interval(G), {b, c} subset G.entities."))
        assert {str(r[0]) for r in result.relation("q")} == {"g2"}

    def test_subset_between_paths(self, db):
        result = evaluate(db, parse_program(
            "q(G1, G2) :- interval(G1), interval(G2), "
            "G1.entities subset G2.entities, G1 != G2."))
        assert {tuple(map(str, r)) for r in result.relation("q")} == {
            ("g3", "g2")}

    def test_comparison_on_attributes(self, db):
        result = evaluate(db, parse_program(
            "q(A, B) :- object(A), object(B), A.age = B.age, A != B."))
        names = {tuple(map(str, r)) for r in result.relation("q")}
        assert names == {("b", "c"), ("c", "b")}

    def test_comparison_order(self, db):
        result = evaluate(db, parse_program(
            "q(A) :- object(A), A.age < 35."))
        assert {str(r[0]) for r in result.relation("q")} == {"a"}

    def test_comparison_incomparable_types_fails_quietly(self, db):
        result = evaluate(db, parse_program(
            'q(A) :- object(A), A.age < "forty".'))
        assert result.relation("q") == frozenset()

    def test_entailment_with_inline_constraint(self, db):
        result = evaluate(db, parse_program(
            "q(G) :- interval(G), G.duration => (t >= 0 and t <= 12)."))
        assert {str(r[0]) for r in result.relation("q")} == {"g1"}

    def test_entailment_between_paths(self, db):
        db.new_interval("wide", duration=[(0, 25)])
        result = evaluate(db, parse_program(
            "q(G1, G2) :- interval(G1), interval(G2), "
            "G2.duration => G1.duration, G1 != G2."))
        pairs = {tuple(map(str, r)) for r in result.relation("q")}
        assert ("wide", "g1") in pairs and ("wide", "g2") in pairs
        assert ("g1", "wide") not in pairs

    def test_entailment_with_rule_variable_binding(self, db):
        db.relate("cutoff", 12)
        result = evaluate(db, parse_program(
            "q(G, B) :- interval(G), cutoff(B), "
            "G.duration => (t >= 0 and t <= B)."))
        assert {str(r[0]) for r in result.relation("q")} == {"g1"}

    def test_entailment_on_non_constraint_value_fails(self, db):
        result = evaluate(db, parse_program(
            "q(O) :- object(O), O.name => (t > 0)."))
        assert result.relation("q") == frozenset()


class TestRecursion:
    def test_transitive_closure(self, db):
        program = parse_program("""
            reach(X, Y) :- next(X, Y).
            reach(X, Z) :- reach(X, Y), next(Y, Z).
        """)
        result = evaluate(db, program)
        assert len(result.relation("reach")) == 3  # 2 base + 1 derived

    def test_naive_and_seminaive_agree(self, db):
        program = parse_program("""
            reach(X, Y) :- next(X, Y).
            reach(X, Z) :- reach(X, Y), next(Y, Z).
            pair(A, B) :- object(A), object(B), A.age = B.age.
        """)
        naive = evaluate(db, program, mode="naive")
        seminaive = evaluate(db, program, mode="seminaive")
        for predicate in ("reach", "pair"):
            assert naive.relation(predicate) == seminaive.relation(predicate)

    def test_seminaive_fewer_firings(self, db):
        # Build a longer chain so the difference is visible.
        for i in range(3, 10):
            db.new_interval(f"g{i + 1}", duration=[(i * 10, i * 10 + 5)])
            db.relate("next", Oid.interval(f"g{i}"), Oid.interval(f"g{i + 1}"))
        program = parse_program("""
            reach(X, Y) :- next(X, Y).
            reach(X, Z) :- reach(X, Y), next(Y, Z).
        """)
        naive = evaluate(db, program, mode="naive")
        seminaive = evaluate(db, program, mode="seminaive")
        assert naive.relation("reach") == seminaive.relation("reach")
        assert seminaive.stats.rule_firings < naive.stats.rule_firings


class TestConstructiveRules:
    def test_concatenation_creates_object(self, db):
        program = parse_program(
            "merged(G1 ++ G2) :- interval(G1), interval(G2), object(b), "
            "b in G1.entities, b in G2.entities.")
        result = evaluate(db, program)
        combined = Oid.concat(Oid.interval("g1"), Oid.interval("g2"))
        assert (combined,) in result.relation("merged")
        obj = result.context.objects[combined]
        assert obj.footprint() == gi((0, 20))
        assert result.stats.created_objects == 1

    def test_created_objects_feed_interval_class(self, db):
        program = parse_program("""
            merged(G1 ++ G2) :- interval(G1), interval(G2), object(b),
                                b in G1.entities, b in G2.entities.
            seen(G) :- interval(G).
        """)
        result = evaluate(db, program)
        assert len(result.relation("seen")) == 4  # 3 base + 1 created

    def test_max_objects_guard(self, db):
        program = parse_program(
            "merged(G1 ++ G2) :- interval(G1), interval(G2).")
        with pytest.raises(EvaluationError):
            evaluate(db, program, max_objects=4)

    def test_eager_domain_preloads_pairs(self, db):
        result = evaluate(db, parse_program("q(G) :- interval(G)."),
                          extended_domain="eager")
        # 3 base + C(3,2) = 6 interval objects visible.
        assert len(result.relation("q")) == 6

    def test_unknown_domain_mode_rejected(self, db):
        with pytest.raises(EvaluationError):
            evaluate(db, parse_program("q(G) :- interval(G)."),
                     extended_domain="magic")


class TestErrors:
    def test_unknown_predicate(self, db):
        with pytest.raises(UnknownPredicateError):
            evaluate(db, parse_program("q(X) :- nosuch(X)."))

    def test_unsafe_program_rejected(self, db):
        with pytest.raises(SafetyError):
            evaluate(db, parse_program("q(X, Y) :- next(X, X)."))

    def test_unknown_mode(self, db):
        with pytest.raises(EvaluationError):
            evaluate(db, parse_program("q(G) :- interval(G)."), mode="bogus")


class TestSymbols:
    def test_symbol_resolves_to_entity_first(self, db):
        result = evaluate(db, parse_program("q(X) :- object(X), X = a."))
        assert {str(r[0]) for r in result.relation("q")} == {"a"}

    def test_unresolvable_symbol_is_string(self, db):
        db.relate("tag", Oid.interval("g1"), "highlight")
        result = evaluate(db, parse_program(
            "q(G) :- tag(G, highlight)."))
        assert len(result.relation("q")) == 1

    def test_facts_in_program(self, db):
        program = parse_program("""
            color(red).
            color(blue).
            q(C) :- color(C).
        """)
        result = evaluate(db, program)
        assert {r[0] for r in result.relation("q")} == {"red", "blue"}


class TestProvenance:
    def test_provenance_records_rule(self, db):
        provenance = {}
        program = parse_program("q(G) :- interval(G).")
        result = evaluate(db, program, provenance=provenance)
        fact = ("q", (Oid.interval("g1"),))
        assert fact in provenance
        rule, binding = provenance[fact]
        assert rule.head.predicate == "q"
