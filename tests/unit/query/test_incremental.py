"""Unit tests for incremental view maintenance."""

import pytest

from vidb.errors import EvaluationError
from vidb.intervals.generalized import GeneralizedInterval
from vidb.model.objects import EntityObject, GeneralizedIntervalObject
from vidb.model.oid import Oid
from vidb.query.fixpoint import evaluate
from vidb.query.incremental import MaterializedView
from vidb.query.parser import parse_program
from vidb.storage.database import VideoDatabase

REACH = parse_program("""
    reach(X, Y) :- next(X, Y).
    reach(X, Z) :- reach(X, Y), next(Y, Z).
""")


def chain_db(length):
    db = VideoDatabase("chain")
    db.declare_relation("next")
    for i in range(length):
        db.new_interval(f"g{i}", duration=[(i * 10, i * 10 + 5)])
    for i in range(length - 1):
        db.relate("next", Oid.interval(f"g{i}"), Oid.interval(f"g{i + 1}"))
    return db


def oid(name):
    return Oid.interval(name)


class TestConstruction:
    def test_view_starts_saturated(self):
        view = MaterializedView(chain_db(4), REACH)
        assert len(view.relation("reach")) == 6

    def test_negation_rejected(self):
        program = parse_program("""
            a(X) :- b(X).
            c(X) :- d(X), not a(X).
        """)
        with pytest.raises(EvaluationError):
            MaterializedView(chain_db(2), program)


class TestFactInsertion:
    def test_single_insert_propagates(self):
        view = MaterializedView(chain_db(3), REACH)
        db_extension = oid("g2"), oid("gX")
        view.insert_object(GeneralizedIntervalObject(
            oid("gX"), {"duration": GeneralizedInterval.from_pairs([(90, 95)])}))
        assert view.insert_fact("next", *db_extension)
        reach = view.relation("reach")
        assert (oid("g0"), oid("gX")) in reach
        assert (oid("g1"), oid("gX")) in reach
        assert (oid("g2"), oid("gX")) in reach

    def test_duplicate_insert_is_noop(self):
        view = MaterializedView(chain_db(3), REACH)
        before = view.relation("reach")
        assert not view.insert_fact("next", oid("g0"), oid("g1"))
        assert view.relation("reach") == before

    def test_matches_from_scratch_after_stream(self):
        """The headline invariant: incremental == re-evaluated."""
        base = chain_db(3)
        view = MaterializedView(base, REACH)
        extra_edges = [("g2", "g0"), ("g1", "g1"), ("g0", "g2")]
        for src, dst in extra_edges:
            view.insert_fact("next", oid(src), oid(dst))
            base.relate("next", oid(src), oid(dst))
        fresh = evaluate(base, REACH)
        assert view.relation("reach") == fresh.relation("reach")

    def test_cycle_insertion_closes_fully(self):
        view = MaterializedView(chain_db(4), REACH)
        view.insert_fact("next", oid("g3"), oid("g0"))
        reach = view.relation("reach")
        # every ordered pair (including self-loops) is now reachable
        assert len(reach) == 16


class TestObjectInsertion:
    def test_new_interval_feeds_class_rules(self):
        program = parse_program(
            "wide(G) :- interval(G), G.duration => (t >= 0 and t <= 100).")
        db = chain_db(2)
        view = MaterializedView(db, program)
        before = len(view.relation("wide"))
        view.insert_interval(GeneralizedIntervalObject(
            oid("gnew"), {"duration": GeneralizedInterval.from_pairs([(50, 60)])}))
        assert len(view.relation("wide")) == before + 1

    def test_new_entity_feeds_object_rules(self):
        program = parse_program('named(O) :- object(O), O.name = "Zed".')
        db = chain_db(1)
        view = MaterializedView(db, program)
        view.insert_entity(EntityObject(Oid.entity("z"), {"name": "Zed"}))
        assert len(view.relation("named")) == 1

    def test_duplicate_object_is_noop(self):
        db = chain_db(2)
        view = MaterializedView(db, REACH)
        existing = db.interval("g0")
        assert not view.insert_object(existing)


class TestConstructivePropagation:
    def test_insert_triggers_concatenation(self):
        program = parse_program("""
            linked(G1, G2) :- next(G1, G2).
            merged(G1 ++ G2) :- linked(G1, G2).
        """)
        view = MaterializedView(chain_db(2), program)
        assert len(view.relation("merged")) == 1
        view.insert_fact("next", oid("g1"), oid("g0"))
        assert len(view.relation("merged")) == 1  # g0++g1 == g1++g0
        view.insert_object(GeneralizedIntervalObject(
            oid("g9"), {"duration": GeneralizedInterval.from_pairs([(900, 905)])}))
        view.insert_fact("next", oid("g1"), oid("g9"))
        merged_names = {str(r[0]) for r in view.relation("merged")}
        assert "g1++g9" in merged_names

    def test_counters(self):
        view = MaterializedView(chain_db(3), REACH)
        view.insert_fact("next", oid("g2"), oid("g0"))
        assert view.inserted_facts == 1
        assert view.propagated_facts > 0
