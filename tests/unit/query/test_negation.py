"""Unit tests for stratified negation (a vidb extension of the paper's
positive language)."""

import pytest

from vidb.errors import ParseError, QueryError, SafetyError, UnknownPredicateError
from vidb.model.oid import Oid
from vidb.query.ast import Literal, NegatedLiteral, Variable
from vidb.query.engine import QueryEngine
from vidb.query.parser import parse_program, parse_query, parse_rule
from vidb.query.safety import check_rule, stratify_with_negation
from vidb.storage.database import VideoDatabase


@pytest.fixture
def db():
    database = VideoDatabase("negation")
    database.new_entity("a", role="host")
    database.new_entity("b", role="guest")
    database.new_entity("c", role="guest")
    database.new_interval("g1", entities=["a", "b"], duration=[(0, 10)])
    database.new_interval("g2", entities=["b"], duration=[(20, 30)])
    database.relate("vip", Oid.entity("a"))
    return database


class TestAst:
    def test_negated_literal_wraps_literal(self):
        inner = Literal("p", [Variable("X")])
        negated = NegatedLiteral(inner)
        assert negated.predicate == "p"
        assert negated.variables() == inner.variables()

    def test_negation_of_non_literal_rejected(self):
        with pytest.raises(QueryError):
            NegatedLiteral("p(X)")  # type: ignore[arg-type]

    def test_negation_of_constructive_literal_rejected(self):
        from vidb.query.ast import ConcatTerm

        inner = Literal("p", [ConcatTerm(Variable("A"), Variable("B"))])
        with pytest.raises(QueryError):
            NegatedLiteral(inner)

    def test_rule_partitions_negated_literals(self):
        rule = parse_rule("q(X) :- p(X), not r(X).")
        assert len(rule.literals()) == 1
        assert len(rule.negated_literals()) == 1
        assert rule.negated_literals()[0].predicate == "r"


class TestParser:
    def test_not_before_literal(self):
        rule = parse_rule("q(X) :- p(X), not r(X).")
        assert isinstance(rule.body[1], NegatedLiteral)

    def test_not_as_plain_symbol_still_works(self):
        # "not" not followed by a literal is an ordinary symbol.
        rule = parse_rule("q(X) :- p(X, not).")
        assert rule.body[0].args[1].name == "not"

    def test_negation_in_query(self):
        query = parse_query("?- object(O), not vip(O).")
        assert isinstance(query.body[1], NegatedLiteral)


class TestSafety:
    def test_negated_variables_must_be_positively_bound(self):
        with pytest.raises(SafetyError):
            check_rule(parse_rule("q(X) :- p(X), not r(Y)."))
        check_rule(parse_rule("q(X) :- p(X), not r(X)."))

    def test_stratification_orders_negation(self):
        program = parse_program("""
            appears(O) :- member(O, G).
            absent(O) :- object(O), not appears(O).
        """)
        strata = stratify_with_negation(program)
        assert len(strata) == 2
        assert strata[0][0].head.predicate == "appears"
        assert strata[1][0].head.predicate == "absent"

    def test_positive_recursion_shares_stratum(self):
        program = parse_program("""
            reach(X, Y) :- edge(X, Y).
            reach(X, Z) :- reach(X, Y), edge(Y, Z).
        """)
        assert len(stratify_with_negation(program)) == 1

    def test_non_stratifiable_rejected(self):
        program = parse_program("""
            win(X) :- pos(X), not lose(X).
            lose(X) :- pos(X), not win(X).
        """)
        with pytest.raises(SafetyError):
            stratify_with_negation(program)

    def test_negation_through_recursion_rejected(self):
        program = parse_program("""
            p(X) :- base(X), not q(X).
            q(X) :- p(X).
        """)
        with pytest.raises(SafetyError):
            stratify_with_negation(program)

    def test_negating_interval_sits_above_constructive_rules(self):
        program = parse_program("""
            merged(G1 ++ G2) :- linked(G1, G2).
            plain(G) :- interval(G), not merged(G).
        """)
        strata = stratify_with_negation(program)
        order = {rule.head.predicate: i
                 for i, group in enumerate(strata) for rule in group}
        assert order["merged"] < order["plain"]


class TestStratifyEdgeCases:
    def test_empty_program_has_no_strata(self):
        assert stratify_with_negation(parse_program("")) == []

    def test_self_negation_rejected_with_context(self):
        program = parse_program("p(X) :- base(X), not p(X).")
        with pytest.raises(SafetyError) as excinfo:
            stratify_with_negation(program)
        error = excinfo.value
        assert error.kind == "stratify"
        assert error.rule_index == 0
        assert error.predicate == "p"

    def test_negation_chain_orders_strata(self):
        program = parse_program("""
            a(X) :- base(X), not b(X).
            b(X) :- base(X), not c(X).
            c(X) :- base(X).
        """)
        layers = [[rule.head.predicate for rule in layer]
                  for layer in stratify_with_negation(program)]
        assert layers == [["c"], ["b"], ["a"]]

    def test_rule_order_does_not_change_stratification(self):
        forward = parse_program("""
            low(X) :- base(X).
            high(X) :- base(X), not low(X).
        """)
        backward = parse_program("""
            high(X) :- base(X), not low(X).
            low(X) :- base(X).
        """)
        def shape(program):
            return [sorted(rule.head.predicate for rule in layer)
                    for layer in stratify_with_negation(program)]
        assert shape(forward) == shape(backward)

    def test_negating_edb_only_predicate_is_one_stratum(self):
        program = parse_program("q(X) :- object(X), not vip(X).")
        assert len(stratify_with_negation(program)) == 1

    def test_mutual_positive_recursion_negated_from_outside(self):
        # The positive SCC {reach} is fine, and negating it from a later
        # stratum is fine too: negation never enters the cycle.
        program = parse_program("""
            reach(X, Y) :- edge(X, Y).
            reach(X, Z) :- reach(X, Y), edge(Y, Z).
            isolated(X) :- node(X), not connected(X).
            connected(X) :- reach(X, Y).
        """)
        strata = stratify_with_negation(program)
        order = {rule.head.predicate: i
                 for i, layer in enumerate(strata) for rule in layer}
        assert order["reach"] <= order["connected"] < order["isolated"]

    def test_negation_into_positive_scc_rejected(self):
        # q negates into the SCC it belongs to via p's recursion.
        program = parse_program("""
            p(X) :- base(X), q(X).
            q(X) :- base(X), not p(X).
        """)
        with pytest.raises(SafetyError) as excinfo:
            stratify_with_negation(program)
        assert excinfo.value.kind == "stratify"


class TestSafetyErrorContext:
    def test_check_rule_attaches_rule_index_and_predicate(self):
        with pytest.raises(SafetyError) as excinfo:
            check_rule(parse_rule("p(X, Y) :- q(X)."), rule_index=4)
        error = excinfo.value
        assert error.kind == "range"
        assert error.rule_index == 4
        assert error.predicate == "p"
        assert "rule #4" in str(error)

    def test_named_rule_reported_by_name(self):
        rule = parse_rule("my_rule: p(X, Y) :- q(X).")
        with pytest.raises(SafetyError) as excinfo:
            check_rule(rule, rule_index=0)
        error = excinfo.value
        assert error.rule_name == "my_rule"
        assert "my_rule" in str(error)

    def test_stratify_error_message_names_the_rule(self):
        program = parse_program("""
            ok(X) :- base(X).
            p(X) :- base(X), not p(X).
        """)
        with pytest.raises(SafetyError) as excinfo:
            stratify_with_negation(program)
        error = excinfo.value
        assert error.rule_index == 1
        assert "rule #1" in str(error)


class TestEvaluation:
    def test_negation_over_edb(self, db):
        engine = QueryEngine(db)
        answers = engine.query("?- object(O), not vip(O).")
        assert [str(r[0]) for r in answers.rows()] == ["b", "c"]

    def test_negation_over_idb(self, db):
        engine = QueryEngine(db)
        engine.add_rules("""
            appears(O) :- interval(G), object(O), O in G.entities.
            absent(O) :- object(O), not appears(O).
        """)
        assert [str(r[0]) for r in engine.query("?- absent(O).").rows()] == ["c"]

    def test_negation_with_recursion_below(self, db):
        db.relate("next", Oid.interval("g1"), Oid.interval("g2"))
        engine = QueryEngine(db)
        engine.add_rules("""
            reach(X, Y) :- next(X, Y).
            reach(X, Z) :- reach(X, Y), next(Y, Z).
            unreachable(X, Y) :- interval(X), interval(Y),
                                 not reach(X, Y), X != Y.
        """)
        pairs = {tuple(map(str, r)) for r in engine.facts("unreachable")}
        assert pairs == {("g2", "g1")}

    def test_negation_of_computed_predicate(self, db):
        engine = QueryEngine(db)
        answers = engine.query(
            "?- interval(G1), interval(G2), not gi_overlaps(G1, G2), "
            "G1 != G2.")
        pairs = {tuple(map(str, r)) for r in answers.rows()}
        assert pairs == {("g1", "g2"), ("g2", "g1")}

    def test_negation_of_unknown_predicate_rejected(self, db):
        engine = QueryEngine(db)
        with pytest.raises(UnknownPredicateError):
            engine.query("?- object(O), not nosuch(O).")

    def test_modes_agree_with_negation(self, db):
        rules = """
            appears(O) :- interval(G), object(O), O in G.entities.
            absent(O) :- object(O), not appears(O).
        """
        naive = QueryEngine(db, mode="naive").add_rules(rules)
        seminaive = QueryEngine(db, mode="seminaive").add_rules(rules)
        assert naive.facts("absent") == seminaive.facts("absent")

    def test_double_negation_via_two_strata(self, db):
        engine = QueryEngine(db)
        engine.add_rules("""
            appears(O) :- interval(G), object(O), O in G.entities.
            absent(O) :- object(O), not appears(O).
            present(O) :- object(O), not absent(O).
        """)
        assert [str(r[0]) for r in engine.query("?- present(O).").rows()] \
            == ["a", "b"]

    def test_negation_after_construction(self, db):
        """Negating the interval class sees the ⊕-created objects."""
        engine = QueryEngine(db)
        engine.add_rules("""
            merged(G1 ++ G2) :- interval(G1), interval(G2), object(b),
                                b in G1.entities, b in G2.entities,
                                G1 != G2.
            original(G) :- interval(G), not merged(G).
        """)
        result = engine.materialize()
        names = {str(r[0]) for r in result.relation("original")}
        assert names == {"g1", "g2"}  # the composite is merged, bases are not
