"""Unit tests for query normalization and fingerprints (render.py)."""

import pytest

from vidb.query.parser import parse_program, parse_query
from vidb.query.render import (
    normalize_query,
    program_fingerprint,
    query_fingerprint,
)


class TestNormalizeQuery:
    def test_alpha_renaming(self):
        a = normalize_query("?- interval(G), object(O), O in G.entities.")
        b = normalize_query("?- interval(S), object(X), X in S.entities.")
        assert a == b
        assert "V0" in a and "V1" in a

    def test_whitespace_insensitive(self):
        assert (normalize_query("?-   object( O ).")
                == normalize_query("?- object(O)."))

    def test_different_bodies_differ(self):
        assert (normalize_query("?- object(O).")
                != normalize_query("?- interval(O)."))

    def test_constants_preserved(self):
        text = normalize_query('?- object(O), O.name = "David".')
        assert '"David"' in text

    def test_accepts_parsed_queries(self):
        query = parse_query("?- object(O).")
        assert normalize_query(query) == normalize_query("?- object(O).")

    def test_inline_constraint_variables_renamed(self):
        a = normalize_query("?- interval(G), (T >= 10) => G.duration.")
        b = normalize_query("?- interval(S), (U >= 10) => S.duration.")
        assert a == b

    def test_subset_and_comparison_atoms(self):
        a = normalize_query("?- interval(G), {o1, o4} subset G.entities.")
        b = normalize_query("?- interval(H), {o1, o4} subset H.entities.")
        assert a == b

    def test_projection_kept_distinct(self):
        # same body, different variable order => different answer columns
        a = normalize_query("?- in(X, Y, G).")
        b = normalize_query("?- in(Y, X, G).")
        assert a == b  # alpha-equivalent: first-occurrence order matches
        c = normalize_query("?- object(O), interval(G), O in G.entities.")
        d = normalize_query("?- interval(G), object(O), O in G.entities.")
        assert c != d  # literal order differs: bodies are not identical


class TestFingerprints:
    def test_query_fingerprint_stability(self):
        assert (query_fingerprint("?- object(A).")
                == query_fingerprint("?- object(B)."))
        assert (query_fingerprint("?- object(A).")
                != query_fingerprint("?- interval(A)."))

    def test_fingerprint_is_hex_digest(self):
        digest = query_fingerprint("?- object(O).")
        assert len(digest) == 64
        int(digest, 16)

    def test_program_fingerprint_order_insensitive(self):
        a = parse_program("p(X) :- object(X).\nq(X) :- interval(X).")
        b = parse_program("q(X) :- interval(X).\np(X) :- object(X).")
        assert program_fingerprint(a) == program_fingerprint(b)

    def test_program_fingerprint_sees_rule_changes(self):
        a = parse_program("p(X) :- object(X).")
        b = parse_program("p(X) :- interval(X).")
        assert program_fingerprint(a) != program_fingerprint(b)

    def test_empty_program(self):
        assert isinstance(program_fingerprint(parse_program("")), str)
