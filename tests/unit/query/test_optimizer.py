"""Unit tests for the query optimisations (join reordering, rule pruning).

Both are pure optimisations: answers must be identical with them on or
off; these tests check that invariant explicitly plus the mechanisms.
"""

import pytest

from vidb.model.oid import Oid
from vidb.query.engine import QueryEngine, relevant_rules
from vidb.query.fixpoint import RulePlan, evaluate
from vidb.query.parser import parse_program, parse_rule
from vidb.storage.database import VideoDatabase
from vidb.workloads.generator import QUERY_TEMPLATES, WorkloadConfig, random_database
from vidb.workloads.paper import paper_queries, rope_database, section62_rules


class TestRelevantRules:
    PROGRAM = parse_program("""
        a(X) :- base(X).
        b(X) :- a(X).
        c(X) :- b(X).
        unrelated(X) :- other(X).
    """)

    def test_transitive_reachability(self):
        pruned = relevant_rules(self.PROGRAM, {"c"})
        heads = {rule.head.predicate for rule in pruned}
        assert heads == {"a", "b", "c"}

    def test_unreachable_rules_dropped(self):
        pruned = relevant_rules(self.PROGRAM, {"b"})
        heads = {rule.head.predicate for rule in pruned}
        assert "unrelated" not in heads and "c" not in heads

    def test_no_goals_empty_program(self):
        assert len(relevant_rules(self.PROGRAM, set())) == 0

    def test_constructive_rules_kept_for_interval_goals(self):
        program = parse_program("""
            merged(G1 ++ G2) :- linked(G1, G2).
            unrelated(X) :- other(X).
        """)
        pruned = relevant_rules(program, {"interval"})
        heads = {rule.head.predicate for rule in pruned}
        assert heads == {"merged"}

    def test_constructive_rules_dropped_without_interval_goals(self):
        program = parse_program("""
            merged(G1 ++ G2) :- linked(G1, G2).
            plain(X) :- base(X).
        """)
        pruned = relevant_rules(program, {"plain"})
        heads = {rule.head.predicate for rule in pruned}
        assert heads == {"plain"}

    def test_negated_dependencies_kept(self):
        program = parse_program("""
            appears(O) :- member(O, G).
            absent(O) :- candidates(O), not appears(O).
        """)
        pruned = relevant_rules(program, {"absent"})
        heads = {rule.head.predicate for rule in pruned}
        assert heads == {"appears", "absent"}


class TestJoinReordering:
    def test_selective_literal_moves_first(self):
        rule = parse_rule("q(X, Y) :- big(X), tiny(X, Y).")
        sizes = {"big": 10_000, "tiny": 3}
        plan = RulePlan.compile(rule, size_of=lambda p: sizes.get(p, 0))
        assert plan.literals[0].predicate == "tiny"

    def test_bound_join_preferred_over_small_cross_product(self):
        rule = parse_rule("q(X, Y, Z) :- r(X, Y), small(Z), s(Y, Z).")
        sizes = {"r": 100, "small": 2, "s": 100}
        plan = RulePlan.compile(rule, size_of=lambda p: sizes.get(p, 0))
        order = [lit.predicate for lit in plan.literals]
        # after the opening literal, prefer literals that join on a bound
        # variable over an unbound cross product
        assert order.index("s") < order.index("small") or order[0] == "small"

    def test_computed_filter_deferred_until_bound(self):
        rule = parse_rule(
            "q(G1, G2) :- gi_overlaps(G1, G2), interval(G1), interval(G2).")

        def size(predicate):
            return -1 if predicate == "gi_overlaps" else 10

        plan = RulePlan.compile(rule, size_of=size)
        assert plan.literals[-1].predicate == "gi_overlaps"

    def test_no_size_function_keeps_order(self):
        rule = parse_rule("q(X) :- b(X), a(X).")
        plan = RulePlan.compile(rule)
        assert [l.predicate for l in plan.literals] == ["b", "a"]

    def test_reordering_executes_correctly(self):
        db = VideoDatabase("order")
        db.new_entity("a", role="host")
        db.new_entity("b", role="guest")
        db.new_interval("g", entities=["a", "b"], duration=[(0, 1)])
        db.relate("likes", Oid.entity("a"), Oid.entity("b"))
        program = parse_program(
            'q(X, Y) :- object(X), object(Y), likes(X, Y), X.role = "host".')
        ordered = evaluate(db, program, reorder_joins=True)
        plain = evaluate(db, program, reorder_joins=False)
        assert ordered.relation("q") == plain.relation("q") != frozenset()


class TestOptimisationsPreserveAnswers:
    @pytest.mark.parametrize("query_name", sorted(paper_queries()))
    def test_paper_queries_identical(self, query_name):
        db = rope_database()
        text = paper_queries()[query_name]
        optimised = QueryEngine(db).add_rules(section62_rules())
        baseline = QueryEngine(db, reorder_joins=False, prune_rules=False)
        baseline.add_rules(section62_rules())
        assert optimised.query(text).rows() == baseline.query(text).rows()

    @pytest.mark.parametrize("template", sorted(QUERY_TEMPLATES))
    def test_generated_workload_identical(self, template):
        db = random_database(WorkloadConfig(entities=15, intervals=30,
                                            facts=30, seed=17))
        text = QUERY_TEMPLATES[template]
        optimised = QueryEngine(db)
        baseline = QueryEngine(db, reorder_joins=False, prune_rules=False)
        assert optimised.query(text).rows() == baseline.query(text).rows()

    def test_pruning_skips_expensive_unrelated_rules(self):
        db = random_database(WorkloadConfig(entities=20, intervals=60,
                                            facts=0, seed=18))
        engine = QueryEngine(db)
        # an expensive O(n^2) rule the query never touches
        engine.add_rules(
            "allpairs(G1, G2) :- interval(G1), interval(G2).")
        answers = engine.query("?- object(O).")
        # the anonymous query rule fires once per object; allpairs never runs
        assert answers.stats.rule_firings == len(db.entities())
