"""Unit tests for the rule-language parser."""

from fractions import Fraction

import pytest

from vidb.constraints.dense import Comparison as DenseComparison, Or
from vidb.constraints.terms import Var
from vidb.errors import ParseError
from vidb.query.ast import (
    AttrPath,
    ComparisonAtom,
    ConcatTerm,
    EntailmentAtom,
    Literal,
    MembershipAtom,
    SubsetAtom,
    Symbol,
    Variable,
)
from vidb.query.parser import (
    parse_constraint,
    parse_program,
    parse_query,
    parse_rule,
    tokenize,
)


class TestTokenizer:
    def test_basic_tokens(self):
        kinds = [t.kind for t in tokenize("q(X) :- p(X).")]
        assert kinds == ["IDENT", "LPAREN", "IDENT", "RPAREN", "ARROW",
                         "IDENT", "LPAREN", "IDENT", "RPAREN", "DOT", "EOF"]

    def test_tight_dot_is_path(self):
        kinds = [t.kind for t in tokenize("G.duration")]
        assert kinds == ["IDENT", "PATHDOT", "IDENT", "EOF"]

    def test_final_dot_after_path(self):
        kinds = [t.kind for t in tokenize("o in G.entities.")]
        assert kinds[-3:] == ["IDENT", "DOT", "EOF"]

    def test_numbers(self):
        tokens = tokenize("3 -7 2.5")
        assert [t.value for t in tokens[:-1]] == [3, -7, Fraction(5, 2)]

    def test_decimal_integer_collapses(self):
        assert tokenize("4.0")[0].value == 4

    def test_string_with_escape(self):
        token = tokenize(r'"say \"hi\""')[0]
        assert token.kind == "STRING" and token.value == 'say "hi"'

    def test_unterminated_string(self):
        with pytest.raises(ParseError):
            tokenize('"oops')

    def test_comments_skipped(self):
        kinds = [t.kind for t in tokenize("% comment\nq(X). # more")]
        assert "IDENT" in kinds and len(kinds) == 6

    def test_unknown_character(self):
        with pytest.raises(ParseError):
            tokenize("q(X) @ p.")

    def test_error_carries_position(self):
        with pytest.raises(ParseError) as excinfo:
            tokenize("ok\n  @")
        assert excinfo.value.line == 2

    def test_multi_char_operators(self):
        kinds = [t.kind for t in tokenize(":- ?- => ++ != <= >=")]
        assert kinds == ["ARROW", "QUERY", "ENTAILS", "CONCAT", "OP", "OP",
                         "OP", "EOF"]


class TestRules:
    def test_simple_rule(self):
        rule = parse_rule("q(X) :- p(X).")
        assert rule.head == Literal("q", [Variable("X")])
        assert rule.body == (Literal("p", [Variable("X")]),)

    def test_fact(self):
        rule = parse_rule("p(a, 3).")
        assert rule.is_fact
        assert rule.head.args == (Symbol("a"), 3)

    def test_named_rule(self):
        rule = parse_rule("r1: q(X) :- p(X).")
        assert rule.name == "r1"

    def test_left_arrow_synonym(self):
        assert parse_rule("q(X) <- p(X).") == parse_rule("q(X) :- p(X).")

    def test_uppercase_predicate_rejected(self):
        with pytest.raises(ParseError):
            parse_rule("Q(X) :- p(X).")

    def test_concat_in_head(self):
        rule = parse_rule("q(G1 ++ G2) :- p(G1), p(G2).")
        assert isinstance(rule.head.args[0], ConcatTerm)

    def test_nested_concat(self):
        rule = parse_rule("q(G1 ++ G2 ++ G3) :- p(G1), p(G2), p(G3).")
        term = rule.head.args[0]
        assert isinstance(term, ConcatTerm) and isinstance(term.left, ConcatTerm)

    def test_concat_in_body_rejected(self):
        with pytest.raises(ParseError):
            parse_rule("q(X) :- p(G1 ++ G2), r(X).")

    def test_missing_dot_rejected(self):
        with pytest.raises(ParseError):
            parse_rule("q(X) :- p(X)")

    def test_program_with_multiple_rules(self):
        program = parse_program("""
            % transitive closure
            reach(X, Y) :- edge(X, Y).
            reach(X, Z) :- reach(X, Y), edge(Y, Z).
        """)
        assert len(program) == 2
        assert program.idb_predicates() == frozenset({"reach"})

    def test_query_inside_program_rejected(self):
        with pytest.raises(ParseError):
            parse_program("?- q(X).")


class TestConstraintAtoms:
    def test_membership(self):
        rule = parse_rule("q(O) :- object(O), O in g.entities.")
        atom = rule.body[1]
        assert isinstance(atom, MembershipAtom)
        assert atom.element == Variable("O")
        assert atom.collection == AttrPath(Symbol("g"), "entities")

    def test_subset_literal(self):
        rule = parse_rule("q(G) :- interval(G), {o1, o2} subset G.entities.")
        atom = rule.body[1]
        assert isinstance(atom, SubsetAtom)
        assert atom.subset == (Symbol("o1"), Symbol("o2"))

    def test_subset_between_paths(self):
        rule = parse_rule(
            "q(G1, G2) :- interval(G1), interval(G2), "
            "G1.entities subset G2.entities.")
        atom = rule.body[2]
        assert isinstance(atom, SubsetAtom)
        assert isinstance(atom.subset, AttrPath)

    def test_comparison_path_to_string(self):
        rule = parse_rule('q(O) :- object(O), O.name = "David".')
        atom = rule.body[1]
        assert isinstance(atom, ComparisonAtom)
        assert atom.op == "=" and atom.right == "David"

    def test_comparison_path_to_path(self):
        rule = parse_rule("q(A, B) :- object(A), object(B), A.age < B.age.")
        atom = rule.body[2]
        assert isinstance(atom.left, AttrPath) and isinstance(atom.right, AttrPath)

    def test_comparison_between_variables(self):
        rule = parse_rule("q(A, B) :- p(A, B), A != B.")
        atom = rule.body[1]
        assert atom.op == "!=" and atom.left == Variable("A")

    def test_entailment_path_to_inline(self):
        rule = parse_rule(
            "q(G) :- interval(G), G.duration => (t > 0 and t < 12).")
        atom = rule.body[1]
        assert isinstance(atom, EntailmentAtom)
        assert isinstance(atom.left, AttrPath)
        assert atom.right.evaluate({Var("t"): 5})

    def test_entailment_path_to_path(self):
        rule = parse_rule(
            "contains(G1, G2) :- interval(G1), interval(G2), "
            "G2.duration => G1.duration.")
        atom = rule.body[2]
        assert atom.left == AttrPath(Variable("G2"), "duration")
        assert atom.right == AttrPath(Variable("G1"), "duration")

    def test_entailment_inline_to_path(self):
        rule = parse_rule(
            "q(G) :- interval(G), (t > 3 and t < 4) => G.duration.")
        atom = rule.body[1]
        assert isinstance(atom, EntailmentAtom)
        assert isinstance(atom.right, AttrPath)

    def test_relation_named_in_still_parses(self):
        # "in" is a contextual keyword: usable as a predicate name.
        rule = parse_rule("q(X, Y, G) :- in(X, Y, G).")
        assert rule.body[0] == Literal("in", [Variable("X"), Variable("Y"),
                                              Variable("G")])

    def test_inline_constraint_or_precedence(self):
        c = parse_constraint("(t < 1 or t > 5 and t < 9)")
        # 'and' binds tighter: t<1 | (t>5 & t<9)
        assert isinstance(c, Or) and len(c.parts) == 2

    def test_inline_constraint_parens(self):
        c = parse_constraint("((t < 1 or t > 5) and t < 9)")
        clauses = c.dnf()
        assert len(clauses) == 2 and all(len(cl) == 2 for cl in clauses)

    def test_inline_constraint_with_rule_variable(self):
        rule = parse_rule("q(G, A) :- interval(G), bound(A), "
                          "G.duration => (t > A).")
        atom = rule.body[2]
        assert Var("A") in atom.right.variables()


class TestQueries:
    def test_query_with_prefix(self):
        query = parse_query("?- interval(G), object(O), O in G.entities.")
        assert [v.name for v in query.answer_variables] == ["G", "O"]

    def test_query_without_prefix(self):
        query = parse_query("interval(G).")
        assert [v.name for v in query.answer_variables] == ["G"]

    def test_answer_variable_order_is_first_occurrence(self):
        query = parse_query("?- p(B, A), q(A, C).")
        assert [v.name for v in query.answer_variables] == ["B", "A", "C"]

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_query("?- q(X). extra")

    def test_concat_in_query_rejected(self):
        with pytest.raises(ParseError):
            parse_query("?- q(G1 ++ G2).")
