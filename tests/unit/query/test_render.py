"""Unit tests for the AST-to-text renderer."""

import pytest

from vidb.constraints.dense import FALSE, TRUE
from vidb.constraints.terms import Var
from vidb.errors import QueryError
from vidb.model.oid import Oid
from vidb.query.ast import (
    AttrPath,
    ConcatTerm,
    EntailmentAtom,
    Literal,
    Rule,
    Symbol,
    Variable,
)
from vidb.query.parser import parse_program, parse_query, parse_rule
from vidb.query.render import (
    render_body_item,
    render_constraint,
    render_program,
    render_query,
    render_rule,
    render_term,
)


class TestTerms:
    def test_variable_and_symbol(self):
        assert render_term(Variable("X")) == "X"
        assert render_term(Symbol("gi1")) == "gi1"

    def test_string_escaping(self):
        assert render_term('say "hi"') == '"say \\"hi\\""'
        assert render_term("back\\slash") == '"back\\\\slash"'

    def test_numbers(self):
        assert render_term(5) == "5"
        assert render_term(-3) == "-3"
        from fractions import Fraction

        assert render_term(Fraction(5, 2)) == "2.5"
        assert render_term(Fraction(4, 1)) == "4"

    def test_atomic_oid_renders_as_symbol(self):
        assert render_term(Oid.entity("o1")) == "o1"

    def test_composite_oid_rejected(self):
        composite = Oid.concat(Oid.interval("a"), Oid.interval("b"))
        with pytest.raises(QueryError):
            render_term(composite)

    def test_concat_term(self):
        term = ConcatTerm(Variable("G1"), Variable("G2"))
        assert render_term(term) == "G1 ++ G2"


class TestConstraints:
    def test_truth_values_have_encodings(self):
        assert "0 = 0" in render_constraint(TRUE)
        assert "0 != 0" in render_constraint(FALSE)

    def test_precedence_preserved(self):
        t = Var("t")
        c = ((t < 1) | (t > 5)) & (t < 9)
        text = render_constraint(c)
        from vidb.query.parser import parse_constraint

        assert parse_constraint(text).dnf() == c.dnf()


class TestStatements:
    def test_fact(self):
        assert render_rule(parse_rule("p(a, 3).")) == "p(a, 3)."

    def test_named_rule_keeps_name(self):
        rule = parse_rule("r1: q(X) :- p(X).")
        assert render_rule(rule).startswith("r1: ")
        assert parse_rule(render_rule(rule)).name == "r1"

    def test_negation_rendered(self):
        rule = parse_rule("q(X) :- p(X), not r(X).")
        assert "not r(X)" in render_rule(rule)

    def test_entailment_between_paths(self):
        rule = parse_rule(
            "contains(G1, G2) :- interval(G1), interval(G2), "
            "G2.duration => G1.duration.")
        assert "G2.duration => G1.duration" in render_rule(rule)

    def test_program_one_rule_per_line(self):
        program = parse_program("a(x).\nb(y).\n")
        assert render_program(program).count("\n") == 1

    def test_query_prefix(self):
        query = parse_query("?- object(O).")
        assert render_query(query) == "?- object(O)."

    def test_render_accepts_manual_ast(self):
        t = Var("t")
        rule = Rule(
            Literal("q", [Variable("G")]),
            [Literal("interval", [Variable("G")]),
             EntailmentAtom(AttrPath(Variable("G"), "duration"),
                            (t > 0) & (t < 9))],
        )
        assert parse_rule(render_rule(rule)) == rule
