"""Unit tests for static safety analysis (Definition 11 and friends)."""

import pytest

from vidb.errors import SafetyError
from vidb.query.parser import parse_program, parse_query, parse_rule
from vidb.query.safety import (
    bound_variables,
    check_program,
    check_query,
    check_rule,
    dependency_graph,
    is_recursive,
    stratify,
)


class TestRangeRestriction:
    def test_safe_rule_passes(self):
        check_rule(parse_rule("q(X) :- p(X)."))

    def test_head_variable_unbound(self):
        with pytest.raises(SafetyError):
            check_rule(parse_rule("q(X, Y) :- p(X)."))

    def test_constraint_variable_unbound(self):
        # Variables occurring only in constraint atoms are NOT bound.
        with pytest.raises(SafetyError):
            check_rule(parse_rule("q(X) :- p(X), Y in X.entities."))

    def test_constraint_variable_bound_by_literal(self):
        check_rule(parse_rule("q(X, Y) :- p(X), object(Y), Y in X.entities."))

    def test_comparison_only_variable_unbound(self):
        with pytest.raises(SafetyError):
            check_rule(parse_rule("q(X) :- p(X), X < Y."))

    def test_inline_constraint_rule_variable_must_be_bound(self):
        with pytest.raises(SafetyError):
            check_rule(parse_rule("q(G) :- interval(G), "
                                  "G.duration => (t > LOW)."))
        check_rule(parse_rule("q(G, LOW) :- interval(G), bound(LOW), "
                              "G.duration => (t > LOW)."))

    def test_ground_fact_is_safe(self):
        check_rule(parse_rule("p(a, 3)."))


class TestHeadHygiene:
    def test_cannot_redefine_class_predicates(self):
        for predicate in ("interval", "object", "anyobject"):
            with pytest.raises(SafetyError):
                check_rule(parse_rule(f"{predicate}(X) :- p(X)."))

    def test_cannot_shadow_edb_relation(self):
        rule = parse_rule("in(X, Y) :- p(X, Y).")
        with pytest.raises(SafetyError):
            check_rule(rule, edb_relations={"in"})
        check_rule(rule)  # fine when "in" is not an EDB relation

    def test_constructive_operands_must_be_bound(self):
        with pytest.raises(SafetyError):
            check_rule(parse_rule("q(G1 ++ G2) :- interval(G1)."))
        check_rule(parse_rule("q(G1 ++ G2) :- interval(G1), interval(G2)."))


class TestProgramChecks:
    def test_arity_consistency(self):
        program = parse_program("""
            q(X) :- p(X).
            q(X, Y) :- p(X), p(Y).
        """)
        with pytest.raises(SafetyError):
            check_program(program)

    def test_consistent_program_passes(self):
        check_program(parse_program("""
            reach(X, Y) :- edge(X, Y).
            reach(X, Z) :- reach(X, Y), edge(Y, Z).
        """))


class TestQueryChecks:
    def test_safe_query(self):
        check_query(parse_query("?- interval(G), object(O), O in G.entities."))

    def test_unsafe_query(self):
        with pytest.raises(SafetyError):
            check_query(parse_query("?- interval(G), O in G.entities."))


class TestDependencyAnalysis:
    def test_dependency_graph(self):
        program = parse_program("""
            q(X) :- p(X), r(X).
            r(X) :- s(X).
        """)
        graph = dependency_graph(program)
        assert graph["q"] == frozenset({"p", "r"})
        assert graph["r"] == frozenset({"s"})

    def test_is_recursive_direct(self):
        assert is_recursive(parse_program("q(X) :- q(X), p(X)."))

    def test_is_recursive_mutual(self):
        assert is_recursive(parse_program("""
            even(X) :- zero(X).
            even(X) :- succ(Y, X), odd(Y).
            odd(X) :- succ(Y, X), even(X).
        """))

    def test_non_recursive(self):
        assert not is_recursive(parse_program("""
            q(X) :- p(X).
            r(X) :- q(X).
        """))

    def test_stratify_layers(self):
        program = parse_program("""
            base(X) :- edge(X, X).
            mid(X) :- base(X).
            top(X) :- mid(X), base(X).
        """)
        strata = stratify(program)
        order = {p: i for i, layer in enumerate(strata) for p in layer}
        assert order["base"] < order["mid"] < order["top"]

    def test_stratify_groups_mutual_recursion(self):
        program = parse_program("""
            a(X) :- b(X).
            b(X) :- a(X).
            b(X) :- seed(X).
            c(X) :- a(X).
        """)
        strata = stratify(program)
        ab_layer = next(layer for layer in strata if "a" in layer)
        assert "b" in ab_layer
        order = {p: i for i, layer in enumerate(strata) for p in layer}
        assert order["a"] < order["c"]

    def test_bound_variables(self):
        rule = parse_rule("q(X) :- p(X, Y), X < 3.")
        names = {v.name for v in bound_variables(rule)}
        assert names == {"X", "Y"}
