"""Unit tests for the derived-relation standard library."""

import pytest

from vidb.model.oid import Oid
from vidb.query.engine import QueryEngine
from vidb.query.stdlib import STDLIB_RULES, computed_predicates
from vidb.storage.database import VideoDatabase


@pytest.fixture
def db():
    database = VideoDatabase("stdlib")
    database.new_entity("a")
    database.new_entity("b")
    database.new_interval("inner", entities=["a"], duration=[(5, 8)])
    database.new_interval("outer", entities=["a", "b"], duration=[(0, 10)])
    database.new_interval("later", entities=["b"],
                          duration=[(20, 25), (30, 35)])
    return database


@pytest.fixture
def engine(db):
    return QueryEngine(db, use_stdlib_rules=True)


class TestContainsRule:
    def test_contains_via_duration_entailment(self, engine):
        pairs = {tuple(map(str, r)) for r in engine.facts("contains")}
        assert ("outer", "inner") in pairs       # inner.duration => outer's
        assert ("inner", "outer") not in pairs
        # reflexive by entailment
        assert ("outer", "outer") in pairs

    def test_disjoint_intervals_not_contained(self, engine):
        pairs = {tuple(map(str, r)) for r in engine.facts("contains")}
        assert ("outer", "later") not in pairs
        assert ("later", "outer") not in pairs


class TestSameObjectIn:
    def test_shared_objects_reported(self, engine):
        triples = {tuple(map(str, r)) for r in engine.facts("same_object_in")}
        assert ("inner", "outer", "a") in triples
        assert ("outer", "later", "b") in triples
        assert ("inner", "later", "b") not in triples


class TestComputedPredicates:
    def test_registry_contents(self):
        registry = computed_predicates()
        for name in ("gi_overlaps", "gi_before", "gi_contains", "gi_equals",
                     "gi_meets", "time_in"):
            assert name in registry
            arity, fn = registry[name]
            assert arity == 2 and callable(fn)

    def test_gi_overlaps(self, engine):
        answers = engine.query(
            "?- interval(G1), interval(G2), gi_overlaps(G1, G2), G1 != G2.")
        pairs = {tuple(map(str, r)) for r in answers.rows()}
        assert ("inner", "outer") in pairs
        assert ("outer", "later") not in pairs

    def test_gi_contains(self, engine):
        answers = engine.query(
            "?- interval(G1), interval(G2), gi_contains(G1, G2), G1 != G2.")
        assert ("outer", "inner") in {
            tuple(map(str, r)) for r in answers.rows()}

    def test_gi_before(self, engine):
        answers = engine.query(
            "?- interval(G1), interval(G2), gi_before(G1, G2).")
        pairs = {tuple(map(str, r)) for r in answers.rows()}
        assert ("inner", "later") in pairs and ("outer", "later") in pairs

    def test_time_in(self, engine):
        assert engine.ask("?- interval(later), time_in(22, later).")
        assert not engine.ask("?- interval(later), time_in(27, later).")

    def test_time_in_rejects_oid_point(self, engine):
        assert not engine.ask("?- interval(later), object(a), "
                              "time_in(a, later).")

    def test_interval_without_duration_never_matches(self, engine):
        engine.db.new_interval("bare")
        assert not engine.ask(
            "?- interval(bare), interval(outer), gi_overlaps(bare, outer).")


class TestStdlibText:
    def test_rules_parse_standalone(self):
        from vidb.query.parser import parse_program

        program = parse_program(STDLIB_RULES)
        assert program.idb_predicates() == frozenset(
            {"contains", "same_object_in"})
