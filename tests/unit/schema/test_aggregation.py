"""Unit tests for aggregation (composite objects)."""

import pytest

from vidb.errors import ModelError
from vidb.model.oid import Oid
from vidb.query.engine import QueryEngine
from vidb.schema.aggregation import (
    PART_OF,
    aggregate,
    aggregation_program,
    members_of,
)
from vidb.storage.database import VideoDatabase


@pytest.fixture
def db():
    database = VideoDatabase("agg")
    database.new_entity("cam", role="camera")
    database.new_entity("mic", role="sound")
    database.new_entity("van", role="transport")
    database.new_interval("g1", entities=["cam", "mic"], duration=[(0, 10)])
    return database


class TestAggregate:
    def test_composite_created_with_members(self, db):
        crew = aggregate(db, "crew", ["cam", "mic"], label="crew")
        assert crew["members"] == frozenset(
            {Oid.entity("cam"), Oid.entity("mic")})
        assert crew["label"] == "crew"

    def test_part_of_facts_asserted(self, db):
        aggregate(db, "crew", ["cam", "mic"])
        assert len(db.facts(PART_OF)) == 2

    def test_members_of(self, db):
        aggregate(db, "crew", ["cam", "mic"])
        assert {str(m.oid) for m in members_of(db, "crew")} == {"cam", "mic"}

    def test_unknown_member_rejected(self, db):
        with pytest.raises(ModelError):
            aggregate(db, "crew", ["ghost"])

    def test_empty_members_rejected(self, db):
        with pytest.raises(ModelError):
            aggregate(db, "crew", [])

    def test_nested_aggregates(self, db):
        aggregate(db, "crew", ["cam", "mic"])
        aggregate(db, "unit", ["crew", "van"])
        assert {str(m.oid) for m in members_of(db, "unit")} == {"crew", "van"}


class TestAggregationProgram:
    def test_transitive_part_of(self, db):
        aggregate(db, "crew", ["cam", "mic"])
        aggregate(db, "unit", ["crew", "van"])
        engine = QueryEngine(db)
        engine.add_rules(aggregation_program())
        star = {tuple(map(str, r)) for r in engine.facts("part_of_star")}
        assert ("cam", "crew") in star
        assert ("cam", "unit") in star      # through the nesting
        assert ("van", "unit") in star
        assert ("van", "crew") not in star

    def test_shares_whole_symmetric(self, db):
        aggregate(db, "crew", ["cam", "mic"])
        engine = QueryEngine(db)
        engine.add_rules(aggregation_program())
        pairs = {tuple(map(str, r)) for r in engine.facts("shares_whole")}
        assert ("cam", "mic") in pairs and ("mic", "cam") in pairs

    def test_aggregate_on_screen_lifts_membership(self, db):
        aggregate(db, "crew", ["cam", "mic"])
        engine = QueryEngine(db)
        engine.add_rules(aggregation_program())
        rows = {tuple(map(str, r))
                for r in engine.facts("aggregate_on_screen")}
        assert ("crew", "g1") in rows

    def test_composite_absent_when_no_part_on_screen(self, db):
        aggregate(db, "motorpool", ["van"])
        engine = QueryEngine(db)
        engine.add_rules(aggregation_program())
        rows = {tuple(map(str, r))
                for r in engine.facts("aggregate_on_screen")}
        assert not any(composite == "motorpool" for composite, __ in rows)
