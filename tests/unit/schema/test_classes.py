"""Unit tests for classification/generalization (Schema)."""

import pytest

from vidb.errors import ModelError
from vidb.query.engine import QueryEngine
from vidb.schema.classes import ATTR_TYPES, AttrSpec, Schema
from vidb.storage.database import VideoDatabase


@pytest.fixture
def schema():
    s = Schema()
    s.add_class("person", attributes={
        "name": AttrSpec("string", required=True)})
    s.add_class("reporter", parent="person",
                attributes={"employer": AttrSpec("string")})
    s.add_class("politician", parent="person")
    s.add_class("senator", parent="politician")
    s.add_class("vehicle")
    return s


@pytest.fixture
def db(schema):
    database = VideoDatabase("classed")
    database.new_entity("o1", kind="reporter", name="Pat", employer="W4")
    database.new_entity("o2", kind="senator", name="Lee")
    database.new_entity("o3", kind="vehicle")
    database.new_entity("o4", name="Unclassified")
    return database


class TestHierarchy:
    def test_ancestors_chain(self, schema):
        assert schema.ancestors("senator") == ("politician", "person")
        assert schema.ancestors("person") == ()

    def test_descendants(self, schema):
        assert schema.descendants("person") == frozenset(
            {"reporter", "politician", "senator"})
        assert schema.descendants("vehicle") == frozenset()

    def test_is_subclass_reflexive_and_transitive(self, schema):
        assert schema.is_subclass("senator", "senator")
        assert schema.is_subclass("senator", "person")
        assert not schema.is_subclass("person", "senator")
        assert not schema.is_subclass("vehicle", "person")

    def test_duplicate_class_rejected(self, schema):
        with pytest.raises(ModelError):
            schema.add_class("person")

    def test_unknown_parent_rejected(self, schema):
        with pytest.raises(ModelError):
            schema.add_class("alien", parent="martian")

    def test_bad_class_name_rejected(self, schema):
        with pytest.raises(ModelError):
            schema.add_class("Person")

    def test_unknown_class_lookup(self, schema):
        with pytest.raises(ModelError):
            schema.get("robot")


class TestAttrSpec:
    def test_types_enumerated(self):
        for type_name in ATTR_TYPES:
            AttrSpec(type_name)
        with pytest.raises(ModelError):
            AttrSpec("blob")

    def test_accepts(self):
        from vidb.model.oid import Oid

        assert AttrSpec("string").accepts("x")
        assert not AttrSpec("string").accepts(1)
        assert AttrSpec("number").accepts(1.5)
        assert not AttrSpec("number").accepts(True)
        assert AttrSpec("oid").accepts(Oid.entity("a"))
        assert AttrSpec("set").accepts(frozenset({1}))
        assert AttrSpec("any").accepts(object())

    def test_effective_attributes_merge(self, schema):
        effective = schema.effective_attributes("reporter")
        assert set(effective) == {"name", "employer"}
        assert effective["name"].required

    def test_subclass_can_strengthen(self, schema):
        schema.add_class("anchor", parent="reporter", attributes={
            "employer": AttrSpec("string", required=True)})
        assert schema.effective_attributes("anchor")["employer"].required


class TestInstancesAndValidation:
    def test_instances_include_subclasses(self, schema, db):
        names = {str(o.oid) for o in schema.instances(db, "person")}
        assert names == {"o1", "o2"}

    def test_proper_instances(self, schema, db):
        assert schema.instances(db, "person", proper=True) == []
        names = {str(o.oid) for o in schema.instances(db, "senator")}
        assert names == {"o2"}

    def test_validate_clean(self, schema, db):
        assert schema.validate(db) == []

    def test_missing_required_attribute(self, schema, db):
        db.new_entity("o5", kind="reporter")
        problems = schema.validate(db)
        assert len(problems) == 1 and "name" in problems[0]

    def test_type_mismatch(self, schema, db):
        db.new_entity("o6", kind="person", name=42)
        problems = schema.validate(db)
        assert len(problems) == 1 and "does not match" in problems[0]

    def test_unknown_class_flagged(self, schema, db):
        db.new_entity("o7", kind="robot")
        assert any("unknown class" in p for p in schema.validate(db))

    def test_unclassified_entities_ignored(self, schema, db):
        # o4 has a name but no kind: schema-optional, like the paper.
        assert schema.validate(db) == []


class TestCompilationToRules:
    def test_class_predicates_queryable(self, schema, db):
        engine = QueryEngine(db)
        engine.add_rules(schema.to_program())
        people = {str(r[0]) for r in engine.query("?- person(X).").rows()}
        assert people == {"o1", "o2"}

    def test_inheritance_through_two_levels(self, schema, db):
        engine = QueryEngine(db)
        engine.add_rules(schema.to_program())
        assert engine.ask("?- politician(o2).")
        assert engine.ask("?- person(o2).")
        assert not engine.ask("?- reporter(o2).")

    def test_class_predicates_compose_with_language(self, schema, db):
        db.new_interval("g1", entities=["o1", "o2", "o3"],
                        duration=[(0, 10)])
        engine = QueryEngine(db)
        engine.add_rules(schema.to_program())
        answers = engine.query(
            "?- interval(G), person(X), X in G.entities.")
        assert {str(r[1]) for r in answers.rows()} == {"o1", "o2"}

    def test_class_predicates_negate(self, schema, db):
        engine = QueryEngine(db)
        engine.add_rules(schema.to_program())
        answers = engine.query("?- object(X), not person(X).")
        assert {str(r[0]) for r in answers.rows()} == {"o3", "o4"}

    def test_custom_kind_attribute(self):
        schema = Schema(kind_attribute="category")
        schema.add_class("clip")
        db = VideoDatabase("custom")
        db.new_entity("x", category="clip")
        engine = QueryEngine(db)
        engine.add_rules(schema.to_program())
        assert engine.ask("?- clip(x).")
