"""Unit tests for interval-inclusion inheritance (the OVID mechanism)."""

import pytest

from vidb.model.oid import Oid
from vidb.query.engine import QueryEngine
from vidb.schema.inheritance import (
    containing_intervals,
    inheritance_program,
    inherited_attributes,
)
from vidb.storage.database import VideoDatabase


@pytest.fixture
def db():
    database = VideoDatabase("nested")
    database.new_entity("a")
    database.new_interval("broadcast", entities=["a"], duration=[(0, 100)],
                          subject="news", mood="calm", channel="one")
    database.new_interval("report", entities=["a"], duration=[(10, 40)],
                          subject="flood report")
    database.new_interval("soundbite", entities=["a"], duration=[(15, 20)],
                          speaker="mayor")
    database.new_interval("elsewhere", duration=[(50, 60)], subject="sports")
    return database


class TestContainingIntervals:
    def test_ancestors_innermost_first(self, db):
        ancestors = containing_intervals(db, Oid.interval("soundbite"))
        assert [str(a.oid) for a in ancestors] == ["report", "broadcast"]

    def test_top_level_has_no_ancestors(self, db):
        assert containing_intervals(db, Oid.interval("broadcast")) == []

    def test_disjoint_intervals_unrelated(self, db):
        ancestors = containing_intervals(db, Oid.interval("elsewhere"))
        assert [str(a.oid) for a in ancestors] == ["broadcast"]

    def test_identical_footprints_not_ancestors(self, db):
        db.new_interval("twin", duration=[(15, 20)])
        ancestors = containing_intervals(db, Oid.interval("soundbite"))
        assert "twin" not in {str(a.oid) for a in ancestors}


class TestInheritedAttributes:
    def test_nearest_ancestor_wins(self, db):
        merged = inherited_attributes(db, Oid.interval("soundbite"))
        assert merged["subject"] == "flood report"   # from report, not broadcast
        assert merged["mood"] == "calm"              # only broadcast has it
        assert merged["speaker"] == "mayor"          # own attribute

    def test_own_attributes_always_win(self, db):
        db.set_attribute(Oid.interval("soundbite"), "subject", "quote")
        merged = inherited_attributes(db, Oid.interval("soundbite"))
        assert merged["subject"] == "quote"

    def test_reserved_attributes_not_inherited(self, db):
        merged = inherited_attributes(db, Oid.interval("soundbite"))
        assert "duration" not in merged
        assert "entities" not in merged

    def test_no_ancestors_yields_own_attributes(self, db):
        merged = inherited_attributes(db, Oid.interval("broadcast"))
        assert merged == {"subject": "news", "mood": "calm", "channel": "one"}


class TestInheritanceProgram:
    def test_gi_ancestor_rule_matches_python_view(self, db):
        engine = QueryEngine(db)
        engine.add_rules(inheritance_program())
        derived = {tuple(map(str, r)) for r in engine.facts("gi_ancestor")}
        expected = set()
        for interval in db.intervals():
            for ancestor in containing_intervals(db, interval.oid):
                expected.add((str(interval.oid), str(ancestor.oid)))
        # The rule also relates equal-footprint intervals both ways; with
        # this fixture there are none, so the two views agree exactly.
        assert derived == expected
