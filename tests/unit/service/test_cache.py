"""Unit tests for the LRU result cache and its epoch keying."""

import pytest

from vidb.service.cache import ResultCache
from vidb.service.metrics import MetricsRegistry


def key(query="?- object(V0).", epoch=0, program="fp"):
    return ResultCache.make_key(program, query, epoch)


class TestLRU:
    def test_get_miss_then_hit(self):
        cache = ResultCache(capacity=2)
        assert cache.get(key()) is None
        cache.put(key(), "answers")
        assert cache.get(key()) == "answers"

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            ResultCache(capacity=0)

    def test_least_recently_used_is_evicted(self):
        cache = ResultCache(capacity=2)
        cache.put(key("q1"), 1)
        cache.put(key("q2"), 2)
        cache.get(key("q1"))          # refresh q1; q2 becomes LRU
        cache.put(key("q3"), 3)
        assert cache.get(key("q1")) == 1
        assert cache.get(key("q2")) is None
        assert cache.get(key("q3")) == 3
        assert len(cache) == 2

    def test_put_same_key_replaces(self):
        cache = ResultCache(capacity=2)
        cache.put(key(), 1)
        cache.put(key(), 2)
        assert cache.get(key()) == 2
        assert len(cache) == 1


class TestEpochKeying:
    def test_epochs_do_not_share_entries(self):
        cache = ResultCache(capacity=8)
        cache.put(key(epoch=1), "old")
        assert cache.get(key(epoch=2)) is None
        cache.put(key(epoch=2), "new")
        assert cache.get(key(epoch=1)) == "old"
        assert cache.get(key(epoch=2)) == "new"

    def test_program_fingerprint_partitions(self):
        cache = ResultCache(capacity=8)
        cache.put(key(program="a"), "A")
        assert cache.get(key(program="b")) is None

    def test_purge_stale_drops_other_epochs(self):
        cache = ResultCache(capacity=8)
        cache.put(key("q1", epoch=1), 1)
        cache.put(key("q2", epoch=1), 2)
        cache.put(key("q3", epoch=2), 3)
        assert cache.purge_stale(current_epoch=2) == 2
        assert len(cache) == 1
        assert cache.get(key("q3", epoch=2)) == 3


class TestStats:
    def test_counters_flow_to_registry(self):
        registry = MetricsRegistry()
        cache = ResultCache(capacity=1, metrics=registry)
        cache.get(key("q1"))             # miss
        cache.put(key("q1"), 1)
        cache.get(key("q1"))             # hit
        cache.put(key("q2"), 2)          # evicts q1
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["evictions"] == 1
        assert stats["size"] == 1
        assert registry.snapshot()["cache.evictions"] == 1

    def test_clear(self):
        cache = ResultCache(capacity=4)
        cache.put(key(), 1)
        cache.clear()
        assert len(cache) == 0
