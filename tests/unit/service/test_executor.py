"""Unit tests for the concurrent executor: locking, caching, admission,
deadlines."""

import threading
import time

import pytest

from vidb.errors import (
    QueryTimeoutError,
    ServiceClosedError,
    ServiceOverloadedError,
)
from vidb.query.engine import QueryEngine
from vidb.service.executor import RWLock, ServiceExecutor
from vidb.workloads.paper import rope_database

Q_APPEARS = "?- interval(G), object(o1), o1 in G.entities."


@pytest.fixture
def service():
    with ServiceExecutor(rope_database(), max_workers=2) as executor:
        yield executor


class TestRWLock:
    def test_readers_share(self):
        lock = RWLock()
        entered = []

        def reader():
            with lock.read_locked():
                entered.append(1)
                time.sleep(0.05)

        threads = [threading.Thread(target=reader) for __ in range(4)]
        start = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # four 50ms readers in parallel finish way under 4 * 50ms
        assert time.perf_counter() - start < 0.15
        assert len(entered) == 4

    def test_writer_excludes_readers(self):
        lock = RWLock()
        order = []
        lock.acquire_write()

        def reader():
            with lock.read_locked():
                order.append("read")

        thread = threading.Thread(target=reader)
        thread.start()
        time.sleep(0.05)
        order.append("write-done")
        lock.release_write()
        thread.join()
        assert order == ["write-done", "read"]

    def test_waiting_writer_blocks_new_readers(self):
        lock = RWLock()
        lock.acquire_read()
        got_write = threading.Event()

        def writer():
            with lock.write_locked():
                got_write.set()

        thread = threading.Thread(target=writer)
        thread.start()
        time.sleep(0.02)
        # a late reader must queue behind the waiting writer
        late = threading.Thread(target=lambda: lock.read_locked().__enter__())
        assert not got_write.is_set()
        lock.release_read()
        thread.join()
        assert got_write.is_set()


class TestCaching:
    def test_repeat_query_hits_cache(self, service):
        first = service.execute(Q_APPEARS)
        second = service.execute(Q_APPEARS)
        snap = service.snapshot()
        assert snap["cache.hits"] == 1
        assert snap["cache.misses"] == 1
        assert first.rows() == second.rows()

    def test_alpha_variant_hits_same_entry(self, service):
        service.execute("?- object(O).")
        service.execute("?- object(X).")
        assert service.snapshot()["cache.hits"] == 1

    def test_mutation_bumps_epoch_and_invalidates(self, service):
        before = service.execute("?- object(O).")
        epoch_before = service.db.epoch
        service.new_entity("o42", name="Visitor")
        assert service.db.epoch > epoch_before
        after = service.execute("?- object(O).")
        assert len(after) == len(before) + 1
        snap = service.snapshot()
        assert snap["cache.hits"] == 0
        assert snap["cache.misses"] == 2

    def test_failed_mutation_rolls_back_and_keeps_epoch(self, service):
        baseline = service.execute("?- object(O).")
        epoch = service.db.epoch

        def bad_write(db):
            db.new_entity("o43", name="Ghost")
            raise RuntimeError("abort")

        with pytest.raises(RuntimeError):
            service.mutate(bad_write)
        assert service.db.epoch == epoch
        again = service.execute("?- object(O).")
        assert again.rows() == baseline.rows()
        # the rolled-back write left the cache entry valid: second read hits
        assert service.snapshot()["cache.hits"] == 1

    def test_add_rules_changes_fingerprint(self, service):
        service.execute("?- object(O).")
        service.add_rules("famous(O) :- object(O), O.role = \"Victim\".")
        service.execute("?- object(O).")
        # same query, new program -> second evaluation cannot reuse entry
        assert service.snapshot()["cache.misses"] == 2


class TestAdmissionAndDeadlines:
    def _blockable(self, db, max_workers, max_in_flight):
        executor = ServiceExecutor(db, max_workers=max_workers,
                                   max_in_flight=max_in_flight)
        gate = threading.Event()

        def blocked(ctx, args):
            gate.wait(timeout=10)
            return True

        executor.register_computed("blocked", 1, blocked)
        return executor, gate

    def test_overload_fast_fails(self):
        executor, gate = self._blockable(rope_database(),
                                         max_workers=1, max_in_flight=2)
        try:
            futures = [executor.submit("?- object(O), blocked(O).")
                       for __ in range(2)]
            with pytest.raises(ServiceOverloadedError):
                executor.submit("?- object(O).")
            assert executor.snapshot()["queries.rejected"] == 1
            gate.set()
            for future in futures:
                assert len(future.result(timeout=10)) == 9
            # slots free again: submission works now
            assert len(executor.execute("?- object(O).")) == 9
        finally:
            gate.set()
            executor.close()

    def test_deadline_expires_in_queue(self):
        executor, gate = self._blockable(rope_database(),
                                         max_workers=1, max_in_flight=4)
        try:
            running = executor.submit("?- object(O), blocked(O).")
            queued = executor.submit("?- interval(G).", timeout=0.05)
            time.sleep(0.2)
            gate.set()
            with pytest.raises(QueryTimeoutError):
                queued.result(timeout=10)
            running.result(timeout=10)
            assert executor.snapshot()["queries.timeout"] == 1
        finally:
            gate.set()
            executor.close()

    def test_deadline_expires_during_evaluation(self):
        executor = ServiceExecutor(rope_database(), max_workers=1)

        def slow(ctx, args):
            time.sleep(0.15)
            return True

        executor.register_computed("slow", 1, slow)
        try:
            with pytest.raises(QueryTimeoutError):
                executor.execute("?- interval(G), slow(G).", timeout=0.05)
        finally:
            executor.close()

    def test_no_timeout_by_default(self, service):
        assert len(service.execute("?- object(O).")) == 9


class TestLifecycle:
    def test_closed_executor_refuses_queries(self):
        executor = ServiceExecutor(rope_database(), max_workers=1)
        executor.close()
        with pytest.raises(ServiceClosedError):
            executor.submit("?- object(O).")

    def test_closed_executor_refuses_sessions(self):
        executor = ServiceExecutor(rope_database(), max_workers=1)
        executor.close()
        with pytest.raises(ServiceClosedError):
            executor.open_session()

    def test_service_answers_match_plain_engine(self, service):
        expected = QueryEngine(rope_database()).query(Q_APPEARS).rows()
        assert service.execute(Q_APPEARS).rows() == expected

    def test_snapshot_shape(self, service):
        service.execute("?- object(O).")
        snap = service.snapshot()
        for field in ("queries.served", "epoch", "in_flight",
                      "max_in_flight", "cache.size", "sessions.open"):
            assert field in snap
        assert snap["queries.served"] == 1
        assert snap["queries.latency_seconds"]["count"] == 1


class TestExecutionReports:
    def test_execute_report_fields(self, service):
        report = service.execute_report(Q_APPEARS)
        assert len(report.answers) == 2
        assert report.cached is False
        assert report.elapsed_s > 0
        assert report.trace is None

    def test_cache_hit_is_marked(self, service):
        first = service.execute_report(Q_APPEARS)
        second = service.execute_report(Q_APPEARS)
        assert first.cached is False
        assert second.cached is True
        assert second.answers.rows() == first.answers.rows()
        # hits reuse the original computation's statistics
        assert second.stats is first.stats

    def test_traced_report_bypasses_cache_but_populates_it(self, service):
        from vidb.query.execution import ExecutionOptions

        traced = service.execute_report(
            Q_APPEARS, options=ExecutionOptions(trace=True))
        assert traced.cached is False
        assert traced.trace is not None
        assert traced.trace.find("fixpoint.iteration")
        # the traced run still warmed the cache for plain queries
        assert service.execute_report(Q_APPEARS).cached is True

    def test_second_traced_query_recomputes(self, service):
        from vidb.query.execution import ExecutionOptions

        options = ExecutionOptions(trace=True)
        service.execute_report(Q_APPEARS, options=options)
        again = service.execute_report(Q_APPEARS, options=options)
        assert again.cached is False and again.trace is not None

    def test_submit_still_resolves_to_answers(self, service):
        answers = service.submit(Q_APPEARS).result()
        assert len(answers) == 2
        assert answers.rows() == service.execute(Q_APPEARS).rows()

    def test_submit_propagates_errors(self, service):
        from vidb.errors import VidbError

        future = service.submit("?- interval(G")
        with pytest.raises(VidbError):
            future.result()

    def test_recent_traces_most_recent_first(self, service):
        service.execute(Q_APPEARS)
        service.execute("?- object(O).")
        recent = service.recent_traces()
        # entries carry the normalized (cache-key) query text
        assert "object" in recent[0]["query"]
        assert "interval" in recent[1]["query"]
        assert len(recent) == 2
        for entry in recent:
            assert {"query", "elapsed_s", "cached", "answers",
                    "iterations", "derived_facts"} <= set(entry)
        assert service.recent_traces(limit=1) == recent[:1]

    def test_recent_traces_include_spans_when_traced(self, service):
        from vidb.query.execution import ExecutionOptions

        service.execute_report(Q_APPEARS,
                               options=ExecutionOptions(trace=True))
        entry = service.recent_traces()[0]
        assert entry["spans"]["name"] == "query.execute"

    def test_session_run_returns_report(self, service):
        with service.open_session() as session:
            report = session.run(Q_APPEARS)
            assert len(report.answers) == 2
            assert session.query(Q_APPEARS).rows() == report.answers.rows()
            assert session.queries_run == 2


class TestDurableService:
    def test_executor_unwraps_durable_database(self, tmp_path):
        from vidb.durability.durable import DurableDatabase

        durable = DurableDatabase(tmp_path, seed=rope_database(),
                                  fsync="never")
        service = ServiceExecutor(durable, max_workers=2)
        try:
            assert service.db is durable.db  # queries run on the inner db
            service.new_entity("fresh", name="New")
            assert durable.last_lsn > 0
            snap = service.snapshot()
            assert snap["wal.last_lsn"] == durable.last_lsn
            assert "snapshots.taken" in snap
        finally:
            service.close()

    def test_close_closes_the_durable_wrapper(self, tmp_path):
        from vidb.durability.durable import DurableDatabase

        durable = DurableDatabase(tmp_path, fsync="never")
        service = ServiceExecutor(durable, max_workers=2)
        service.close()
        from vidb.errors import DurabilityError
        with pytest.raises(DurabilityError):
            durable.checkpoint()

    def test_plain_database_has_no_durability(self):
        service = ServiceExecutor(rope_database(), max_workers=2)
        try:
            assert service.durability is None
            assert "wal.last_lsn" not in service.snapshot()
        finally:
            service.close()
