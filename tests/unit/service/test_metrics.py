"""Unit tests for vidb.service.metrics."""

import threading

import pytest

from vidb.service.metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    format_snapshot,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        counter = Counter()
        assert counter.value == 0
        counter.inc()
        counter.inc(5)
        assert counter.value == 6

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)

    def test_concurrent_increments_do_not_lose_updates(self):
        counter = Counter()

        def spin():
            for __ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=spin) for __ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 8000


class TestHistogram:
    def test_empty_snapshot(self):
        assert Histogram().snapshot() == {"count": 0}

    def test_aggregates(self):
        hist = Histogram(buckets=[0.1, 1.0])
        for value in (0.05, 0.5, 2.0):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["count"] == 3
        assert snap["min"] == 0.05
        assert snap["max"] == 2.0
        assert snap["sum"] == pytest.approx(2.55)

    def test_quantiles_use_bucket_bounds(self):
        hist = Histogram(buckets=[1, 10, 100])
        for __ in range(99):
            hist.observe(0.5)
        hist.observe(50)
        assert hist.quantile(0.5) == 1
        assert hist.quantile(1.0) == 100

    def test_quantile_range_checked(self):
        with pytest.raises(ValueError):
            Histogram().quantile(1.5)


class TestMetricsRegistry:
    def test_same_name_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("h") is registry.histogram("h")

    def test_snapshot_is_plain_and_sorted(self):
        registry = MetricsRegistry()
        registry.inc("b.count", 2)
        registry.inc("a.count")
        registry.observe("latency", 0.2)
        snap = registry.snapshot()
        assert snap["a.count"] == 1
        assert snap["b.count"] == 2
        assert snap["latency"]["count"] == 1
        assert list(snap)[:2] == ["a.count", "b.count"]
        # must serialize to JSON for the wire protocol
        import json

        json.dumps(snap)


class TestFormatSnapshot:
    def test_alignment_and_nesting(self):
        text = format_snapshot({
            "queries.served": 3,
            "hit": 1,
            "latency": {"count": 3, "mean": 0.001},
        })
        lines = text.splitlines()
        assert "queries.served : 3" in lines
        assert any(line.startswith("hit ") for line in lines)
        assert "latency:" in lines
        assert any(line.startswith("  count") for line in lines)

    def test_empty(self):
        assert format_snapshot({}) == ""
