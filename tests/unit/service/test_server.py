"""Unit tests for the JSON-lines TCP server and client."""

import json
import socket

import pytest

from vidb.errors import ProtocolError, QueryError, SessionError
from vidb.obs.trace import TraceContext, parse_traceparent
from vidb.service.executor import ServiceExecutor
from vidb.service.server import ServiceClient, VideoServer
from vidb.workloads.paper import rope_database


@pytest.fixture
def server():
    service = ServiceExecutor(rope_database(), max_workers=2)
    with service, VideoServer(service, port=0) as srv:
        srv.start_background()
        yield srv


@pytest.fixture
def client(server):
    host, port = server.address
    with ServiceClient(host, port) as c:
        yield c


class TestBasicOps:
    def test_ping(self, client):
        assert client.ping() is True

    def test_info(self, client):
        info = client.info()
        assert info["database"] == "the-rope"
        assert info["stats"]["entities"] == 9
        assert "epoch" in info

    def test_query_rows_are_strings(self, client):
        reply = client.query(
            "?- interval(G), object(o1), o1 in G.entities.")
        assert reply["variables"] == ["G"]
        assert sorted(reply["rows"]) == [["gi1"], ["gi2"]]
        assert reply["count"] == 2

    def test_query_limit(self, client):
        reply = client.query("?- object(O).", limit=3)
        assert len(reply["rows"]) == 3
        assert reply["count"] == 9


class TestPreparedOverTheWire:
    def test_prepare_execute(self, client):
        reply = client.prepare(
            "appears", "?- interval(G), object(O), O in G.entities.",
            params=["O"])
        assert reply["params"] == ["O"]
        result = client.execute("appears", params={"O": "o1"})
        assert sorted(r[0] for r in result["rows"]) == ["gi1", "gi2"]

    def test_prepared_state_is_per_connection(self, server, client):
        client.prepare("mine", "?- object(O).")
        host, port = server.address
        with ServiceClient(host, port) as other:
            with pytest.raises(SessionError):
                other.execute("mine")


class TestMutationsAndCache:
    def test_acceptance_flow(self, client):
        """Repeat -> cache hit; insert -> epoch bump -> fresh answers."""
        query = "?- interval(G), object(O), O in G.entities."
        first = client.query(query)
        second = client.query(query)
        assert second["rows"] == first["rows"]
        metrics = client.metrics()
        assert metrics["cache.hits"] >= 1
        epoch_before = client.info()["epoch"]

        client.insert_entity("o77", name="Latecomer")
        client.insert_interval("gi77", entities=["o77"],
                               duration=[[400, 410]])
        assert client.info()["epoch"] > epoch_before

        third = client.query(query)
        assert third["count"] == first["count"] + 1
        assert ["gi77", "o77"] in third["rows"]
        after = client.metrics()
        assert after["cache.misses"] > metrics["cache.misses"]

    def test_relate_resolves_oids(self, client):
        reply = client.relate("in", "o1", "o4", "gi1")
        assert reply["fact"] == "in(o1, o4, gi1)"
        result = client.query("?- in(X, Y, G).")
        assert ["o1", "o4", "gi1"] in result["rows"]


class TestErrorsOverTheWire:
    def test_query_error_round_trips(self, client):
        with pytest.raises(QueryError):
            client.query("?- object(O")

    def test_unknown_op(self, client):
        with pytest.raises(ProtocolError):
            client.request("frobnicate")

    def test_missing_field(self, client):
        with pytest.raises(ProtocolError):
            client.request("query")

    def test_connection_survives_errors(self, client):
        with pytest.raises(ProtocolError):
            client.request("frobnicate")
        assert client.ping() is True

    def test_garbage_line_gets_protocol_error(self, server):
        host, port = server.address
        with socket.create_connection((host, port), timeout=5) as sock:
            sock.sendall(b"this is not json\n")
            reply = json.loads(sock.makefile("rb").readline())
        assert reply["ok"] is False
        assert reply["error"] == "protocol"

    def test_close_op_ends_connection(self, server):
        host, port = server.address
        with socket.create_connection((host, port), timeout=5) as sock:
            reader = sock.makefile("rb")
            sock.sendall(b'{"op": "close"}\n')
            assert json.loads(reader.readline())["closing"] is True
            assert reader.readline() == b""


class TestObservabilityOps:
    def test_query_profile_payload(self, client):
        reply = client.query("?- object(O).", profile=True)
        assert reply["count"] == 9
        assert "== execution profile ==" in reply["profile"]
        assert reply["stats"]["iterations"] >= 1
        assert reply["trace"]["name"] == "query.execute"
        json.dumps(reply)  # the whole payload stays JSON-clean

    def test_plain_query_has_no_profile(self, client):
        reply = client.query("?- object(O).")
        assert "profile" not in reply and "trace" not in reply

    def test_trace_op_lists_recent_queries(self, client):
        client.query("?- object(O).")
        client.query("?- interval(G).", profile=True)
        reply = client.trace()
        assert reply["metrics"]["queries.served"] == 2
        recent = reply["recent"]
        assert len(recent) == 2
        assert "spans" in recent[0]      # profiled query, most recent
        assert "spans" not in recent[1]

    def test_trace_op_limit(self, client):
        for __ in range(3):
            client.query("?- object(O).")
        assert len(client.trace(limit=2)["recent"]) == 2


class TestDistributedTracing:
    """Cross-process trace contract at the wire boundary: header
    adoption, head sampling, black-box error retention."""

    @pytest.fixture
    def traced_server(self):
        service = ServiceExecutor(rope_database(), max_workers=2,
                                  trace_sample=1.0)
        with service, VideoServer(service, port=0) as srv:
            srv.start_background()
            yield srv

    def test_sampled_header_records_a_segment(self, server):
        context = TraceContext.new(sampled=True)
        host, port = server.address
        with ServiceClient(host, port, trace_context=context) as client:
            reply = client.query("?- object(O).")
            segments = client.trace(id=context.trace_id)["segments"]
        # The reply echoes the server's child context on the same trace.
        echoed = parse_traceparent(reply["trace"])
        assert echoed.trace_id == context.trace_id
        assert echoed.span_id != context.span_id
        (segment,) = segments
        assert segment["op"] == "query"
        assert segment["status"] == "ok"
        assert segment["parent_span_id"] == context.span_id
        assert segment["node"]["role"] == "standalone"
        assert segment["spans"]["name"] == "server.query"

    def test_unsampled_header_is_honored(self, traced_server):
        """flags=00 means the client decided *against* tracing; even a
        sample_rate=1.0 server must not head-sample over that."""
        context = TraceContext.new(sampled=False)
        host, port = traced_server.address
        with ServiceClient(host, port, trace_context=context) as client:
            reply = client.query("?- object(O).")
            assert "trace" not in reply
            assert client.trace(id=context.trace_id)["segments"] == []

    def test_head_sampling_without_client_header(self, traced_server):
        host, port = traced_server.address
        with ServiceClient(host, port) as client:
            reply = client.query("?- object(O).")
            context = parse_traceparent(reply["trace"])
            assert context is not None and context.sampled
            segments = client.trace(id=context.trace_id)["segments"]
        (segment,) = segments
        assert segment["parent_span_id"] is None  # server is the root

    def test_non_query_ops_are_not_head_sampled(self, traced_server):
        host, port = traced_server.address
        with ServiceClient(host, port) as client:
            assert client.ping() is True
            client.metrics()
            assert client.traces() == []

    def test_errors_retained_even_when_unsampled(self, server):
        context = TraceContext.new(sampled=False)
        host, port = server.address
        with ServiceClient(host, port, trace_context=context) as client:
            with pytest.raises(QueryError):
                client.query("?- object(O")
            segments = client.trace(id=context.trace_id)["segments"]
        (segment,) = segments
        assert segment["status"] == "error"
        assert segment["parent_span_id"] == context.span_id

    def test_traces_op_lists_summaries_most_recent_first(self, server):
        host, port = server.address
        for name in ("first", "second"):
            context = TraceContext.new(sampled=True)
            with ServiceClient(host, port,
                               trace_context=context) as client:
                client.query("?- object(O).")
                client.request("insert_entity", oid=name)
        with ServiceClient(host, port) as client:
            rows = client.traces()
        assert len(rows) == 4
        assert rows[0]["started_at"] >= rows[-1]["started_at"]
        assert {row["op"] for row in rows} == {"query", "insert_entity"}
        assert all(row["node"]["role"] == "standalone" for row in rows)
