"""Unit tests for sessions and prepared/parameterized queries."""

import pytest

from vidb.errors import ServiceClosedError, SessionError
from vidb.query import parser as parser_module
from vidb.service.executor import ServiceExecutor
from vidb.service.session import PreparedQuery, coerce_param
from vidb.query.ast import Symbol
from vidb.workloads.paper import rope_database


@pytest.fixture
def service():
    with ServiceExecutor(rope_database(), max_workers=2) as executor:
        yield executor


class TestCoerceParam:
    def test_identifier_binds_as_symbol(self):
        assert coerce_param("o1") == Symbol("o1")

    def test_quoted_binds_as_string(self):
        assert coerce_param('"David"') == "David"

    def test_numbers_pass_through(self):
        assert coerce_param(42) == 42
        assert coerce_param(1.5) == 1.5

    def test_non_identifier_string_stays_string(self):
        assert coerce_param("On the Waterfront") == "On the Waterfront"

    def test_bool_rejected(self):
        with pytest.raises(SessionError):
            coerce_param(True)


class TestPreparedQuery:
    def test_unknown_param_at_prepare(self):
        with pytest.raises(SessionError):
            PreparedQuery("p", "?- object(O).", params=["Z"])

    def test_unknown_param_at_bind(self):
        prepared = PreparedQuery("p", "?- object(O).", params=["O"])
        with pytest.raises(SessionError):
            prepared.bind(Z="o1")

    def test_bound_variable_leaves_projection(self):
        prepared = PreparedQuery(
            "p", "?- interval(G), object(O), O in G.entities.",
            params=["O"])
        assert prepared.variables == ("G", "O")
        query = prepared.bind(O="o1")
        assert [v.name for v in query.answer_variables] == ["G"]

    def test_bind_nothing_returns_original(self):
        prepared = PreparedQuery("p", "?- object(O).", params=["O"])
        assert prepared.bind() is prepared.query


class TestSessionExecution:
    def test_prepared_execution_matches_adhoc(self, service):
        session = service.open_session()
        session.prepare("appears",
                        "?- interval(G), object(O), O in G.entities.",
                        params=["O"])
        prepared_rows = session.execute("appears", O="o1").rows()
        adhoc_rows = session.query(
            "?- interval(G), object(o1), o1 in G.entities.").rows()
        assert sorted(map(str, prepared_rows)) == sorted(map(str, adhoc_rows))

    def test_execute_skips_the_parser(self, service, monkeypatch):
        session = service.open_session()
        session.prepare("all", "?- object(O).")

        def boom(*a, **k):  # pragma: no cover - would fail the test
            raise AssertionError("parser called after prepare")

        monkeypatch.setattr(parser_module, "parse_query", boom)
        assert len(session.execute("all")) == 9

    def test_unknown_prepared_name(self, service):
        session = service.open_session()
        with pytest.raises(SessionError):
            session.execute("nope")

    def test_session_counts_queries(self, service):
        session = service.open_session()
        session.query("?- object(O).")
        session.query("?- interval(G).")
        assert session.queries_run == 2

    def test_closed_session_refuses_work(self, service):
        session = service.open_session()
        session.close()
        with pytest.raises(ServiceClosedError):
            session.query("?- object(O).")

    def test_sessions_tracked_by_executor(self, service):
        before = service.session_count()
        with service.open_session():
            assert service.session_count() == before + 1
        assert service.session_count() == before

    def test_distinct_bindings_distinct_cache_entries(self, service):
        session = service.open_session()
        session.prepare("appears",
                        "?- interval(G), object(O), O in G.entities.",
                        params=["O"])
        first = session.execute("appears", O="o1")
        second = session.execute("appears", O="o9")
        assert {str(r[0]) for r in first.rows()} == {"gi1", "gi2"}
        assert {str(r[0]) for r in second.rows()} == {"gi2"}
