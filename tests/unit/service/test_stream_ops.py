"""Wire-protocol tests for the streaming ops: subscribe / poll /
unsubscribe / batch / listen / subscriptions, plus lifecycle rules."""

import threading
import time

import pytest

from vidb.errors import (
    ModelError,
    ProtocolError,
    ServiceError,
    SessionError,
    StandingQueryError,
)
from vidb.service.executor import ServiceExecutor
from vidb.service.server import ServiceClient, VideoServer
from vidb.storage.database import VideoDatabase


def empty_db():
    db = VideoDatabase("stream-ops")
    db.declare_relation("appears")
    return db


@pytest.fixture
def server():
    service = ServiceExecutor(empty_db(), max_workers=2)
    with service, VideoServer(service, port=0) as srv:
        srv.start_background()
        yield srv


@pytest.fixture
def client(server):
    host, port = server.address
    with ServiceClient(host, port) as c:
        yield c


def seed_objects(client, count=3):
    ops = []
    for i in range(1, count + 1):
        ops.append({"op": "insert_entity", "oid": f"o{i}", "attributes": {}})
        ops.append({"op": "insert_interval", "oid": f"gi{i}",
                    "entities": [f"o{i}"], "duration": [[i * 10, i * 10 + 5]]})
    return client.batch(ops)


class TestBatchOp:
    def test_batch_applies_atomically(self, client):
        reply = seed_objects(client)
        assert reply["applied"] == 6
        info = client.info()
        assert info["stats"]["entities"] == 3
        assert info["stats"]["intervals"] == 3

    def test_failing_batch_rolls_back_everything(self, client):
        epoch = client.info()["epoch"]
        with pytest.raises(ModelError):
            client.batch([
                {"op": "insert_entity", "oid": "o9", "attributes": {}},
                {"op": "insert_entity", "oid": "o9", "attributes": {}},
            ])
        info = client.info()
        assert info["epoch"] == epoch
        assert info["stats"]["entities"] == 0

    def test_declare_relation_sub_op(self, client):
        client.batch([{"op": "declare_relation", "name": "meets"}])
        client.declare_relation("follows")  # the standalone op too

    def test_unknown_sub_op_rejected(self, client):
        with pytest.raises(ProtocolError, match="unknown sub-op"):
            client.batch([{"op": "emancipate", "oid": "o1"}])


class TestSubscribeOverTheWire:
    def test_subscribe_poll_unsubscribe(self, client):
        seed_objects(client)
        sub = client.subscribe("?- appears(O, G).")
        assert sub["variables"] == ["O", "G"]
        client.relate("appears", "o1", "gi1")
        reply = client.poll(sub["id"], wait_s=2.0)
        [batch] = reply["batches"]
        assert batch["seq"] == 1
        assert batch["rows"] == [["o1", "gi1"]]
        assert reply["pending"] == 0
        assert client.unsubscribe(sub["id"]) is True
        assert client.unsubscribe(sub["id"]) is False

    def test_one_batch_per_commit(self, client):
        seed_objects(client)
        sub = client.subscribe("?- appears(O, G).")
        client.batch([
            {"op": "relate", "relation": "appears", "args": ["o1", "gi1"]},
            {"op": "relate", "relation": "appears", "args": ["o2", "gi2"]},
        ])
        client.relate("appears", "o3", "gi3")
        reply = client.poll(sub["id"], wait_s=2.0)
        assert [b["count"] for b in reply["batches"]] == [2, 1]
        assert [b["seq"] for b in reply["batches"]] == [1, 2]

    def test_aborted_batch_notifies_nothing(self, client):
        seed_objects(client)
        sub = client.subscribe("?- appears(O, G).")
        with pytest.raises(ModelError):
            client.batch([
                {"op": "relate", "relation": "appears",
                 "args": ["o1", "gi1"]},
                {"op": "insert_entity", "oid": "o1", "attributes": {}},
            ])
        assert client.poll(sub["id"])["batches"] == []

    def test_filter_over_the_wire(self, client):
        seed_objects(client)
        sub = client.subscribe("?- appears(O, G).", filter={"O": "o2"})
        client.batch([
            {"op": "relate", "relation": "appears", "args": ["o1", "gi1"]},
            {"op": "relate", "relation": "appears", "args": ["o2", "gi2"]},
        ])
        [batch] = client.poll(sub["id"], wait_s=2.0)["batches"]
        assert batch["rows"] == [["o2", "gi2"]]

    def test_poll_unknown_subscription(self, client):
        with pytest.raises(SessionError, match="no subscription"):
            client.poll("sub12345")

    def test_subscriptions_listing(self, client):
        sub = client.subscribe("?- appears(O, G).")
        listing = client.subscriptions()
        assert [entry["id"] for entry in listing] == [sub["id"]]
        assert listing[0]["query"] == "?- appears(O, G)."

    def test_bad_filter_shape_rejected(self, client):
        with pytest.raises(ProtocolError):
            client.request("subscribe", query="?- appears(O, G).",
                           filter=["not", "a", "dict"])


class TestSubscribeAnalysis:
    """Subscribe-time streaming-safety analysis over the wire."""

    NEGATED = "?- interval(G), object(O), not appears(O, G)."

    def test_non_monotone_query_rejected_with_diagnostics(self, client):
        with pytest.raises(StandingQueryError) as exc:
            client.subscribe(self.NEGATED)
        diagnostics = exc.value.diagnostics
        assert diagnostics, "rejection must carry located diagnostics"
        codes = [d["code"] for d in diagnostics]
        assert "VDB060" in codes
        located = [d for d in diagnostics if d["code"] == "VDB060"][0]
        assert located["severity"] == "error"
        assert located["span"]["line"] >= 1  # span survives the wire

    def test_rejection_registers_no_subscription(self, client):
        with pytest.raises(StandingQueryError):
            client.subscribe(self.NEGATED)
        assert client.subscriptions() == []

    def test_accepted_subscription_reports_classification(self, client):
        sub = client.subscribe("?- appears(O, G).")
        assert sub["maintenance"] == "incremental"
        [entry] = client.subscriptions()
        assert entry["maintenance"] == "incremental"
        assert entry["deletion_sensitive"] is False

    def test_deletion_sensitive_join_warns_but_subscribes(self, client):
        sub = client.subscribe("?- appears(O, G), appears(O, H).")
        codes = [d["code"] for d in sub.get("diagnostics", ())]
        assert "VDB062" in codes
        [entry] = client.subscriptions()
        assert entry["deletion_sensitive"] is True


class TestSchemaInvalidation:
    """declare_relation must invalidate the engine's cached analysis."""

    def test_unknown_relation_then_declared(self, client):
        from vidb.errors import QueryError

        with pytest.raises(QueryError):
            client.query("?- meets(G, H).")
        client.declare_relation("meets")
        reply = client.query("?- meets(G, H).")
        assert reply["count"] == 0  # declared, empty: runs clean now

    def test_subscribe_after_declare(self, client):
        from vidb.errors import QueryError

        with pytest.raises(QueryError):
            client.subscribe("?- follows(A, B).")
        client.declare_relation("follows")
        sub = client.subscribe("?- follows(A, B).")
        assert sub["variables"] == ["A", "B"]


class TestSessionLifecycle:
    def test_connection_close_removes_subscription(self, server, client):
        host, port = server.address
        with ServiceClient(host, port) as other:
            other.subscribe("?- appears(O, G).")
            assert len(client.subscriptions()) == 1
        # Session teardown runs in the server's connection thread after
        # the socket closes; give it a moment to land.
        deadline = time.monotonic() + 5.0
        while client.subscriptions() and time.monotonic() < deadline:
            time.sleep(0.02)
        assert client.subscriptions() == []

    def test_detached_subscription_survives(self, server, client):
        host, port = server.address
        with ServiceClient(host, port) as other:
            sub = other.subscribe("?- appears(O, G).", detach=True)
        listing = client.subscriptions()
        assert [entry["id"] for entry in listing] == [sub["id"]]
        assert client.unsubscribe(sub["id"]) is True


class TestPushMode:
    def test_listen_streams_batches(self, server, client):
        seed_objects(client)
        sub = client.subscribe("?- appears(O, G).", detach=True)
        host, port = server.address
        received = []
        ready = threading.Event()

        def listener():
            with ServiceClient(host, port) as pusher:
                iterator = pusher.listen(sub["id"])
                ready.set()
                for batch in iterator:
                    received.append(batch)
                    if len(received) == 2:
                        return

        thread = threading.Thread(target=listener, daemon=True)
        thread.start()
        assert ready.wait(5.0)
        client.relate("appears", "o1", "gi1")
        client.relate("appears", "o2", "gi2")
        thread.join(10.0)
        assert not thread.is_alive()
        assert [b["seq"] for b in received] == [1, 2]
        assert received[0]["push"] is True
        assert received[0]["rows"] == [["o1", "gi1"]]

    def test_listen_ends_when_unsubscribed(self, server, client):
        sub = client.subscribe("?- appears(O, G).", detach=True)
        host, port = server.address
        done = threading.Event()

        def listener():
            with ServiceClient(host, port) as pusher:
                for _ in pusher.listen(sub["id"]):
                    pass
            done.set()

        thread = threading.Thread(target=listener, daemon=True)
        thread.start()
        import time
        time.sleep(0.3)  # let the listener enter push mode
        client.unsubscribe(sub["id"])
        assert done.wait(10.0)


class TestStreamingMetricsAndConfig:
    def test_stream_metric_families(self, client):
        seed_objects(client)
        sub = client.subscribe("?- appears(O, G).")
        client.relate("appears", "o1", "gi1")
        metrics = client.metrics()
        assert metrics["stream.subscriptions"] == 1
        assert metrics["stream.notifications"] == 1
        key = "stream_notifications_total{subscription=%s}" % sub["id"]
        assert metrics[key] == 1

    def test_streaming_disabled(self):
        service = ServiceExecutor(empty_db(), max_workers=1, streaming=False)
        with service, VideoServer(service, port=0) as srv:
            srv.start_background()
            host, port = srv.address
            with ServiceClient(host, port) as c:
                with pytest.raises(ServiceError, match="disabled"):
                    c.subscribe("?- appears(O, G).")
                c.ping()  # everything else still works

    def test_admission_limit_over_the_wire(self):
        service = ServiceExecutor(empty_db(), max_workers=1,
                                  max_subscriptions=1)
        with service, VideoServer(service, port=0) as srv:
            srv.start_background()
            host, port = srv.address
            with ServiceClient(host, port) as c:
                c.subscribe("?- appears(O, G).")
                with pytest.raises(ServiceError):
                    c.subscribe("?- appears(O, G).")
