"""Unit tests for the ``vidb top`` renderer and poll loop."""

import io

from vidb.service.top import (
    CLEAR,
    cluster_top_loop,
    render_cluster_top,
    render_top,
    top_loop,
)

BASE = {
    "epoch": 13,
    "sessions.open": 2,
    "in_flight": 1,
    "max_in_flight": 16,
    "queries.served": 100,
    "queries.errors": 1,
    "queries.timeout": 2,
    "queries.rejected": 3,
    "writes.applied": 10,
    "cache.hits": 90,
    "cache.misses": 10,
    "cache.size": 10,
    "cache.capacity": 256,
    "queries.latency_seconds": {
        "count": 100, "sum": 0.2, "mean": 0.002,
        "min": 0.001, "max": 0.05,
        "p50": 0.001, "p95": 0.005, "p99": 0.01,
    },
}


class TestRenderTop:
    def test_header_and_counters(self):
        frame = render_top(BASE)
        assert "epoch 13" in frame
        assert "sessions 2" in frame
        assert "in-flight 1/16" in frame
        assert "served 100" in frame
        assert "errors 1" in frame and "timeouts 2" in frame
        assert "rejected 3" in frame

    def test_rates_need_a_previous_snapshot(self):
        assert "qps -" in render_top(BASE)
        previous = dict(BASE, **{"queries.served": 50,
                                 "writes.applied": 5})
        frame = render_top(BASE, previous, interval_s=2.0)
        assert "qps 25" in frame
        assert "writes/s 2.5" in frame

    def test_latency_line(self):
        frame = render_top(BASE)
        assert "p50 1ms" in frame
        assert "p95 5ms" in frame
        assert "p99 10ms" in frame

    def test_latency_placeholder_before_any_query(self):
        empty = dict(BASE, **{"queries.latency_seconds": {"count": 0}})
        assert "latency (no queries yet)" in render_top(empty)

    def test_cache_hit_rate(self):
        frame = render_top(BASE)
        assert "cache 90.0% hit" in frame
        assert "10/256 entries" in frame
        cold = dict(BASE, **{"cache.hits": 0, "cache.misses": 0})
        assert "cache - hit" in render_top(cold)

    def test_wal_line_only_when_durable(self):
        assert "wal head" not in render_top(BASE)
        durable = dict(BASE, **{"wal.last_lsn": 42, "wal.size_bytes": 1024,
                                "wal.since_checkpoint": 7,
                                "snapshots.taken": 3, "replica.lag": 2})
        frame = render_top(durable)
        assert "wal head lsn 42" in frame
        assert "replica lag 2" in frame

    def test_slow_query_block(self):
        events = [{"elapsed_ms": 120.0, "query": "?- object(O).",
                   "rows": 9}]
        frame = render_top(BASE, events=events)
        assert "recent slow queries:" in frame
        assert "120ms" in frame
        assert "?- object(O)." in frame
        assert "(9 rows)" in frame


class FakeClient:
    def __init__(self):
        self.metrics_calls = 0

    def metrics(self):
        self.metrics_calls += 1
        return dict(BASE)

    def events(self, limit=None, type=None):
        assert type == "slow_query"
        return []


class TestTopLoop:
    def test_once_renders_one_frame(self):
        out = io.StringIO()
        client = FakeClient()
        assert top_loop(client, once=True, out=out) == 0
        assert client.metrics_calls == 1
        assert "vidb top" in out.getvalue()
        assert CLEAR not in out.getvalue()

    def test_clear_override(self):
        out = io.StringIO()
        top_loop(FakeClient(), once=True, clear=True, out=out)
        assert out.getvalue().startswith(CLEAR)


class TestNotifyLatencyPanel:
    SUB = {"id": "sub1", "seq": 4, "rows": 12, "queue_depth": 1,
           "max_queue": 64, "query": "?- appears(O, G)."}

    def test_histogram_shows_p50_p95(self):
        snapshot = dict(BASE)
        snapshot["stream_notify_latency_seconds{subscription=sub1}"] = {
            "count": 4, "p50": 0.002, "p95": 0.008}
        frame = render_top(snapshot, subscriptions=[dict(self.SUB)])
        assert "notify p50 2ms/p95 8ms" in frame

    def test_falls_back_to_last_batch_latency(self):
        sub = dict(self.SUB, last_latency_ms=3.0)
        frame = render_top(dict(BASE), subscriptions=[sub])
        assert "notify 3ms" in frame

    def test_silent_before_any_notification(self):
        frame = render_top(dict(BASE), subscriptions=[dict(self.SUB)])
        assert "notify" not in frame


CLUSTER_HEALTH = {
    "ok": True,
    "router": "127.0.0.1:7430",
    "primary": "127.0.0.1:7421",
    "replicas": [],
    "nodes": [
        {"node": "127.0.0.1:7421", "role": "primary", "up": True,
         "served": 100, "lag": 0, "lsn": 40, "queue_depth": 0,
         "p95_ms": 5.0},
        {"node": "127.0.0.1:7442", "role": "replica", "up": False,
         "served": 250, "lag": 3, "lsn": 37, "queue_depth": 2,
         "error": "connection refused"},
    ],
    "rollups": {"nodes": 2, "nodes_up": 1, "queries_served": 350,
                "queries_rejected": 2, "in_flight": 3,
                "max_replica_lag": 3, "head_lsn": 40,
                "subscriptions": 4, "subscription_queue_depth": 7},
}


class TestRenderClusterTop:
    def test_header_and_rollups(self):
        frame = render_cluster_top(CLUSTER_HEALTH)
        assert ("vidb top --cluster — router 127.0.0.1:7430, "
                "primary 127.0.0.1:7421, nodes 1/2 up") in frame
        assert "cluster qps -" in frame
        assert "served 350" in frame
        assert "max lag 3" in frame
        assert "head lsn 40" in frame
        assert "subs 4 (queued 7)" in frame

    def test_node_rows_show_health_and_errors(self):
        frame = render_cluster_top(CLUSTER_HEALTH)
        assert "127.0.0.1:7421" in frame and "up" in frame
        assert "p95 5ms" in frame
        down = next(line for line in frame.splitlines()
                    if "127.0.0.1:7442" in line)
        assert "DOWN" in down
        assert "(connection refused)" in down

    def test_cluster_qps_from_previous_frame(self):
        previous = {"rollups": dict(CLUSTER_HEALTH["rollups"],
                                    queries_served=250)}
        frame = render_cluster_top(CLUSTER_HEALTH, previous,
                                   interval_s=2.0)
        assert "cluster qps 50" in frame

    def test_empty_fleet_placeholder(self):
        frame = render_cluster_top({"router": "r", "primary": "p",
                                    "rollups": {}, "nodes": []})
        assert "nodes: (no members scraped yet)" in frame


class FakeRouterClient:
    def __init__(self):
        self.calls = 0

    def cluster_health(self):
        self.calls += 1
        return dict(CLUSTER_HEALTH)


class TestClusterTopLoop:
    def test_once_renders_one_frame(self):
        out = io.StringIO()
        client = FakeRouterClient()
        assert cluster_top_loop(client, once=True, out=out) == 0
        assert client.calls == 1
        assert "vidb top --cluster" in out.getvalue()
        assert CLEAR not in out.getvalue()
