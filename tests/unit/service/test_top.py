"""Unit tests for the ``vidb top`` renderer and poll loop."""

import io

from vidb.service.top import CLEAR, render_top, top_loop

BASE = {
    "epoch": 13,
    "sessions.open": 2,
    "in_flight": 1,
    "max_in_flight": 16,
    "queries.served": 100,
    "queries.errors": 1,
    "queries.timeout": 2,
    "queries.rejected": 3,
    "writes.applied": 10,
    "cache.hits": 90,
    "cache.misses": 10,
    "cache.size": 10,
    "cache.capacity": 256,
    "queries.latency_seconds": {
        "count": 100, "sum": 0.2, "mean": 0.002,
        "min": 0.001, "max": 0.05,
        "p50": 0.001, "p95": 0.005, "p99": 0.01,
    },
}


class TestRenderTop:
    def test_header_and_counters(self):
        frame = render_top(BASE)
        assert "epoch 13" in frame
        assert "sessions 2" in frame
        assert "in-flight 1/16" in frame
        assert "served 100" in frame
        assert "errors 1" in frame and "timeouts 2" in frame
        assert "rejected 3" in frame

    def test_rates_need_a_previous_snapshot(self):
        assert "qps -" in render_top(BASE)
        previous = dict(BASE, **{"queries.served": 50,
                                 "writes.applied": 5})
        frame = render_top(BASE, previous, interval_s=2.0)
        assert "qps 25" in frame
        assert "writes/s 2.5" in frame

    def test_latency_line(self):
        frame = render_top(BASE)
        assert "p50 1ms" in frame
        assert "p95 5ms" in frame
        assert "p99 10ms" in frame

    def test_latency_placeholder_before_any_query(self):
        empty = dict(BASE, **{"queries.latency_seconds": {"count": 0}})
        assert "latency (no queries yet)" in render_top(empty)

    def test_cache_hit_rate(self):
        frame = render_top(BASE)
        assert "cache 90.0% hit" in frame
        assert "10/256 entries" in frame
        cold = dict(BASE, **{"cache.hits": 0, "cache.misses": 0})
        assert "cache - hit" in render_top(cold)

    def test_wal_line_only_when_durable(self):
        assert "wal head" not in render_top(BASE)
        durable = dict(BASE, **{"wal.last_lsn": 42, "wal.size_bytes": 1024,
                                "wal.since_checkpoint": 7,
                                "snapshots.taken": 3, "replica.lag": 2})
        frame = render_top(durable)
        assert "wal head lsn 42" in frame
        assert "replica lag 2" in frame

    def test_slow_query_block(self):
        events = [{"elapsed_ms": 120.0, "query": "?- object(O).",
                   "rows": 9}]
        frame = render_top(BASE, events=events)
        assert "recent slow queries:" in frame
        assert "120ms" in frame
        assert "?- object(O)." in frame
        assert "(9 rows)" in frame


class FakeClient:
    def __init__(self):
        self.metrics_calls = 0

    def metrics(self):
        self.metrics_calls += 1
        return dict(BASE)

    def events(self, limit=None, type=None):
        assert type == "slow_query"
        return []


class TestTopLoop:
    def test_once_renders_one_frame(self):
        out = io.StringIO()
        client = FakeClient()
        assert top_loop(client, once=True, out=out) == 0
        assert client.metrics_calls == 1
        assert "vidb top" in out.getvalue()
        assert CLEAR not in out.getvalue()

    def test_clear_override(self):
        out = io.StringIO()
        top_loop(FakeClient(), once=True, clear=True, out=out)
        assert out.getvalue().startswith(CLEAR)
