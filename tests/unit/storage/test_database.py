"""Unit tests for the indexed video database."""

import pytest

from vidb.errors import ModelError, UnknownOidError
from vidb.intervals.generalized import GeneralizedInterval
from vidb.model.objects import EntityObject, GeneralizedIntervalObject
from vidb.model.oid import Oid
from vidb.model.relations import RelationFact
from vidb.storage.database import VideoDatabase


def gi(*pairs):
    return GeneralizedInterval.from_pairs(pairs)


@pytest.fixture
def db():
    database = VideoDatabase("unit")
    database.new_entity("a", name="Ana", role="host")
    database.new_entity("b", name="Ben", role="guest")
    database.new_entity("c", name="Cem", role="guest")
    database.new_interval("g1", entities=["a", "b"], duration=[(0, 10)],
                          subject="intro")
    database.new_interval("g2", entities=["b", "c"],
                          duration=[(20, 30), (40, 50)], subject="debate")
    database.relate("in", Oid.entity("a"), Oid.entity("b"),
                    Oid.interval("g1"))
    return database


class TestPopulation:
    def test_stats(self, db):
        assert db.stats() == {"entities": 3, "intervals": 2, "facts": 1}

    def test_new_interval_accepts_pair_list(self, db):
        interval = db.interval("g2")
        assert interval.footprint() == gi((20, 30), (40, 50))

    def test_entities_coerced_from_names(self, db):
        assert Oid.entity("a") in db.interval("g1").entities

    def test_relate_accepts_objects_and_oids(self, db):
        ana = db.entity("a")
        fact = db.relate("likes", ana, Oid.entity("b"))
        assert fact.args == (Oid.entity("a"), Oid.entity("b"))

    def test_relate_deduplicates(self, db):
        before = len(db.facts())
        db.relate("in", Oid.entity("a"), Oid.entity("b"), Oid.interval("g1"))
        assert len(db.facts()) == before

    def test_add_rejects_plain_object(self, db):
        with pytest.raises(ModelError):
            db.add("nope")  # type: ignore[arg-type]


class TestAccessPaths:
    def test_find_by_attribute_scalar(self, db):
        found = db.find_by_attribute("role", "guest")
        assert {str(o.oid) for o in found} == {"b", "c"}

    def test_find_by_attribute_set_member(self, db):
        db.new_interval("g3", entities=["a"], duration=[(60, 70)],
                        crew={Oid.entity("b"), Oid.entity("c")})
        found = db.find_by_attribute("crew", Oid.entity("b"))
        assert [str(o.oid) for o in found] == ["g3"]

    def test_intervals_with_entity(self, db):
        assert [str(i.oid) for i in db.intervals_with_entity("b")] == ["g1", "g2"]
        assert [str(i.oid) for i in db.intervals_with_entity("a")] == ["g1"]

    def test_entities_in(self, db):
        assert [str(e.oid) for e in db.entities_in("g1")] == ["a", "b"]

    def test_intervals_at(self, db):
        assert [str(i.oid) for i in db.intervals_at(5)] == ["g1"]
        assert [str(i.oid) for i in db.intervals_at(45)] == ["g2"]
        assert db.intervals_at(15) == []
        assert db.intervals_at(35) == []  # in g2's gap

    def test_intervals_overlapping(self, db):
        assert [str(i.oid) for i in db.intervals_overlapping(5, 25)] == ["g1", "g2"]
        assert db.intervals_overlapping(11, 19) == []
        assert [str(i.oid) for i in db.intervals_overlapping(31, 39)] == []

    def test_footprint(self, db):
        assert db.footprint("g2") == gi((20, 30), (40, 50))
        assert db.footprint("missing") is None

    def test_facts_by_name_and_arg(self, db):
        assert len(db.facts("in")) == 1
        assert len(db.facts("missing")) == 0
        assert len(db.facts_with_arg("in", 0, Oid.entity("a"))) == 1
        assert len(db.facts_with_arg("in", 0, Oid.entity("b"))) == 0

    def test_relation_names(self, db):
        assert db.relation_names() == frozenset({"in"})


class TestUpdates:
    def test_set_attribute_reindexes(self, db):
        db.set_attribute(Oid.entity("b"), "role", "host")
        assert {str(o.oid) for o in db.find_by_attribute("role", "host")} == {"a", "b"}
        assert {str(o.oid) for o in db.find_by_attribute("role", "guest")} == {"c"}

    def test_replace_interval_updates_temporal_index(self, db):
        updated = db.interval("g1").with_attribute("duration", gi((100, 110)))
        db.replace(updated)
        assert db.intervals_at(5) == []
        assert [str(i.oid) for i in db.intervals_at(105)] == ["g1"]

    def test_replace_interval_updates_membership(self, db):
        updated = GeneralizedIntervalObject(
            Oid.interval("g1"),
            {"entities": {Oid.entity("c")}, "duration": gi((0, 10))})
        db.replace(updated)
        assert db.intervals_with_entity("a") == []
        assert [str(i.oid) for i in db.intervals_with_entity("c")] == ["g1", "g2"]

    def test_replace_unknown_raises(self, db):
        with pytest.raises(UnknownOidError):
            db.replace(EntityObject(Oid.entity("zz")))

    def test_remove_object_clears_indexes(self, db):
        db.remove_object(Oid.interval("g1"))
        assert db.intervals_at(5) == []
        assert db.intervals_with_entity("a") == []
        assert db.stats()["intervals"] == 1

    def test_remove_fact(self, db):
        fact = RelationFact("in", (Oid.entity("a"), Oid.entity("b"),
                                   Oid.interval("g1")))
        db.remove_fact(fact)
        assert db.facts("in") == frozenset()
        assert db.facts_with_arg("in", 0, Oid.entity("a")) == frozenset()

    def test_string_oid_coercion_in_require(self, db):
        db.set_attribute("a", "name", "Anna")
        assert db.entity("a")["name"] == "Anna"
