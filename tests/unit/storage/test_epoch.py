"""The mutation-epoch counter: every mutation bumps it, rollback restores
it, and equal epochs imply equal database state (the cache invariant)."""

import pytest

from vidb.model.relations import RelationFact
from vidb.storage.database import VideoDatabase


@pytest.fixture
def db():
    database = VideoDatabase("epochs")
    database.new_entity("o1", name="David")
    database.new_interval("gi1", entities=["o1"], duration=[(0, 10)])
    return database


class TestBumps:
    def test_fresh_database_at_zero(self):
        assert VideoDatabase().epoch == 0

    def test_every_constructor_bumps(self):
        db = VideoDatabase()
        db.new_entity("o1")
        assert db.epoch == 1
        db.new_interval("gi1", entities=["o1"], duration=[(0, 5)])
        assert db.epoch == 2
        db.relate("in", "o1", "gi1")
        assert db.epoch == 3

    def test_duplicate_fact_does_not_bump(self, db):
        db.relate("in", "o1", "gi1")
        epoch = db.epoch
        db.relate("in", "o1", "gi1")
        assert db.epoch == epoch

    def test_updates_and_removals_bump(self, db):
        epoch = db.epoch
        db.set_attribute("o1", "name", "Brandon")
        assert db.epoch == epoch + 1
        db.remove_object("gi1")
        assert db.epoch == epoch + 2

    def test_remove_missing_fact_does_not_bump(self, db):
        epoch = db.epoch
        db.remove_fact(RelationFact("nope", (1,)))
        assert db.epoch == epoch

    def test_declare_relation_bumps_once(self, db):
        epoch = db.epoch
        db.declare_relation("speaks")
        assert db.epoch == epoch + 1
        db.declare_relation("speaks")
        assert db.epoch == epoch + 1


class TestTransactions:
    def test_commit_keeps_the_bumped_epoch(self, db):
        epoch = db.epoch
        with db.transaction():
            db.new_entity("o2")
            db.new_entity("o3")
        assert db.epoch == epoch + 2

    def test_rollback_restores_the_snapshot_epoch(self, db):
        epoch = db.epoch
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.new_entity("o2")
                db.relate("in", "o2", "gi1")
                assert db.epoch > epoch
                raise RuntimeError("abort")
        assert db.epoch == epoch
        assert db.get(db.entity_oid("o2")) is None

    def test_explicit_rollback_restores(self, db):
        epoch = db.epoch
        with db.transaction() as txn:
            db.new_entity("o2")
            txn.rollback()
        assert db.epoch == epoch

    def test_nested_transaction_shares_snapshot(self, db):
        epoch = db.epoch
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.new_entity("o2")
                with db.transaction():
                    db.new_entity("o3")
                raise RuntimeError("abort")
        assert db.epoch == epoch

    def test_same_epoch_means_same_state(self, db):
        """The cache invariant, spelled out: state at an epoch is stable."""
        stats = db.stats()
        epoch = db.epoch
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.new_entity("oX")
                db.remove_object("gi1")
                raise RuntimeError("abort")
        assert db.epoch == epoch
        assert db.stats() == stats
