"""Unit tests for JSON persistence."""

from fractions import Fraction

import pytest

from vidb.constraints.terms import Var
from vidb.errors import PersistenceError
from vidb.intervals.generalized import GeneralizedInterval
from vidb.model.oid import Oid
from vidb.storage.database import VideoDatabase
from vidb.storage.persistence import (
    database_from_dict,
    database_to_dict,
    decode_value,
    dumps,
    encode_value,
    load,
    loads,
    save,
)

t = Var("t")


def gi(*pairs):
    return GeneralizedInterval.from_pairs(pairs)


class TestValueCodec:
    @pytest.mark.parametrize("value", [
        5, -3, 2.5, "hello", Fraction(1, 3),
        Oid.entity("o1"), Oid.interval("g1"),
        Oid.concat(Oid.interval("a"), Oid.interval("b")),
        frozenset({1, 2, "x"}),
        frozenset({frozenset({1}), frozenset({2})}),
    ])
    def test_roundtrip(self, value):
        assert decode_value(encode_value(value)) == value

    def test_constraint_roundtrip(self):
        constraint = ((t > 0) & (t < 5)) | t.eq(9)
        decoded = decode_value(encode_value(constraint))
        assert decoded.dnf() == constraint.dnf()

    def test_fraction_exact(self):
        encoded = encode_value(Fraction(1, 3))
        assert encoded == {"$fraction": [1, 3]}
        assert decode_value(encoded) == Fraction(1, 3)

    def test_boolean_rejected(self):
        with pytest.raises(PersistenceError):
            encode_value(True)

    def test_unknown_type_rejected(self):
        with pytest.raises(PersistenceError):
            encode_value(object())

    def test_unknown_tag_rejected(self):
        with pytest.raises(PersistenceError):
            decode_value({"$mystery": 1})


@pytest.fixture
def db():
    database = VideoDatabase("persist")
    ana = database.new_entity("a", name="Ana", rating=Fraction(9, 2))
    ben = database.new_entity("b", name="Ben", tags={"x", "y"})
    database.new_interval("g1", entities=[ana.oid, ben.oid],
                          duration=[(0, 10), (20, 30)], subject="intro",
                          host=ana.oid)
    database.relate("in", ana, ben, Oid.interval("g1"))
    database.relate("rated", Oid.interval("g1"), 5)
    return database


class TestDatabaseCodec:
    def test_roundtrip_preserves_everything(self, db):
        restored = loads(dumps(db))
        assert set(restored.entities()) == set(db.entities())
        assert set(restored.intervals()) == set(db.intervals())
        assert restored.facts() == db.facts()
        assert restored.name == db.name

    def test_snapshot_is_stable(self, db):
        snapshot = dumps(db)
        assert dumps(loads(snapshot)) == snapshot

    def test_restored_indexes_work(self, db):
        restored = loads(dumps(db))
        assert [str(i.oid) for i in restored.intervals_at(25)] == ["g1"]
        assert [str(i.oid) for i in restored.intervals_with_entity("a")] == ["g1"]
        assert len(restored.facts("in")) == 1

    def test_file_roundtrip(self, db, tmp_path):
        path = tmp_path / "snapshot.json"
        save(db, path)
        restored = load(path)
        assert set(restored.entities()) == set(db.entities())

    def test_format_version_checked(self, db):
        data = database_to_dict(db)
        data["format"] = 999
        with pytest.raises(PersistenceError):
            database_from_dict(data)

    def test_not_a_snapshot_rejected(self):
        with pytest.raises(PersistenceError):
            database_from_dict({"hello": "world"})

    def test_invalid_json_rejected(self):
        with pytest.raises(PersistenceError):
            loads("{not json")

    def test_empty_database_roundtrip(self):
        empty = VideoDatabase("empty")
        restored = loads(dumps(empty))
        assert len(restored) == 0 and restored.name == "empty"


class TestEpochPersistence:
    def test_epoch_survives_roundtrip(self, db):
        db.set_attribute("a", "name", "Renamed")
        restored = loads(dumps(db))
        assert restored.epoch == db.epoch

    def test_legacy_snapshot_without_epoch_loads(self, db):
        # pre-epoch snapshots decode fine; the epoch is whatever the
        # rebuild produced (one bump per restored mutation)
        data = database_to_dict(db)
        del data["epoch"]
        restored = database_from_dict(data)
        assert restored.stats() == db.stats()
        assert restored.epoch > 0

    def test_bogus_epoch_ignored(self, db):
        data = database_to_dict(db)
        data["epoch"] = "many"
        restored = database_from_dict(data)
        assert restored.stats() == db.stats()

    def test_stored_epoch_overrides_rebuild_count(self, db):
        data = database_to_dict(db)
        data["epoch"] = 1234
        assert database_from_dict(data).epoch == 1234


class TestAtomicSave:
    def test_save_leaves_no_temp_file(self, db, tmp_path):
        path = tmp_path / "db.json"
        save(db, path)
        assert [p.name for p in tmp_path.iterdir()] == ["db.json"]

    def test_save_replaces_existing_file(self, db, tmp_path):
        path = tmp_path / "db.json"
        path.write_text("old garbage", encoding="utf-8")
        save(db, path)
        assert load(path).stats() == db.stats()
