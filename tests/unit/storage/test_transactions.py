"""Unit tests for undo-log transactions."""

import pytest

from vidb.errors import TransactionError
from vidb.model.oid import Oid
from vidb.storage.database import VideoDatabase


@pytest.fixture
def db():
    database = VideoDatabase("tx")
    database.new_entity("a", name="Ana")
    database.new_interval("g1", entities=["a"], duration=[(0, 10)])
    return database


class TestCommit:
    def test_commit_keeps_changes(self, db):
        with db.transaction():
            db.new_entity("b", name="Ben")
        assert db.entity("b")["name"] == "Ben"

    def test_journal_detached_after_commit(self, db):
        with db.transaction():
            db.new_entity("b")
        # post-commit operations are not journaled anywhere
        db.new_entity("c")
        assert db.stats()["entities"] == 3


class TestRollback:
    def test_exception_rolls_back_adds(self, db):
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.new_entity("b")
                db.new_interval("g2", duration=[(20, 30)])
                db.relate("in", Oid.entity("b"), Oid.interval("g2"))
                raise RuntimeError("boom")
        assert db.stats() == {"entities": 1, "intervals": 1, "facts": 0}

    def test_rollback_restores_replaced_object(self, db):
        original = db.entity("a")
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.set_attribute("a", "name", "Zoe")
                raise RuntimeError("boom")
        assert db.entity("a") == original

    def test_rollback_restores_removed_object(self, db):
        original = db.interval("g1")
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.remove_object(Oid.interval("g1"))
                raise RuntimeError("boom")
        assert db.interval("g1") == original
        # and the temporal index works again
        assert [str(i.oid) for i in db.intervals_at(5)] == ["g1"]

    def test_rollback_restores_removed_fact(self, db):
        fact = db.relate("in", Oid.entity("a"), Oid.interval("g1"))
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.remove_fact(fact)
                raise RuntimeError("boom")
        assert fact in db.facts("in")

    def test_explicit_rollback(self, db):
        tx = db.transaction()
        with tx:
            db.new_entity("b")
            tx.rollback()
        assert db.stats()["entities"] == 1

    def test_mixed_operations_roll_back_in_order(self, db):
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.set_attribute("a", "name", "First")
                db.set_attribute("a", "name", "Second")
                raise RuntimeError("boom")
        assert db.entity("a")["name"] == "Ana"


class TestProtocol:
    def test_reuse_rejected(self, db):
        tx = db.transaction()
        with tx:
            pass
        with pytest.raises(TransactionError):
            with tx:
                pass

    def test_commit_after_close_rejected(self, db):
        tx = db.transaction()
        with tx:
            pass
        with pytest.raises(TransactionError):
            tx.commit()

    def test_nested_transaction_piggybacks(self, db):
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.new_entity("b")
                with db.transaction():
                    db.new_entity("c")
                raise RuntimeError("boom")
        # both inner and outer changes rolled back together
        assert db.stats()["entities"] == 1

    def test_nested_rollback_rejected(self, db):
        with db.transaction():
            inner = db.transaction()
            with inner:
                with pytest.raises(TransactionError):
                    inner.rollback()

    def test_exception_propagates(self, db):
        with pytest.raises(ValueError):
            with db.transaction():
                raise ValueError("original error kept")


class TestEpochAndEdgeCases:
    def test_reentering_an_open_transaction_is_nested_use(self, db):
        # Entering the same Transaction object again piggybacks like any
        # nested scope: the inner exit must not settle the outer journal.
        tx = db.transaction()
        with tx:
            db.new_entity("b")
            with tx:
                db.new_entity("c")
            assert db._journal is not None  # still open after inner exit
        assert db.stats()["entities"] == 3

    def test_rollback_after_partial_multi_mutation(self, db):
        fact = db.relate("in", Oid.entity("a"), Oid.interval("g1"))
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.new_entity("b", name="Ben")
                db.set_attribute("a", "name", "Renamed")
                db.new_interval("g2", entities=["b"], duration=[(5, 9)])
                db.remove_fact(fact)
                raise RuntimeError("midway")
        assert db.stats() == {"entities": 1, "intervals": 1, "facts": 1}
        assert db.entity("a")["name"] == "Ana"
        assert fact in db.facts("in")
        assert [str(i.oid) for i in db.intervals_at(7)] == ["g1"]

    def test_epoch_restored_on_exit_with_exception(self, db):
        before = db.epoch
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.new_entity("b")
                db.set_attribute("b", "name", "Ben")
                assert db.epoch > before
                raise RuntimeError("boom")
        # same state <=> same epoch: the undo replay must not leave the
        # epoch inflated, or epoch-keyed caches would miss forever
        assert db.epoch == before

    def test_epoch_advances_on_commit(self, db):
        before = db.epoch
        with db.transaction():
            db.new_entity("b")
        assert db.epoch == before + 1

    def test_explicit_rollback_restores_epoch(self, db):
        before = db.epoch
        tx = db.transaction()
        with tx:
            db.new_entity("b")
            tx.rollback()
        assert db.epoch == before
