"""Unit tests for the StreamHub: transaction framing, abort isolation,
autocommit deltas, and the epoch-mirror out-of-band guard."""

import pytest

from vidb.errors import EvaluationError, ModelError
from vidb.stream.hub import CommittedDelta, StreamHub
from vidb.storage.database import VideoDatabase


@pytest.fixture
def db():
    database = VideoDatabase("hub-test")
    database.declare_relation("appears")
    return database


@pytest.fixture
def hub(db):
    return StreamHub(db)


def collect(hub):
    deltas = []
    hub.add_consumer(deltas.append)
    return deltas


class TestTransactionFraming:
    def test_committed_txn_is_one_delta(self, db, hub):
        deltas = collect(hub)
        with db.transaction():
            db.new_entity("o1")
            db.new_interval("gi1", entities=["o1"], duration=[(0, 5)])
            db.relate("appears", "o1", "gi1")
        assert len(deltas) == 1
        delta = deltas[0]
        assert [event[0] for event in delta.events] == \
            ["add", "add", "relate"]
        assert delta.pre_epoch + len(delta) == delta.epoch == db.epoch
        assert delta.monotone

    def test_aborted_txn_delivers_nothing(self, db, hub):
        deltas = collect(hub)
        epoch_before = db.epoch
        with pytest.raises(ModelError):
            with db.transaction():
                db.new_entity("o1")
                db.new_entity("o1")  # duplicate oid aborts the txn
        assert deltas == []
        assert hub.aborted_segments == 1
        assert db.epoch == epoch_before
        assert hub.mirror_epoch == db.epoch

    def test_autocommit_is_single_event_delta(self, db, hub):
        deltas = collect(hub)
        db.new_entity("o1")
        db.new_entity("o2")
        assert [len(d) for d in deltas] == [1, 1]
        assert [d.events[0][0] for d in deltas] == ["add", "add"]
        assert deltas[-1].epoch == db.epoch

    def test_commit_after_abort_still_flows(self, db, hub):
        deltas = collect(hub)
        with pytest.raises(ModelError):
            with db.transaction():
                db.new_entity("o1")
                db.new_entity("o1")
        with db.transaction():
            db.new_entity("o2")
        assert len(deltas) == 1
        assert deltas[0].events[0][1].oid.name == "o2"

    def test_empty_txn_delivers_nothing(self, db, hub):
        deltas = collect(hub)
        with db.transaction():
            pass
        assert deltas == []


class TestMonotonicity:
    def test_removal_makes_delta_non_monotone(self, db, hub):
        db.new_entity("o1")
        deltas = collect(hub)
        with db.transaction():
            db.new_entity("o2")
            db.remove_object("o1")
        assert len(deltas) == 1
        assert not deltas[0].monotone

    def test_declare_relation_is_monotone(self, db, hub):
        deltas = collect(hub)
        db.declare_relation("meets")
        assert len(deltas) == 1
        assert deltas[0].monotone


class TestEpochMirror:
    def test_mirror_tracks_epoch(self, db, hub):
        db.new_entity("o1")
        with db.transaction():
            db.new_interval("gi1", duration=[(0, 5)])
        assert hub.mirror_epoch == db.epoch
        hub.check_epoch()  # no raise

    def test_out_of_band_write_raises_vdb051(self, db, hub):
        hub.detach()
        db.new_entity("o1")  # the hub never sees this
        with pytest.raises(EvaluationError, match="VDB051"):
            hub.check_epoch()

    def test_detach_reattach_resyncs(self, db, hub):
        hub.detach()
        db.new_entity("o1")
        hub.attach()  # attach resyncs the mirror to the live epoch
        hub.check_epoch()
        deltas = collect(hub)
        db.new_entity("o2")
        assert len(deltas) == 1

    def test_rebind_follows_database_swap(self, hub):
        other = VideoDatabase("other")
        other.new_entity("x1")
        hub.rebind(other)
        assert hub.db is other
        hub.check_epoch()
        deltas = collect(hub)
        other.new_entity("x2")
        assert len(deltas) == 1


class TestConsumers:
    def test_remove_consumer(self, db, hub):
        deltas = collect(hub)
        hub.remove_consumer(deltas.append)
        db.new_entity("o1")
        assert deltas == []

    def test_consumers_see_commit_order(self, db, hub):
        seen = []
        hub.add_consumer(lambda d: seen.append(("a", d.epoch)))
        hub.add_consumer(lambda d: seen.append(("b", d.epoch)))
        db.new_entity("o1")
        db.new_entity("o2")
        epochs = [epoch for _, epoch in seen]
        assert epochs == sorted(epochs)
        assert seen[0][0] == "a" and seen[1][0] == "b"


class TestCommittedDelta:
    def test_repr_and_len(self):
        delta = CommittedDelta([("add", None), ("relate", None)], 5, 3)
        assert len(delta) == 2
        assert "epoch 3->5" in repr(delta)
