"""Unit tests for the annotation-dump codec and batched ingest driver."""

import io
import json

import pytest

from vidb.errors import ProtocolError
from vidb.service.executor import ServiceExecutor
from vidb.stream.ingest import (
    IngestReport,
    apply_record,
    generate_dump,
    ingest_local,
    iter_dump,
    parse_record,
    record_to_op,
    write_dump,
)
from vidb.storage.database import VideoDatabase


def as_lines(records):
    return [json.dumps(record) for record in records]


class TestCodec:
    def test_roundtrip(self):
        records = generate_dump(entities=2, intervals=3, seed=7)
        out = io.StringIO()
        assert write_dump(records, out) == len(records)
        assert list(iter_dump(out.getvalue().splitlines())) == records

    def test_blank_and_comment_lines_skipped(self):
        text = [
            "",
            "# a comment",
            json.dumps({"t": 0, "kind": "entity", "oid": "o1"}),
        ]
        assert len(list(iter_dump(text))) == 1

    def test_backwards_timestamp_rejected(self):
        lines = as_lines([
            {"t": 5.0, "kind": "entity", "oid": "o1"},
            {"t": 4.0, "kind": "entity", "oid": "o2"},
        ])
        with pytest.raises(ProtocolError, match="goes backwards"):
            list(iter_dump(lines))

    @pytest.mark.parametrize("bad", [
        "not json",
        json.dumps(["a", "list"]),
        json.dumps({"t": 0, "kind": "mystery", "oid": "o1"}),
        json.dumps({"kind": "entity", "oid": "o1"}),
        json.dumps({"t": 0, "kind": "entity"}),
        json.dumps({"t": 0, "kind": "fact", "args": ["o1"]}),
        json.dumps({"t": 0, "kind": "fact", "relation": "r", "args": []}),
    ])
    def test_bad_records_rejected(self, bad):
        with pytest.raises(ProtocolError):
            parse_record(bad, lineno=3)

    def test_generate_is_deterministic_and_ordered(self):
        first = generate_dump(entities=3, intervals=10, seed=42)
        second = generate_dump(entities=3, intervals=10, seed=42)
        assert first == second
        stamps = [record["t"] for record in first]
        assert stamps == sorted(stamps)
        kinds = {record["kind"] for record in first}
        assert kinds == {"entity", "interval", "fact"}


class TestApplyRecord:
    def test_records_build_a_database(self):
        db = VideoDatabase("apply")
        db.declare_relation("appears")
        for record in generate_dump(entities=2, intervals=2, seed=1):
            apply_record(db, record)
        stats = db.stats()
        assert stats["entities"] == 2
        assert stats["intervals"] == 2
        assert stats["facts"] >= 2

    def test_fact_args_resolve_to_oids(self):
        db = VideoDatabase("resolve")
        db.declare_relation("appears")
        apply_record(db, {"t": 0, "kind": "entity", "oid": "o1"})
        apply_record(db, {"t": 1, "kind": "interval", "oid": "gi1",
                          "entities": ["o1"], "duration": [[0, 5]]})
        apply_record(db, {"t": 1, "kind": "fact", "relation": "appears",
                          "args": ["o1", "gi1"]})
        [fact] = db.facts("appears")
        assert all(hasattr(arg, "name") for arg in fact.args)


class TestRecordToOp:
    def test_sub_ops_match_wire_shapes(self):
        assert record_to_op(
            {"t": 0, "kind": "entity", "oid": "o1",
             "attributes": {"name": "x"}}) == \
            {"op": "insert_entity", "oid": "o1", "attributes": {"name": "x"}}
        op = record_to_op({"t": 1, "kind": "interval", "oid": "gi1",
                           "entities": ["o1"], "duration": [[0, 5]]})
        assert op["op"] == "insert_interval" and op["duration"] == [[0, 5]]
        assert record_to_op(
            {"t": 1, "kind": "fact", "relation": "appears",
             "args": ["o1", "gi1"]}) == \
            {"op": "relate", "relation": "appears", "args": ["o1", "gi1"]}


class TestIngestLocal:
    def test_batched_commits_one_delta_each(self):
        db = VideoDatabase("ingest")
        db.declare_relation("appears")
        with ServiceExecutor(db, max_workers=1) as service:
            records = generate_dump(entities=3, intervals=10, seed=3)
            report = ingest_local(service, records, batch_size=8)
            assert report.records == len(records)
            assert report.batches == -(-len(records) // 8)  # ceil division
            assert report.final_epoch == service.db.epoch
            assert service.stream_hub.deltas_delivered == report.batches
            assert report.records_per_s > 0

    def test_bad_batch_size_rejected(self):
        db = VideoDatabase("ingest2")
        with ServiceExecutor(db, max_workers=1) as service:
            with pytest.raises(ProtocolError, match="batch_size"):
                ingest_local(service, [], batch_size=0)

    def test_report_as_dict(self):
        report = IngestReport()
        report.records, report.batches, report.elapsed_s = 10, 2, 0.5
        snapshot = report.as_dict()
        assert snapshot["records"] == 10
        assert snapshot["records_per_s"] == 20.0
