"""Unit tests for standing queries: Subscription and SubscriptionManager."""

import pytest

from vidb.errors import ServiceOverloadedError, SessionError
from vidb.query.engine import QueryEngine
from vidb.stream.hub import StreamHub
from vidb.stream.standing import SubscriptionManager
from vidb.storage.database import VideoDatabase

QUERY = "?- appears(O, G)."


@pytest.fixture
def db():
    database = VideoDatabase("standing-test")
    database.declare_relation("appears")
    for i in range(1, 5):
        database.new_entity(f"o{i}")
        database.new_interval(f"gi{i}", entities=[f"o{i}"],
                              duration=[(i * 10, i * 10 + 5)])
    return database


@pytest.fixture
def engine(db):
    return QueryEngine(db)


@pytest.fixture
def hub(db):
    return StreamHub(db)


@pytest.fixture
def manager(hub):
    return SubscriptionManager(hub, max_subscriptions=4)


class TestNotifications:
    def test_commit_notifies_new_answers(self, db, engine, manager):
        sub = manager.subscribe(QUERY, engine)
        with db.transaction():
            db.relate("appears", "o1", "gi1")
            db.relate("appears", "o2", "gi2")
        [batch] = sub.poll()
        assert batch["seq"] == 1
        assert batch["epoch"] == db.epoch
        assert batch["rows"] == [["o1", "gi1"], ["o2", "gi2"]]
        assert batch["count"] == 2
        assert sub.poll() == []

    def test_existing_answers_not_renotified(self, db, engine, manager):
        db.relate("appears", "o1", "gi1")
        sub = manager.subscribe(QUERY, engine)
        db.relate("appears", "o2", "gi2")
        [batch] = sub.poll()
        assert batch["rows"] == [["o2", "gi2"]]

    def test_sequence_numbers_follow_commit_order(self, db, engine, manager):
        sub = manager.subscribe(QUERY, engine)
        for i in range(1, 4):
            db.relate("appears", f"o{i}", f"gi{i}")
        batches = sub.poll()
        assert [b["seq"] for b in batches] == [1, 2, 3]
        epochs = [b["epoch"] for b in batches]
        assert epochs == sorted(epochs)

    def test_aborted_txn_notifies_nothing(self, db, engine, manager):
        sub = manager.subscribe(QUERY, engine)
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.relate("appears", "o1", "gi1")
                raise RuntimeError("abort")
        assert sub.poll() == []

    def test_irrelevant_commit_notifies_nothing(self, db, engine, manager):
        sub = manager.subscribe(QUERY, engine)
        db.new_entity("bystander")
        assert sub.poll() == []

    def test_duplicate_fact_not_renotified(self, db, engine, manager):
        sub = manager.subscribe(QUERY, engine)
        db.relate("appears", "o1", "gi1")
        sub.poll()
        db.relate("appears", "o1", "gi1")  # idempotent re-assertion
        assert sub.poll() == []

    def test_boolean_query_notifies_once(self, db, engine, manager):
        from vidb.model.oid import Oid

        sub = manager.subscribe("?- appears(o1, gi1).", engine)
        assert sub.variables == ()
        db.relate("appears", Oid.entity("o1"), Oid.interval("gi1"))
        [batch] = sub.poll()
        assert batch["count"] == 1
        db.relate("appears", Oid.entity("o2"), Oid.interval("gi2"))
        assert sub.poll() == []


class TestFilter:
    def test_filter_restricts_rows(self, db, engine, manager):
        sub = manager.subscribe(QUERY, engine, filter={"O": "o1"})
        with db.transaction():
            db.relate("appears", "o1", "gi1")
            db.relate("appears", "o2", "gi2")
        [batch] = sub.poll()
        assert batch["rows"] == [["o1", "gi1"]]

    def test_fully_filtered_batch_not_queued(self, db, engine, manager):
        sub = manager.subscribe(QUERY, engine, filter={"O": "o1"})
        db.relate("appears", "o2", "gi2")
        assert sub.poll() == []
        assert sub.batches_emitted == 0

    def test_unknown_filter_variable_rejected(self, engine, manager):
        with pytest.raises(SessionError, match="unknown variable"):
            manager.subscribe(QUERY, engine, filter={"Z": "o1"})


class TestBackpressure:
    def test_bounded_queue_drops_oldest_with_lag_marker(self, db, engine,
                                                        manager):
        sub = manager.subscribe(QUERY, engine, max_queue=2)
        for i in range(1, 5):  # 4 notifications into a 2-deep queue
            db.relate("appears", f"o{i}", f"gi{i}")
        batches = sub.poll()
        assert len(batches) == 2
        assert [b["seq"] for b in batches] == [3, 4]  # oldest dropped
        assert batches[0]["lagged"] is True
        assert batches[0]["dropped_batches"] == 2
        assert batches[0]["dropped_rows"] == 2
        assert sub.lag_events == 2

    def test_lag_survives_unsubscribe_in_totals(self, db, engine, manager):
        sub = manager.subscribe(QUERY, engine, max_queue=1)
        db.relate("appears", "o1", "gi1")
        db.relate("appears", "o2", "gi2")
        assert manager.total_lag_events() == 1
        manager.unsubscribe(sub.id)
        assert manager.total_lag_events() == 1

    def test_poll_wait_returns_on_timeout(self, engine, manager):
        sub = manager.subscribe(QUERY, engine)
        assert sub.poll(wait_s=0.05) == []


class TestLifecycle:
    def test_admission_limit(self, engine, manager):
        for _ in range(4):
            manager.subscribe(QUERY, engine)
        with pytest.raises(ServiceOverloadedError):
            manager.subscribe(QUERY, engine)

    def test_unsubscribe_stops_feed(self, db, engine, manager):
        sub = manager.subscribe(QUERY, engine)
        assert manager.unsubscribe(sub.id) is True
        assert manager.unsubscribe(sub.id) is False
        db.relate("appears", "o1", "gi1")
        assert sub.poll() == []
        assert sub.closed

    def test_close_session_closes_only_its_subs(self, db, engine, manager):
        mine = manager.subscribe(QUERY, engine, session_id="s1")
        detached = manager.subscribe(QUERY, engine, session_id="s1",
                                     detached=True)
        other = manager.subscribe(QUERY, engine, session_id="s2")
        assert manager.close_session("s1") == 1
        assert mine.closed
        assert not detached.closed
        assert not other.closed

    def test_get_unknown_raises(self, manager):
        with pytest.raises(SessionError, match="no subscription"):
            manager.get("sub999")

    def test_describe_is_json_ready(self, db, engine, manager):
        import json

        sub = manager.subscribe(QUERY, engine, session_id="s1")
        db.relate("appears", "o1", "gi1")
        [entry] = manager.describe()
        json.dumps(entry)  # must serialize
        assert entry["id"] == sub.id
        assert entry["query"] == QUERY
        assert entry["seq"] == 1
        assert entry["rows"] == 1
        assert entry["queue_depth"] == 1

    def test_manager_close_detaches_from_hub(self, db, engine, hub, manager):
        sub = manager.subscribe(QUERY, engine)
        manager.close()
        db.relate("appears", "o1", "gi1")
        assert sub.closed
        assert manager.count() == 0


class TestRebuildDedup:
    def test_rebuild_does_not_renotify_known_answers(self, db, engine,
                                                     manager):
        doomed = db.relate("appears", "o3", "gi3")
        sub = manager.subscribe(QUERY, engine)
        db.relate("appears", "o1", "gi1")
        sub.poll()
        db.remove_fact(doomed)  # non-monotone: rebuild, nothing new
        assert sub.poll() == []
        db.relate("appears", "o2", "gi2")
        [batch] = sub.poll()
        assert batch["rows"] == [["o2", "gi2"]]
        assert sub.view.rebuilds == 1


class TestOnNotify:
    def test_callback_fires_per_batch(self, db, engine, hub):
        fired = []
        manager = SubscriptionManager(
            hub, on_notify=lambda sub, batch: fired.append(
                (sub.id, batch["count"])))
        sub = manager.subscribe(QUERY, engine)
        db.relate("appears", "o1", "gi1")
        assert fired == [(sub.id, 1)]


class _RecordingLog:
    def __init__(self):
        self.events = []

    def emit(self, name, **fields):
        self.events.append((name, fields))


class TestLatencyAndTracing:
    def test_batch_carries_commit_to_notify_latency(self, db, engine,
                                                    manager):
        sub = manager.subscribe(QUERY, engine)
        db.relate("appears", "o1", "gi1")
        [batch] = sub.poll()
        assert batch["latency_ms"] >= 0.0
        assert sub.last_latency_ms == batch["latency_ms"]
        assert sub.describe()["last_latency_ms"] == batch["latency_ms"]

    def test_batch_carries_ambient_trace_header(self, db, engine, manager):
        from vidb.obs.trace import TraceContext, use_context

        sub = manager.subscribe(QUERY, engine)
        context = TraceContext.new(sampled=True)
        with use_context(context):
            db.relate("appears", "o1", "gi1")
        db.relate("appears", "o2", "gi2")  # untraced commit
        traced, untraced = sub.poll()
        assert traced["trace"] == context.to_header()
        assert "trace" not in untraced

    def test_drop_oldest_emits_lagged_event(self, db, engine, hub):
        log = _RecordingLog()
        manager = SubscriptionManager(hub, event_log=log)
        sub = manager.subscribe(QUERY, engine, max_queue=1)
        db.relate("appears", "o1", "gi1")
        db.relate("appears", "o2", "gi2")
        [(name, fields)] = log.events
        assert name == "subscription.lagged"
        assert fields["subscription"] == sub.id
        assert fields["dropped_seq"] == 1
        assert fields["seq_gap"] == 1
        assert fields["dropped_batches"] == 1
        assert fields["dropped_rows"] == 1
        assert fields["max_queue"] == 1

    def test_no_drop_no_event(self, db, engine, hub):
        log = _RecordingLog()
        manager = SubscriptionManager(hub, event_log=log)
        manager.subscribe(QUERY, engine)
        db.relate("appears", "o1", "gi1")
        assert log.events == []
