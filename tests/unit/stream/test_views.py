"""Unit tests for observer-fed materialized views (ViewRegistry)."""

import pytest

from vidb.errors import EvaluationError
from vidb.query.fixpoint import evaluate
from vidb.query.parser import parse_program
from vidb.stream.hub import StreamHub
from vidb.stream.views import ViewRegistry, apply_delta
from vidb.storage.database import VideoDatabase

REACH = parse_program("""
    reach(X, Y) :- next(X, Y).
    reach(X, Z) :- reach(X, Y), next(Y, Z).
""")


@pytest.fixture
def db():
    database = VideoDatabase("views-test")
    database.declare_relation("next")
    for i, name in enumerate(["g0", "g1", "g2", "g3"]):
        database.new_interval(name, duration=[(i * 10, i * 10 + 5)])
    return database


@pytest.fixture
def hub(db):
    return StreamHub(db)


@pytest.fixture
def registry(hub):
    return ViewRegistry(hub)


def fresh_reach(db):
    return evaluate(db, REACH).relation("reach")


class TestFeeding:
    def test_committed_txn_feeds_view(self, db, hub, registry):
        view = registry.register("reach", REACH)
        with db.transaction():
            db.relate("next", "g0", "g1")
            db.relate("next", "g1", "g2")
        assert view.relation("reach") == fresh_reach(db)
        assert len(view.relation("reach")) == 3  # 01, 12, 02
        assert view.source_epoch == db.epoch

    def test_aborted_txn_leaks_nothing(self, db, hub, registry):
        view = registry.register("reach", REACH)
        with pytest.raises(Exception):
            with db.transaction():
                db.relate("next", "g0", "g1")
                raise RuntimeError("abort")
        assert view.relation("reach") == set()
        assert view.relation("reach") == fresh_reach(db)

    def test_autocommit_feeds_view(self, db, hub, registry):
        view = registry.register("reach", REACH)
        db.relate("next", "g2", "g3")
        assert view.relation("reach") == fresh_reach(db)

    def test_non_monotone_delta_rebuilds(self, db, hub, registry):
        fact = db.relate("next", "g0", "g1")
        db.relate("next", "g1", "g2")
        view = registry.register("reach", REACH)
        before = registry.rebuilds
        db.remove_fact(fact)
        assert registry.rebuilds == before + 1
        assert view.relation("reach") == fresh_reach(db)
        assert len(view.relation("reach")) == 1  # only g1->g2 left

    def test_multiple_views_all_fed(self, db, hub, registry):
        first = registry.register("a", REACH)
        second = registry.register("b", REACH)
        db.relate("next", "g0", "g1")
        assert first.relation("reach") == second.relation("reach") != set()


class TestSealing:
    def test_registered_view_rejects_direct_writes(self, db, registry):
        view = registry.register("reach", REACH)
        with pytest.raises(EvaluationError, match="VDB050"):
            view.insert_fact("next", "g0", "g1")
        entity = VideoDatabase("scratch").new_entity("tmp")
        with pytest.raises(EvaluationError, match="VDB050"):
            view.insert_object(entity)

    def test_unregister_unseals(self, db, registry):
        view = registry.register("reach", REACH)
        assert registry.unregister("reach") is view
        view.insert_fact("next", "g0", "g1")  # no raise once unsealed
        assert registry.get("reach") is None

    def test_duplicate_name_rejected(self, registry):
        registry.register("reach", REACH)
        with pytest.raises(ValueError, match="already registered"):
            registry.register("reach", REACH)


class TestOutOfBandGuard:
    def test_register_after_unseen_write_raises(self, db, hub, registry):
        hub.detach()
        db.relate("next", "g0", "g1")
        with pytest.raises(EvaluationError, match="VDB051"):
            registry.register("reach", REACH)

    def test_feed_after_unseen_write_raises(self, db, hub, registry):
        registry.register("reach", REACH)
        hub.detach()
        db.relate("next", "g0", "g1")
        hub.attach()
        hub.mirror_epoch -= 1  # attach resyncs; simulate a missed write
        with pytest.raises(EvaluationError, match="VDB051"):
            db.relate("next", "g1", "g2")

    def test_refresh_all_recovers(self, db, hub, registry):
        view = registry.register("reach", REACH)
        hub.detach()
        db.relate("next", "g0", "g1")
        hub.attach()
        hub.mirror_epoch -= 1
        registry.refresh_all()
        hub.check_epoch()  # mirror resynced
        assert view.relation("reach") == fresh_reach(db)
        db.relate("next", "g1", "g2")  # feeding works again
        assert view.relation("reach") == fresh_reach(db)


class TestApplyDelta:
    def test_monotone_delta_reports_derived(self, db, hub):
        from vidb.query.incremental import MaterializedView

        view = MaterializedView(db, REACH)
        captured = []
        hub.add_consumer(
            lambda delta: captured.append(apply_delta(view, delta)))
        with db.transaction():
            db.relate("next", "g0", "g1")
            db.relate("next", "g1", "g2")
        (derived,) = captured
        assert {tuple(str(v) for v in row)
                for row in derived["reach"]} == \
            {("g0", "g1"), ("g1", "g2"), ("g0", "g2")}

    def test_non_monotone_delta_returns_none(self, db, hub):
        from vidb.query.incremental import MaterializedView

        fact = db.relate("next", "g0", "g1")
        view = MaterializedView(db, REACH)
        captured = []
        hub.add_consumer(
            lambda delta: captured.append(apply_delta(view, delta)))
        db.remove_fact(fact)
        assert captured == [None]
        assert view.rebuilds == 1


class TestStatus:
    def test_status_rows(self, db, registry):
        registry.register("reach", REACH)
        db.relate("next", "g0", "g1")
        [(name, source_epoch, rebuilds)] = registry.status()
        assert name == "reach"
        assert source_epoch == db.epoch
        assert rebuilds == 0
