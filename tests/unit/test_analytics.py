"""Unit tests for the archive analytics layer."""

import pytest

from vidb.analytics import (
    activity_histogram,
    co_occurrence,
    coverage,
    described_footprint,
    gaps,
    presence,
    screen_time,
    summary,
)
from vidb.intervals.generalized import GeneralizedInterval
from vidb.intervals.interval import Interval
from vidb.model.oid import Oid
from vidb.storage.database import VideoDatabase


def gi(*pairs):
    return GeneralizedInterval.from_pairs(pairs)


@pytest.fixture
def db():
    database = VideoDatabase("analytics")
    database.new_entity("a")
    database.new_entity("b")
    database.new_entity("c")
    database.new_interval("g1", entities=["a", "b"], duration=[(0, 10)])
    database.new_interval("g2", entities=["a"], duration=[(5, 20)])
    database.new_interval("g3", entities=["c"], duration=[(30, 40)])
    return database


class TestPresenceAndScreenTime:
    def test_presence_unions_intervals(self, db):
        assert presence(db, "a") == gi((0, 20))
        assert presence(db, "b") == gi((0, 10))
        assert presence(db, "c") == gi((30, 40))

    def test_presence_of_absent_entity(self, db):
        db.new_entity("ghost")
        assert presence(db, "ghost").is_empty()

    def test_screen_time_no_double_counting(self, db):
        times = {str(k): v for k, v in screen_time(db).items()}
        assert times == {"a": 20.0, "b": 10.0, "c": 10.0}


class TestCoOccurrence:
    def test_shared_time(self, db):
        pairs = {(str(a), str(b)): v for (a, b), v in co_occurrence(db).items()}
        assert pairs == {("a", "b"): 10.0}

    def test_keys_ordered(self, db):
        for a, b in co_occurrence(db):
            assert a < b


class TestCoverage:
    def test_described_footprint(self, db):
        assert described_footprint(db) == gi((0, 20), (30, 40))

    def test_coverage_of_hull(self, db):
        # hull [0, 40], described 30 of it
        assert coverage(db) == pytest.approx(0.75)

    def test_coverage_of_explicit_span(self, db):
        assert coverage(db, Interval(0, 20)) == pytest.approx(1.0)
        assert coverage(db, Interval(20, 30)) == pytest.approx(0.0)

    def test_gaps(self, db):
        holes = gaps(db)
        assert holes.contains_point(25)
        assert not holes.contains_point(5)
        assert float(holes.measure) == pytest.approx(10.0)

    def test_empty_database(self):
        empty = VideoDatabase("empty")
        assert coverage(empty) == 0.0
        assert gaps(empty).is_empty()


class TestActivityHistogram:
    def test_bin_counts(self, db):
        rows = activity_histogram(db, bins=4)  # hull [0,40] in 10s bins
        counts = [count for __, __, count in rows]
        assert counts == [2, 1, 0, 1]

    def test_bin_edges_cover_hull(self, db):
        rows = activity_histogram(db, bins=4)
        assert rows[0][0] == 0.0 and rows[-1][1] == 40.0

    def test_empty_inputs(self, db):
        assert activity_histogram(VideoDatabase("x"), bins=4) == []
        assert activity_histogram(db, bins=0) == []


class TestSummary:
    def test_report_shape(self, db):
        report = summary(db)
        assert report["screen_time"][0] == {"entity": "a", "seconds": 20.0}
        assert report["co_occurrence"] == [
            {"first": "a", "second": "b", "shared_seconds": 10.0}]

    def test_top_limits(self, db):
        report = summary(db, top=1)
        assert len(report["screen_time"]) == 1
