"""Unit tests for the command-line interface."""

import pytest

from vidb.cli import main
from vidb.storage.persistence import load, save
from vidb.workloads.paper import rope_database


@pytest.fixture
def snapshot(tmp_path):
    path = tmp_path / "rope.json"
    save(rope_database(), path)
    return str(path)


class TestDemo:
    def test_writes_snapshot(self, tmp_path, capsys):
        out = tmp_path / "demo.json"
        assert main(["demo", "--out", str(out)]) == 0
        assert "wrote" in capsys.readouterr().out
        assert load(out).stats()["entities"] == 9


class TestInfo:
    def test_clean_database(self, snapshot, capsys):
        assert main(["info", snapshot]) == 0
        out = capsys.readouterr().out
        assert "entities: 9" in out and "integrity: ok" in out

    def test_missing_file(self, capsys):
        # User-input errors (missing files, bad queries) exit 2 with a
        # one-line message, matching argparse's usage-error convention.
        assert main(["info", "/nonexistent/db.json"]) == 2
        err = capsys.readouterr().err
        assert "error:" in err and "Traceback" not in err


class TestQuery:
    def test_answers_printed(self, snapshot, capsys):
        status = main(["query", snapshot,
                       "?- interval(G), object(o1), o1 in G.entities."])
        assert status == 0
        out = capsys.readouterr().out
        assert "gi1" in out and "gi2" in out and "2 answer(s)" in out

    def test_limit_flag(self, snapshot, capsys):
        main(["query", snapshot, "?- object(O).", "--limit", "3"])
        out = capsys.readouterr().out
        assert "9 answer(s)" in out
        assert out.count("o") >= 3

    def test_parse_error_is_clean_failure(self, snapshot, capsys):
        assert main(["query", snapshot, "?- interval(G"]) == 2
        err = capsys.readouterr().err
        assert "error:" in err and "Traceback" not in err

    def test_missing_rules_file_is_clean_failure(self, snapshot, capsys):
        status = main(["query", snapshot, "?- object(O).",
                       "--rules", "/nonexistent/rules.vdl"])
        assert status == 2
        err = capsys.readouterr().err
        assert "error:" in err and "Traceback" not in err

    def test_stats_flag(self, snapshot, capsys):
        status = main(["query", snapshot, "?- object(O).", "--stats"])
        assert status == 0
        out = capsys.readouterr().out
        assert "9 answer(s)" in out
        assert "iterations" in out
        assert "derived_facts" in out
        assert "elapsed_s" in out

    def test_profile_flag_golden_shape(self, snapshot, capsys):
        """The --profile report prints every expected section, in order."""
        status = main(["query", snapshot, "--stdlib", "--profile",
                       "?- interval(G), object(O), O in G.entities."])
        assert status == 0
        out = capsys.readouterr().out
        markers = [
            "13 answer(s)",
            "== execution profile ==",
            "mode seminaive",
            "-- stages --",
            "parse",
            "safety",
            "prune",
            "evaluate",
            "collect",
            "(total)",
            "-- rules --",
            "query",
            "iteration times (ms):",
            "-- span tree --",
            "query.execute",
            "fixpoint.iteration",
        ]
        position = -1
        for marker in markers:
            found = out.find(marker, position + 1)
            assert found > position, f"missing or out of order: {marker!r}"
            position = found

    def test_timeout_flag_expires(self, snapshot, capsys):
        status = main(["query", snapshot, "?- object(O).",
                       "--timeout", "0"])
        assert status == 1
        err = capsys.readouterr().err
        assert "deadline" in err and "Traceback" not in err

    def test_no_prune_flag_same_answers(self, snapshot, capsys):
        status = main(["query", snapshot, "--stdlib", "--no-prune",
                       "?- interval(G), object(o1), o1 in G.entities."])
        assert status == 0
        assert "2 answer(s)" in capsys.readouterr().out

    def test_rules_file(self, snapshot, tmp_path, capsys):
        rules = tmp_path / "rules.vdl"
        rules.write_text(
            "both(G) :- interval(G), {o1, o4} subset G.entities.\n")
        status = main(["query", snapshot, "?- both(G).",
                       "--rules", str(rules)])
        assert status == 0
        assert "2 answer(s)" in capsys.readouterr().out

    def test_naive_mode_flag(self, snapshot, capsys):
        status = main(["query", snapshot, "?- object(O).",
                       "--mode", "naive"])
        assert status == 0


class TestFacts:
    def test_stdlib_contains(self, snapshot, capsys):
        assert main(["facts", snapshot, "contains", "--stdlib"]) == 0
        out = capsys.readouterr().out
        assert "contains(gi1, gi1)" in out and "2 fact(s)" in out


class TestExplain:
    def test_derivation_rendered(self, snapshot, capsys):
        status = main(["explain", snapshot,
                       "?- interval(G), object(o9), o9 in G.entities."])
        assert status == 0
        out = capsys.readouterr().out
        assert "database fact" in out and "1 derivation(s)" in out


class TestEdl:
    def test_edl_rendered(self, snapshot, capsys):
        status = main(["edl", snapshot,
                       "?- interval(G), object(o1), o1 in G.entities.",
                       "G", "--title", "david"])
        assert status == 0
        out = capsys.readouterr().out
        assert "TITLE: david" in out and "2 cut(s)" in out

    def test_non_interval_variable_fails_cleanly(self, snapshot, capsys):
        status = main(["edl", snapshot, "?- object(O).", "O"])
        assert status == 1
        assert "error:" in capsys.readouterr().err


class TestAnalytics:
    def test_report_printed(self, snapshot, capsys):
        assert main(["analytics", snapshot, "--bins", "4"]) == 0
        out = capsys.readouterr().out
        assert "entity" in out and "coverage" in out
        assert "o1" in out

    def test_top_limits(self, snapshot, capsys):
        assert main(["analytics", snapshot, "--top", "2"]) == 0
        out = capsys.readouterr().out
        # leaderboard truncated to two rows
        leaderboard = out.split("\n\n")[0]
        assert len([l for l in leaderboard.splitlines()
                    if l and not l.startswith(("entity", "-"))]) == 2


class TestTimeline:
    def test_chart_printed(self, snapshot, capsys):
        assert main(["timeline", snapshot, "--width", "30"]) == 0
        out = capsys.readouterr().out
        assert "gi1" in out and "█" in out

    def test_label_flag(self, snapshot, capsys):
        assert main(["timeline", snapshot, "--label", "subject"]) == 0
        assert "murder" in capsys.readouterr().out


class TestServeAndClient:
    """The service commands, driven against an in-process server."""

    @pytest.fixture
    def server(self):
        from vidb.service import ServiceExecutor, VideoServer

        service = ServiceExecutor(rope_database(), max_workers=2)
        with service, VideoServer(service, port=0) as srv:
            srv.start_background()
            yield srv

    def test_serve_missing_database(self, capsys):
        assert main(["serve", "/nonexistent/db.json"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_client_ping(self, server, capsys):
        __, port = server.address
        assert main(["client", "--port", str(port), "ping"]) == 0
        assert "pong" in capsys.readouterr().out

    def test_client_query_and_repeat(self, server, capsys):
        __, port = server.address
        status = main(["client", "--port", str(port), "--repeat", "2",
                       "query",
                       "?- interval(G), object(o1), o1 in G.entities."])
        assert status == 0
        out = capsys.readouterr().out
        assert out.count("2 answer(s)") == 2

    def test_client_insert_then_query(self, server, capsys):
        __, port = server.address
        assert main(["client", "--port", str(port),
                     "entity", "o77", "name=Extra"]) == 0
        assert main(["client", "--port", str(port),
                     "interval", "gi77", "300-310", "o77"]) == 0
        assert main(["client", "--port", str(port), "query",
                     "?- interval(G), object(o77), o77 in G.entities."]) == 0
        out = capsys.readouterr().out
        assert "created o77" in out and "gi77" in out
        assert "1 answer(s)" in out

    def test_client_metrics(self, server, capsys):
        __, port = server.address
        main(["client", "--port", str(port), "query", "?- object(O)."])
        assert main(["client", "--port", str(port), "metrics"]) == 0
        out = capsys.readouterr().out
        assert "queries.served" in out and "cache." in out

    def test_client_connection_refused(self, capsys):
        # A dead server is an environment error (1), not a usage error.
        assert main(["client", "--port", "1", "ping"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_client_bad_op(self, server, capsys):
        __, port = server.address
        assert main(["client", "--port", str(port), "frobnicate"]) == 1
        assert "error:" in capsys.readouterr().err
