"""Run the library's docstring examples as tests.

Docstrings with ``>>>`` examples are documentation users copy-paste;
this keeps them honest without requiring --doctest-modules flags.
"""

import doctest

import pytest

import vidb.constraints.terms
import vidb.intervals.generalized
import vidb.intervals.interval
import vidb.storage.database

MODULES = [
    vidb.constraints.terms,
    vidb.intervals.generalized,
    vidb.intervals.interval,
    vidb.storage.database,
]


@pytest.mark.parametrize("module", MODULES,
                         ids=[m.__name__ for m in MODULES])
def test_docstring_examples(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0
    assert results.attempted > 0, f"{module.__name__} lost its examples"
