"""Edge-case coverage for small utility paths across packages."""

import pytest

from vidb.constraints.dense import Comparison
from vidb.constraints.solver import implied_by_clause
from vidb.constraints.terms import Var
from vidb.intervals.generalized import GeneralizedInterval
from vidb.model.values import value_union
from vidb.query.fixpoint import EvaluationStats

t = Var("t")
x = Var("x")


def gi(*pairs):
    return GeneralizedInterval.from_pairs(pairs)


class TestValueUnionMixedTypes:
    def test_constraint_meets_scalar_becomes_set(self):
        constraint = gi((0, 5)).to_constraint()
        merged = value_union(constraint, "caption")
        assert isinstance(merged, frozenset)
        assert "caption" in merged and constraint in merged

    def test_oid_values_join(self):
        from vidb.model.oid import Oid

        merged = value_union(Oid.entity("a"), Oid.entity("b"))
        assert merged == frozenset({Oid.entity("a"), Oid.entity("b")})

    def test_number_vs_string_scalars(self):
        assert value_union(1, "1") == frozenset({1, "1"})


class TestImpliedByClause:
    def test_transitive_implication(self):
        clause = [(x > 3), (x < 9)]
        assert implied_by_clause(clause, x > 1)
        assert not implied_by_clause(clause, x > 5)

    def test_equality_implies_bounds(self):
        clause = [x.eq(4)]
        assert implied_by_clause(clause, x < 10)
        assert implied_by_clause(clause, x.ne(5))


class TestEvaluationStats:
    def test_as_dict_round(self):
        stats = EvaluationStats(iterations=3, derived_facts=7,
                                created_objects=1, rule_firings=10,
                                constraint_checks=20, mode="naive")
        data = stats.as_dict()
        assert data["mode"] == "naive"
        assert data["iterations"] == 3
        assert set(data) == {"mode", "iterations", "derived_facts",
                             "created_objects", "rule_firings",
                             "constraint_checks", "elapsed_s",
                             "iteration_seconds"}


class TestGeneralizedIntervalMisc:
    def test_bool_protocol(self):
        assert gi((0, 1))
        assert not GeneralizedInterval.empty()

    def test_union_operator_chains(self):
        combined = gi((0, 1)) | gi((2, 3)) | gi((4, 5))
        assert len(combined) == 3

    def test_clip_degenerate_window(self):
        clipped = gi((0, 10)).clip(4, 4)
        assert clipped == GeneralizedInterval.point(4)
