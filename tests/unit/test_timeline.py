"""Unit tests for the ASCII timeline renderer."""

import pytest

from vidb.intervals.generalized import GeneralizedInterval
from vidb.storage.database import VideoDatabase
from vidb.timeline import EMPTY, FULL, footprint_bar, timeline_chart


def gi(*pairs):
    return GeneralizedInterval.from_pairs(pairs)


class TestFootprintBar:
    def test_full_coverage(self):
        assert footprint_bar(gi((0, 10)), 0, 10, width=10) == FULL * 10

    def test_no_coverage(self):
        assert footprint_bar(gi((20, 30)), 0, 10, width=10) == EMPTY * 10

    def test_half_coverage(self):
        bar = footprint_bar(gi((0, 5)), 0, 10, width=10)
        assert bar == FULL * 5 + EMPTY * 5

    def test_fragmented_footprint(self):
        bar = footprint_bar(gi((0, 2), (8, 10)), 0, 10, width=10)
        assert bar[:2] == FULL * 2 and bar[-2:] == FULL * 2
        assert EMPTY in bar[2:8]

    def test_zero_width(self):
        assert footprint_bar(gi((0, 10)), 0, 10, width=0) == ""

    def test_degenerate_window(self):
        assert footprint_bar(gi((0, 10)), 5, 5, width=10) == ""

    def test_touching_boundary_not_counted(self):
        # footprint ends exactly where a cell begins: measure-zero overlap
        bar = footprint_bar(gi((0, 5)), 0, 10, width=2)
        assert bar == FULL + EMPTY


class TestTimelineChart:
    @pytest.fixture
    def db(self):
        database = VideoDatabase("chart")
        database.new_interval("g_late", duration=[(50, 100)], label="late")
        database.new_interval("g_early", duration=[(0, 30), (40, 45)],
                              label="early")
        database.new_interval("bare")  # no duration: skipped
        return database

    def test_rows_sorted_by_start(self, db):
        chart = timeline_chart(db, width=20)
        lines = chart.splitlines()
        assert lines[0].startswith("g_early")
        assert lines[1].startswith("g_late")
        assert len(lines) == 3  # two rows + axis

    def test_durations_reported(self, db):
        chart = timeline_chart(db, width=20)
        assert "35s" in chart.splitlines()[0]
        assert "50s" in chart.splitlines()[1]

    def test_label_attribute(self, db):
        chart = timeline_chart(db, width=10, label_attribute="label")
        assert chart.splitlines()[0].startswith("early")

    def test_window_restricts_and_clips(self, db):
        chart = timeline_chart(db, width=10, window=(0, 50))
        late_row = chart.splitlines()[1]
        assert late_row.rstrip().endswith("0s")  # nothing of g_late in window

    def test_axis_shows_bounds(self, db):
        chart = timeline_chart(db, width=20)
        axis = chart.splitlines()[-1]
        assert "0" in axis and "100" in axis

    def test_empty_database(self):
        assert "no described intervals" in timeline_chart(VideoDatabase("x"))

    def test_bar_width_respected(self, db):
        chart = timeline_chart(db, width=33)
        row = chart.splitlines()[0]
        bar = row.split("|")[1]
        assert len(bar) == 33
