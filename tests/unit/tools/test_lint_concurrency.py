"""Tests for tools/lint_concurrency.py (the CI concurrency gate)."""

import importlib.util
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[3]
TOOL = REPO / "tools" / "lint_concurrency.py"

spec = importlib.util.spec_from_file_location("lint_concurrency", TOOL)
assert spec is not None and spec.loader is not None
lint_concurrency = importlib.util.module_from_spec(spec)
sys.modules.setdefault("lint_concurrency", lint_concurrency)
spec.loader.exec_module(lint_concurrency)


def run_on(tmp_path, source):
    path = tmp_path / "sample.py"
    path.write_text(source)
    findings = []
    edges = {}
    lint_concurrency.lint_file(path, findings, edges)
    for (a, b) in lint_concurrency.find_cycles(edges):
        at, line = edges[(a, b)]
        findings.append(lint_concurrency.Finding(
            at, line, "(module)", "lock-order-inversion", f"{a} <-> {b}"))
    return findings


class TestBlockingUnderWriteLock:
    def test_sleep_under_write_lock_flagged(self, tmp_path):
        findings = run_on(tmp_path, """
import time

class Svc:
    def bad(self):
        with self._lock.write_locked():
            time.sleep(1)
""")
        rules = [f.rule for f in findings]
        assert "blocking-under-write-lock" in rules

    def test_sleep_under_read_lock_is_fine(self, tmp_path):
        findings = run_on(tmp_path, """
import time

class Svc:
    def ok(self):
        with self._lock.read_locked():
            time.sleep(1)
""")
        assert not [f for f in findings
                    if f.rule == "blocking-under-write-lock"]

    def test_socket_recv_under_write_lock_flagged(self, tmp_path):
        findings = run_on(tmp_path, """
class Svc:
    def bad(self):
        with self._lock.write_locked():
            self.sock.recv(4096)
""")
        assert [f for f in findings
                if f.rule == "blocking-under-write-lock"]

    def test_nested_function_body_not_charged(self, tmp_path):
        # A closure defined (not called) under the lock runs later.
        findings = run_on(tmp_path, """
import time

class Svc:
    def ok(self):
        with self._lock.write_locked():
            def later():
                time.sleep(1)
            self.defer(later)
""")
        assert not [f for f in findings
                    if f.rule == "blocking-under-write-lock"]


class TestLockOrderInversion:
    ABBA = """
class Svc:
    def a(self):
        with self._alock:
            with self._block:
                pass

    def b(self):
        with self._block:
            with self._alock:
                pass
"""

    def test_abba_cycle_flagged(self, tmp_path):
        findings = run_on(tmp_path, self.ABBA)
        assert [f for f in findings if f.rule == "lock-order-inversion"]

    def test_consistent_order_is_fine(self, tmp_path):
        findings = run_on(tmp_path, """
class Svc:
    def a(self):
        with self._alock:
            with self._block:
                pass

    def b(self):
        with self._alock:
            with self._block:
                pass
""")
        assert not [f for f in findings
                    if f.rule == "lock-order-inversion"]

    def test_same_named_locks_of_other_classes_not_conflated(self, tmp_path):
        findings = run_on(tmp_path, """
class A:
    def fwd(self):
        with self._alock:
            with self._block:
                pass

class B:
    def rev(self):
        with self._block:
            with self._alock:
                pass
""")
        assert not [f for f in findings
                    if f.rule == "lock-order-inversion"]


class TestRepoGate:
    def test_src_vidb_is_clean(self, capsys):
        assert lint_concurrency.main([]) == 0
        assert "ok:" in capsys.readouterr().out

    def test_allowlist_suppresses(self, tmp_path, monkeypatch, capsys):
        bad = tmp_path / "svc.py"
        bad.write_text("""
import time

class Svc:
    def bad(self):
        with self._lock.write_locked():
            time.sleep(1)
""")
        allow = tmp_path / "allow.txt"
        monkeypatch.setattr(lint_concurrency, "ALLOWLIST", allow)
        assert lint_concurrency.main([str(bad)]) == 1
        capsys.readouterr()
        allow.write_text(
            f"{bad.as_posix()}::Svc.bad::blocking-under-write-lock\n")
        assert lint_concurrency.main([str(bad)]) == 0
        assert "1 allowlisted" in capsys.readouterr().out
