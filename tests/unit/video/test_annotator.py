"""Unit tests for the annotation pipelines."""

import pytest

from vidb.indexing.base import retrieval_quality
from vidb.indexing.generalized import GeneralizedIntervalIndex
from vidb.query.engine import QueryEngine
from vidb.video.annotator import GroundTruthAnnotator, NoisyAnnotator, annotate
from vidb.video.synthetic import generate_video


@pytest.fixture
def video():
    return generate_video(seed=21, duration=60, fps=5,
                          labels=("guard", "visitor", "truck"))


class TestGroundTruthAnnotator:
    def test_schedule_is_exact(self, video):
        assert GroundTruthAnnotator().schedule(video) == video.schedule()

    def test_fill_store(self, video):
        store = GeneralizedIntervalIndex()
        GroundTruthAnnotator().fill_store(video, store)
        quality = retrieval_quality(store, video.schedule())
        assert quality["f1"] == 1.0

    def test_annotate_convenience(self, video):
        store = annotate(video)
        assert store.descriptors() == frozenset(video.schedule())

    def test_build_database_shape(self, video):
        db = GroundTruthAnnotator().build_database(video, name="cam")
        stats = db.stats()
        assert stats["entities"] == 3 and stats["intervals"] == 3
        assert db.name == "cam"
        assert db.sequence.validate() == []

    def test_build_database_footprints(self, video):
        db = GroundTruthAnnotator().build_database(video)
        for label, footprint in video.schedule().items():
            assert db.interval(f"gi_{label}").footprint() == footprint

    def test_appears_with_facts_match_overlaps(self, video):
        db = GroundTruthAnnotator().build_database(video)
        schedule = video.schedule()
        for fact in db.facts("appears_with"):
            first, second = fact.args
            label_a = str(first).replace("o_", "")
            label_b = str(second).replace("o_", "")
            assert schedule[label_a].overlaps(schedule[label_b])

    def test_database_is_queryable(self, video):
        db = GroundTruthAnnotator().build_database(video)
        engine = QueryEngine(db)
        answers = engine.query(
            "?- interval(G), object(o_guard), o_guard in G.entities.")
        assert [str(r[0]) for r in answers.rows()] == ["gi_guard"]


class TestNoisyAnnotator:
    def test_deterministic_in_seed(self, video):
        a = NoisyAnnotator(seed=5).schedule(video)
        b = NoisyAnnotator(seed=5).schedule(video)
        assert a == b

    def test_zero_noise_is_near_exact(self, video):
        clean = NoisyAnnotator(seed=1, jitter=0.0,
                               drop_probability=0.0).schedule(video)
        truth = video.schedule()
        for label in truth:
            # rounding at 3 decimals only
            assert abs(float(clean[label].measure)
                       - float(truth[label].measure)) < 0.01

    def test_drop_probability_one_drops_everything(self, video):
        empty = NoisyAnnotator(seed=1, drop_probability=1.0).schedule(video)
        assert all(fp.is_empty() for fp in empty.values())

    def test_jitter_stays_within_video(self, video):
        noisy = NoisyAnnotator(seed=3, jitter=30.0).schedule(video)
        for footprint in noisy.values():
            if not footprint.is_empty():
                assert footprint.start >= 0
                assert footprint.end <= video.duration

    def test_noise_degrades_quality(self, video):
        truth = video.schedule()
        noisy_store = GeneralizedIntervalIndex()
        NoisyAnnotator(seed=3, jitter=2.0,
                       drop_probability=0.3).fill_store(video, noisy_store)
        quality = retrieval_quality(noisy_store, truth)
        assert quality["f1"] < 1.0
