"""Unit tests for frame feature extraction."""

import numpy as np
import pytest

from vidb.errors import VidbError
from vidb.video.features import (
    difference_series,
    histogram_chi2,
    histogram_l1,
    smooth,
)
from vidb.video.synthetic import generate_video


class TestDistances:
    def test_l1_identical_is_zero(self):
        h = np.array([0.5, 0.5])
        assert histogram_l1(h, h) == 0.0

    def test_l1_disjoint_unit_histograms_is_two(self):
        a = np.array([1.0, 0.0])
        b = np.array([0.0, 1.0])
        assert histogram_l1(a, b) == 2.0

    def test_l1_symmetry(self):
        a = np.array([0.7, 0.3])
        b = np.array([0.2, 0.8])
        assert histogram_l1(a, b) == histogram_l1(b, a)

    def test_chi2_identical_is_zero(self):
        h = np.array([0.4, 0.6])
        assert histogram_chi2(h, h) == 0.0

    def test_chi2_handles_zero_bins(self):
        a = np.array([1.0, 0.0])
        b = np.array([0.0, 1.0])
        assert histogram_chi2(a, b) == 2.0  # no division error

    def test_shape_mismatch_rejected(self):
        with pytest.raises(VidbError):
            histogram_l1(np.zeros(2), np.zeros(3))
        with pytest.raises(VidbError):
            histogram_chi2(np.zeros(2), np.zeros(3))


class TestDifferenceSeries:
    def test_length_is_frames_minus_one(self):
        video = generate_video(seed=1, duration=5, fps=4, shot_count=2)
        frames = list(video.frames())
        series = difference_series(frames)
        assert series.shape == (len(frames) - 1,)

    def test_cuts_spike(self):
        video = generate_video(seed=1, duration=20, fps=5, shot_count=4)
        frames = list(video.frames())
        series = difference_series(frames)
        # The cut at time b falls between frame floor(b*fps) and the next
        # one, i.e. at difference-series index floor(b*fps).
        cut_indices = {int(b * video.fps) for b in video.shot_boundaries}
        cut_values = [series[i] for i in cut_indices if 0 <= i < series.size]
        other = [v for i, v in enumerate(series) if i not in cut_indices]
        assert min(cut_values) > 5 * (sum(other) / len(other))

    def test_unknown_metric_rejected(self):
        video = generate_video(seed=1, duration=2, fps=2)
        with pytest.raises(VidbError):
            difference_series(list(video.frames()), metric="cosine")

    def test_short_input(self):
        assert difference_series([]).size == 0


class TestSmooth:
    def test_window_one_is_identity(self):
        series = np.array([1.0, 5.0, 1.0])
        assert np.array_equal(smooth(series, 1), series)

    def test_smoothing_reduces_peaks(self):
        series = np.array([0.0, 0.0, 9.0, 0.0, 0.0])
        smoothed = smooth(series, 3)
        assert smoothed[2] == 3.0

    def test_even_window_rejected(self):
        with pytest.raises(VidbError):
            smooth(np.zeros(5), 2)

    def test_empty_series(self):
        assert smooth(np.zeros(0), 3).size == 0
