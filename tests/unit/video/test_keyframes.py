"""Unit tests for keyframe extraction and visual similarity."""

import numpy as np
import pytest

from vidb.errors import VidbError
from vidb.video.keyframes import (
    extract_keyframes,
    find_matching_shot,
    shot_signatures,
    similar_shots,
)
from vidb.video.synthetic import generate_video


@pytest.fixture(scope="module")
def video():
    return generate_video(seed=31, duration=40, fps=6, shot_count=6)


@pytest.fixture(scope="module")
def frames(video):
    return list(video.frames())


class TestKeyframes:
    def test_one_keyframe_per_shot(self, video, frames):
        keyframes = extract_keyframes(frames)
        shot_count = len(video.shot_boundaries) + 1
        assert len(keyframes) == shot_count
        assert [k.shot for k in keyframes] == list(range(shot_count))

    def test_keyframe_lies_inside_its_shot(self, video, frames):
        for keyframe in extract_keyframes(frames):
            assert video.shot_of(keyframe.time) == keyframe.shot

    def test_keyframe_is_nearest_to_mean(self, frames):
        keyframes = extract_keyframes(frames)
        signatures = shot_signatures(frames)
        from vidb.video.features import histogram_l1

        for keyframe in keyframes:
            members = [f for f in frames if f.shot == keyframe.shot]
            distances = [histogram_l1(f.histogram,
                                      signatures[keyframe.shot])
                         for f in members]
            assert keyframe.distance_to_mean == pytest.approx(min(distances))

    def test_empty_input(self):
        assert extract_keyframes([]) == []


class TestSimilarity:
    def test_probe_frame_finds_its_own_shot(self, frames):
        for probe in (frames[0], frames[len(frames) // 2], frames[-1]):
            assert find_matching_shot(frames, probe) == probe.shot

    def test_ranking_is_sorted(self, frames):
        ranked = similar_shots(frames, frames[0].histogram, top=10)
        distances = [d for __, d in ranked]
        assert distances == sorted(distances)

    def test_top_limits_results(self, frames):
        assert len(similar_shots(frames, frames[0].histogram, top=2)) == 2

    def test_bad_top_rejected(self, frames):
        with pytest.raises(VidbError):
            similar_shots(frames, frames[0].histogram, top=0)

    def test_empty_frames_rejected(self, frames):
        with pytest.raises(VidbError):
            find_matching_shot([], frames[0])

    def test_signatures_normalised(self, frames):
        for signature in shot_signatures(frames).values():
            assert signature.sum() == pytest.approx(1.0, abs=1e-6)
