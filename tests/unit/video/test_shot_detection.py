"""Unit tests for shot-change detection (E12)."""

import pytest

from vidb.video.shot_detection import (
    detect_cuts,
    evaluate_detector,
    match_boundaries,
)
from vidb.video.synthetic import generate_video


class TestMatchBoundaries:
    def test_perfect_match(self):
        precision, recall = match_boundaries([1.0, 5.0], [1.0, 5.0], 0.2)
        assert precision == 1.0 and recall == 1.0

    def test_within_tolerance(self):
        precision, recall = match_boundaries([1.1], [1.0], 0.2)
        assert precision == 1.0 and recall == 1.0

    def test_outside_tolerance(self):
        precision, recall = match_boundaries([2.0], [1.0], 0.2)
        assert precision == 0.0 and recall == 0.0

    def test_one_to_one_matching(self):
        # Two detections near one truth: only one may claim it.
        precision, recall = match_boundaries([1.0, 1.05], [1.0], 0.2)
        assert precision == 0.5 and recall == 1.0

    def test_missed_boundary_costs_recall(self):
        precision, recall = match_boundaries([1.0], [1.0, 9.0], 0.2)
        assert precision == 1.0 and recall == 0.5

    def test_empty_edge_cases(self):
        assert match_boundaries([], [], 0.2) == (1.0, 1.0)
        assert match_boundaries([], [1.0], 0.2) == (1.0, 0.0)
        assert match_boundaries([1.0], [], 0.2) == (0.0, 1.0)


class TestDetector:
    def test_detects_planted_cuts(self):
        video = generate_video(seed=11, duration=60, fps=8, shot_count=8)
        report = evaluate_detector(video, sensitivity=4.0, tolerance=0.3)
        assert report.recall >= 0.8
        assert report.precision >= 0.8

    def test_f1_definition(self):
        video = generate_video(seed=11, duration=30, fps=8, shot_count=5)
        report = evaluate_detector(video)
        if report.precision + report.recall > 0:
            expected = (2 * report.precision * report.recall
                        / (report.precision + report.recall))
            assert abs(report.f1 - expected) < 1e-12

    def test_single_shot_video_has_no_cuts(self):
        video = generate_video(seed=2, duration=10, fps=8, shot_count=1)
        frames = list(video.frames())
        assert video.shot_boundaries == []
        cuts = detect_cuts(frames, video.fps, sensitivity=6.0)
        assert cuts == []

    def test_higher_sensitivity_fewer_detections(self):
        video = generate_video(seed=13, duration=60, fps=8, shot_count=10)
        frames = list(video.frames())
        low = detect_cuts(frames, video.fps, sensitivity=2.0)
        high = detect_cuts(frames, video.fps, sensitivity=8.0)
        assert len(high) <= len(low)

    def test_empty_frames(self):
        assert detect_cuts([], 10) == []
