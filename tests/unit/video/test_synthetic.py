"""Unit tests for the synthetic video generator."""

import numpy as np
import pytest

from vidb.errors import VidbError
from vidb.video.synthetic import (
    HISTOGRAM_BINS,
    ObjectTrack,
    SyntheticVideo,
    generate_video,
)


class TestGenerateVideo:
    def test_deterministic_in_seed(self):
        a = generate_video(seed=5, duration=30, fps=5)
        b = generate_video(seed=5, duration=30, fps=5)
        assert a.shot_boundaries == b.shot_boundaries
        assert a.schedule() == b.schedule()

    def test_different_seeds_differ(self):
        a = generate_video(seed=1, duration=30, fps=5)
        b = generate_video(seed=2, duration=30, fps=5)
        assert a.shot_boundaries != b.shot_boundaries

    def test_boundaries_inside_duration(self):
        video = generate_video(seed=3, duration=50, fps=5, shot_count=10)
        assert all(0 < b < 50 for b in video.shot_boundaries)
        assert video.shot_boundaries == sorted(video.shot_boundaries)

    def test_tracks_cover_requested_labels(self):
        video = generate_video(seed=0, labels=("a", "b"))
        assert sorted(t.label for t in video.tracks) == ["a", "b"]

    def test_footprints_within_duration(self):
        video = generate_video(seed=4, duration=40)
        for track in video.tracks:
            assert track.footprint.start >= 0
            assert track.footprint.end <= 40

    def test_invalid_parameters(self):
        with pytest.raises(VidbError):
            generate_video(duration=-1)
        with pytest.raises(VidbError):
            generate_video(shot_count=0)


class TestFrames:
    @pytest.fixture
    def video(self):
        return generate_video(seed=9, duration=10, fps=4, shot_count=3)

    def test_frame_count(self, video):
        frames = list(video.frames())
        assert len(frames) == video.frame_count == 40

    def test_histograms_normalised(self, video):
        for frame in video.frames():
            assert frame.histogram.shape == (HISTOGRAM_BINS,)
            assert abs(frame.histogram.sum() - 1.0) < 1e-9
            assert (frame.histogram >= 0).all()

    def test_shot_assignment_monotone(self, video):
        shots = [frame.shot for frame in video.frames()]
        assert shots == sorted(shots)
        assert shots[0] == 0

    def test_visibility_matches_schedule(self, video):
        schedule = video.schedule()
        for frame in video.frames():
            expected = frozenset(
                label for label, fp in schedule.items()
                if fp.contains_point(frame.time))
            assert frame.visible == expected

    def test_frames_deterministic(self, video):
        first = [f.histogram for f in video.frames()]
        second = [f.histogram for f in video.frames()]
        assert all(np.array_equal(a, b) for a, b in zip(first, second))

    def test_shot_of(self, video):
        assert video.shot_of(0.0) == 0
        last = video.shot_of(video.duration)
        assert last == len(video.shot_boundaries)
