"""Unit tests for the random workload generator."""

import pytest

from vidb.query.engine import QueryEngine
from vidb.storage.persistence import dumps
from vidb.workloads.generator import (
    QUERY_TEMPLATES,
    WorkloadConfig,
    random_database,
    random_queries,
    scaling_series,
)


class TestRandomDatabase:
    def test_shape_matches_config(self):
        config = WorkloadConfig(entities=10, intervals=20, facts=15, seed=1)
        db = random_database(config)
        stats = db.stats()
        assert stats["entities"] == 10
        assert stats["intervals"] == 20
        assert 0 < stats["facts"] <= 15  # duplicates may collapse

    def test_deterministic_in_seed(self):
        config = WorkloadConfig(entities=8, intervals=10, facts=10, seed=42)
        assert dumps(random_database(config)) == dumps(random_database(config))

    def test_different_seeds_differ(self):
        a = random_database(WorkloadConfig(seed=1, entities=8, intervals=10))
        b = random_database(WorkloadConfig(seed=2, entities=8, intervals=10))
        assert dumps(a) != dumps(b)

    def test_integrity(self):
        db = random_database(WorkloadConfig(entities=10, intervals=20,
                                            facts=10, seed=3))
        assert db.sequence.validate() == []

    def test_every_interval_has_duration_and_entities(self):
        db = random_database(WorkloadConfig(entities=5, intervals=10, seed=4))
        for interval in db.intervals():
            assert interval.has_duration
            assert len(interval.entities) >= 1
            assert not interval.footprint().is_empty()

    def test_footprints_within_span(self):
        config = WorkloadConfig(entities=5, intervals=10, span=100.0, seed=5,
                                mean_fragment=10.0)
        db = random_database(config)
        for interval in db.intervals():
            assert interval.footprint().start >= 0


class TestScalingSeries:
    def test_sizes_respected(self):
        series = scaling_series([5, 10], seed=1)
        assert [size for size, __ in series] == [5, 10]
        assert series[0][1].stats()["intervals"] == 5
        assert series[1][1].stats()["intervals"] == 10


class TestQueries:
    def test_templates_run_on_generated_data(self):
        db = random_database(WorkloadConfig(entities=10, intervals=15,
                                            facts=10, seed=6))
        engine = QueryEngine(db)
        for name, text in QUERY_TEMPLATES.items():
            engine.query(text)  # must parse, be safe, and evaluate

    def test_random_queries_deterministic(self):
        assert random_queries(5, seed=1) == random_queries(5, seed=1)
        assert all(q in QUERY_TEMPLATES.values()
                   for q in random_queries(10, seed=2))
