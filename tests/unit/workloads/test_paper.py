"""Unit tests for the paper's worked-example builders."""

from vidb.intervals.generalized import GeneralizedInterval
from vidb.model.oid import Oid
from vidb.query.parser import parse_program, parse_query
from vidb.workloads.paper import (
    ROPE_GI1_SPAN,
    ROPE_GI2_SPAN,
    broadcast_labels,
    news_schedule,
    paper_queries,
    rope_database,
    section62_rules,
)


class TestRopeDatabase:
    def test_nine_entities_two_intervals(self):
        db = rope_database()
        assert db.stats() == {"entities": 9, "intervals": 2, "facts": 2}

    def test_attribute_values_match_paper(self):
        db = rope_database()
        david = db.entity("o1")
        assert david["name"] == "David" and david["role"] == "Victim"
        philip = db.entity("o2")
        assert philip["realname"] == "Farley Granger"
        rupert = db.entity("o9")
        assert rupert["realname"] == "James Stewart"

    def test_gi1_structure(self):
        db = rope_database()
        gi1 = db.interval("gi1")
        assert gi1["subject"] == "murder"
        assert gi1["victim"] == Oid.entity("o1")
        assert gi1["murderer"] == frozenset({Oid.entity("o2"), Oid.entity("o3")})
        assert len(gi1.entities) == 4

    def test_gi2_structure(self):
        db = rope_database()
        gi2 = db.interval("gi2")
        assert gi2["subject"] == "Giving a party"
        assert gi2["host"] == frozenset({Oid.entity("o2"), Oid.entity("o3")})
        assert len(gi2["guest"]) == 5
        assert len(gi2.entities) == 9

    def test_durations_are_strict_and_ordered(self):
        # a1 < b1 < a2 < b2 (the paper's side condition)
        a1, b1 = ROPE_GI1_SPAN
        a2, b2 = ROPE_GI2_SPAN
        assert a1 < b1 < a2 < b2
        db = rope_database()
        footprint1 = db.interval("gi1").footprint()
        assert not footprint1.contains_point(a1)   # strict bound
        assert footprint1.contains_point((a1 + b1) / 2)

    def test_in_facts(self):
        db = rope_database()
        facts = db.facts("in")
        assert len(facts) == 2
        for fact in facts:
            assert fact.args[0] == Oid.entity("o1")
            assert fact.args[1] == Oid.entity("o4")

    def test_referential_integrity(self):
        assert rope_database().sequence.validate() == []


class TestPaperQueries:
    def test_all_six_parse(self):
        queries = paper_queries()
        assert set(queries) == {"Q1", "Q2", "Q3", "Q4a", "Q4b", "Q5", "Q6"}
        for text in queries.values():
            parse_query(text)

    def test_section62_rules_parse(self):
        program = parse_program(section62_rules())
        assert program.idb_predicates() == frozenset(
            {"contains", "same_object_in", "concatenate_gintervals"})
        constructive = program.rules_for("concatenate_gintervals")[0]
        assert constructive.is_constructive


class TestNewsSchedule:
    def test_three_objects_of_interest(self):
        schedule = news_schedule()
        assert set(schedule) == {"reporter", "minister", "reporter2"}

    def test_reporter_has_three_fragments(self):
        assert len(news_schedule()["reporter"]) == 3

    def test_overlap_structure(self):
        schedule = news_schedule()
        assert schedule["reporter"].overlaps(schedule["minister"])
        assert schedule["reporter2"].overlaps(schedule["reporter"])


class TestBroadcastLabels:
    def test_figure1_segments_partition(self):
        segments = broadcast_labels()[:3]
        assert segments[0][1] == 0 and segments[-1][2] == 180
        for (_, __, end), (_, start, ___) in zip(segments, segments[1:]):
            assert end == start

    def test_figure2_strata_overlap(self):
        strata = broadcast_labels()[3:]
        spans = {label: (lo, hi) for label, lo, hi in strata}
        # "taxes" nests inside "finances" nests inside "politics"
        assert spans["politics"][0] <= spans["finances"][0]
        assert spans["finances"][1] >= spans["taxes"][1]
