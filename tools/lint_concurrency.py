#!/usr/bin/env python3
"""Static concurrency lint for ``src/vidb``.

Two classes of finding, both derived purely from the AST (no imports,
no execution):

``blocking-under-write-lock``
    A call that blocks the calling thread (``time.sleep``,
    ``os.fsync``, socket accept/recv/connect, ``Future.result``,
    ``subprocess.run``...) lexically inside a ``with ...write_locked()``
    / ``with ...exclusive()`` block.  The executor's write lock excludes
    *every* reader, so blocking while holding it turns one slow call
    into a service-wide stall.

``lock-order-inversion``
    Two locks are acquired in opposite orders on different code paths.
    Nested ``with`` acquisitions inside each function contribute
    ``outer -> inner`` edges to a per-class lock graph; a cycle in that
    graph is the classic ABBA deadlock shape.  Lock identity is the
    source text of the ``with`` expression (e.g. ``self._lock``)
    qualified by the enclosing class, so same-named locks of unrelated
    classes are never conflated.

Findings are suppressed by ``tools/concurrency_allowlist.txt``; each
non-comment line is ``<relpath>::<qualname>::<rule>`` naming a function
whose finding of that rule is intentional.  Exit status is 1 when any
unsuppressed finding remains, so CI can gate on it.

Usage::

    python tools/lint_concurrency.py [root ...]   # default: src/vidb
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Set, Tuple

REPO = Path(__file__).resolve().parent.parent
DEFAULT_ROOTS = (REPO / "src" / "vidb",)
ALLOWLIST = REPO / "tools" / "concurrency_allowlist.txt"

#: ``with`` expressions that take the *exclusive* (writer) side of a
#: readers-writer lock: attribute-call names on the context manager.
WRITE_LOCK_METHODS = frozenset({"write_locked", "acquire_write",
                                "exclusive"})

#: ``with`` expressions that acquire *some* lock (for ordering edges):
#: plain ``with self._lock:`` / ``with self._cond:`` (a Lock/Condition
#: used as a context manager) plus RW-lock helper calls.
LOCKISH_SUFFIXES = ("lock", "cond", "mutex")
LOCK_METHODS = frozenset({"write_locked", "read_locked", "acquire_read",
                          "acquire_write"}) | WRITE_LOCK_METHODS

#: Dotted call names that block the calling thread.
BLOCKING_DOTTED = frozenset({
    "time.sleep",
    "os.fsync",
    "os.fdatasync",
    "subprocess.run",
    "subprocess.check_call",
    "subprocess.check_output",
})

#: Method names that block regardless of the receiver expression.
BLOCKING_METHODS = frozenset({
    "accept", "recv", "recvfrom", "sendall", "connect", "makefile",
    "readline", "result", "join",
})


def dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` source text of a Name/Attribute chain, else None."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted(node.value)
        return f"{base}.{node.attr}" if base else None
    return None


def lock_name(item: ast.expr) -> Optional[str]:
    """The lock a ``with`` item acquires, or None.

    ``with self._lock:`` -> ``self._lock``;
    ``with self._lock.write_locked():`` -> ``self._lock``.
    """
    if isinstance(item, ast.Call) and isinstance(item.func, ast.Attribute):
        if item.func.attr in LOCK_METHODS:
            return dotted(item.func.value)
        if item.func.attr == "exclusive":
            # ``with executor.exclusive():`` wraps the write lock.
            base = dotted(item.func.value)
            return f"{base}.exclusive" if base else None
        return None
    name = dotted(item)
    if name and name.split(".")[-1].lstrip("_").endswith(LOCKISH_SUFFIXES):
        return name
    return None


def is_write_lock(item: ast.expr) -> bool:
    return (isinstance(item, ast.Call)
            and isinstance(item.func, ast.Attribute)
            and item.func.attr in WRITE_LOCK_METHODS)


def is_blocking_call(node: ast.Call) -> Optional[str]:
    name = dotted(node.func)
    if name in BLOCKING_DOTTED:
        return name
    if isinstance(node.func, ast.Attribute):
        method = node.func.attr
        if method in BLOCKING_METHODS:
            base = dotted(node.func.value) or "..."
            return f"{base}.{method}"
        # ``cond.wait(...)`` blocks, but a Condition releases its own
        # lock while waiting — only flag waits on a *different* lock
        # than the enclosing with (handled by the visitor).
    return None


class Finding:
    def __init__(self, path: Path, line: int, qualname: str, rule: str,
                 message: str):
        self.path = path
        self.line = line
        self.qualname = qualname
        self.rule = rule
        self.message = message

    def _rel(self) -> str:
        try:
            return self.path.relative_to(REPO).as_posix()
        except ValueError:
            return self.path.as_posix()

    def key(self) -> str:
        return f"{self._rel()}::{self.qualname}::{self.rule}"

    def render(self) -> str:
        return f"{self._rel()}:{self.line}: [{self.rule}] {self.message}"


class FunctionVisitor(ast.NodeVisitor):
    """Walks one function body tracking the lexical with-lock stack."""

    def __init__(self, path: Path, qualname: str, class_name: str,
                 findings: List[Finding],
                 edges: Dict[Tuple[str, str], Tuple[Path, int]]):
        self.path = path
        self.qualname = qualname
        self.class_name = class_name
        self.findings = findings
        self.edges = edges
        self.lock_stack: List[str] = []
        self.write_depth = 0

    def _qualify(self, lock: str) -> str:
        return f"{self.class_name}.{lock}" if self.class_name else lock

    def visit_With(self, node: ast.With) -> None:
        self._with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._with(node)

    def _with(self, node) -> None:
        acquired: List[str] = []
        writes = 0
        for item in node.items:
            lock = lock_name(item.context_expr)
            if lock is None:
                continue
            qualified = self._qualify(lock)
            for held in self.lock_stack:
                if held != qualified:
                    self.edges.setdefault((held, qualified),
                                          (self.path, node.lineno))
            self.lock_stack.append(qualified)
            acquired.append(qualified)
            if is_write_lock(item.context_expr):
                self.write_depth += 1
                writes += 1
        for child in node.body:
            self.visit(child)
        for _ in acquired:
            self.lock_stack.pop()
        self.write_depth -= writes

    def visit_Call(self, node: ast.Call) -> None:
        if self.write_depth:
            blocking = is_blocking_call(node)
            if blocking is not None:
                self.findings.append(Finding(
                    self.path, node.lineno, self.qualname,
                    "blocking-under-write-lock",
                    f"{blocking}() may block while holding the write "
                    f"lock (in {self.qualname})"))
        self.generic_visit(node)

    # Nested function definitions get their own visitor (their body does
    # not run while the enclosing with is held).
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass


def iter_functions(tree: ast.Module) -> Iterator[Tuple[str, str, ast.AST]]:
    """Yield ``(qualname, class_name, function_node)`` for every def."""

    def walk(node: ast.AST, prefix: str, class_name: str) -> Iterator:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{child.name}"
                yield qual, class_name, child
                yield from walk(child, f"{qual}.", class_name)
            elif isinstance(child, ast.ClassDef):
                yield from walk(child, f"{prefix}{child.name}.",
                                child.name)

    yield from walk(tree, "", "")


def find_cycles(edges: Dict[Tuple[str, str], Tuple[Path, int]]
                ) -> List[Tuple[str, str]]:
    """Pairs (a, b) where both a->b and b->a were recorded (ABBA)."""
    cycles = []
    for (a, b) in edges:
        if (b, a) in edges and a < b:
            cycles.append((a, b))
    return sorted(cycles)


def lint_file(path: Path, findings: List[Finding],
              edges: Dict[Tuple[str, str], Tuple[Path, int]]) -> None:
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    for qualname, class_name, node in iter_functions(tree):
        visitor = FunctionVisitor(path, qualname, class_name, findings,
                                  edges)
        for child in node.body:  # type: ignore[attr-defined]
            visitor.visit(child)


def load_allowlist() -> Set[str]:
    if not ALLOWLIST.exists():
        return set()
    entries = set()
    for line in ALLOWLIST.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if line and not line.startswith("#"):
            entries.add(line)
    return entries


def main(argv: List[str]) -> int:
    roots = [Path(arg).resolve() for arg in argv] or list(DEFAULT_ROOTS)
    findings: List[Finding] = []
    edges: Dict[Tuple[str, str], Tuple[Path, int]] = {}
    for root in roots:
        files = sorted(root.rglob("*.py")) if root.is_dir() else [root]
        for path in files:
            lint_file(path, findings, edges)
    for (a, b) in find_cycles(edges):
        path, line = edges[(a, b)]
        findings.append(Finding(
            path, line, "(module)", "lock-order-inversion",
            f"{a} is taken before {b} here, but the opposite order "
            f"exists elsewhere — ABBA deadlock shape"))
    allow = load_allowlist()
    reported = [f for f in findings if f.key() not in allow]
    suppressed = len(findings) - len(reported)
    for finding in reported:
        print(finding.render())
    summary = (f"{len(reported)} finding(s), {suppressed} allowlisted, "
               f"{len(edges)} lock-order edge(s)")
    print(("FAIL: " if reported else "ok: ") + summary)
    return 1 if reported else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
